//! The `LGRI1` on-disk format: lossless persistence for
//! [`EmbeddingStore`].
//!
//! Grammar (all integers little-endian, mirroring the `LGR1` checkpoint
//! format in `tensor::serialize`):
//!
//! ```text
//! file    := magic version fingerprint dim:u32 count:u32 entry*
//! magic   := "LGRI"
//! version := '1'
//! fingerprint := len:u32 bytes[len]        ; UTF-8 model fingerprint
//! entry   := key:u64 vector[dim]:f32 ntok:u32 token[ntok]:u32
//! ```
//!
//! Entries are written in row order and read back into the same rows, so
//! a save/load round trip is bitwise lossless — including insertion
//! order, which keeps `stats` and row-indexed diagnostics stable across
//! restarts. Every malformed input maps to a typed [`IndexError`]
//! (truncation, wrong magic, unknown version, duplicate keys, trailing
//! garbage); corruption is never a panic.

use crate::error::IndexError;
use crate::store::EmbeddingStore;
use std::io::Write;
use std::path::Path;

/// The four magic bytes opening every index file.
pub const MAGIC: &[u8; 4] = b"LGRI";
/// The current (only) format version byte.
pub const VERSION: u8 = b'1';

/// A bounds-checked little-endian cursor over the raw file bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IndexError> {
        let end = self.pos.checked_add(n).ok_or(IndexError::Truncated)?;
        if end > self.buf.len() {
            return Err(IndexError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, IndexError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, IndexError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, IndexError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// Serializes `store` into the `LGRI1` byte format.
pub fn to_bytes(store: &EmbeddingStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(store.bytes());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    let fp = store.fingerprint().as_bytes();
    out.extend_from_slice(&(fp.len() as u32).to_le_bytes());
    out.extend_from_slice(fp);
    out.extend_from_slice(&(store.dim() as u32).to_le_bytes());
    out.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for row in 0..store.len() {
        out.extend_from_slice(&store.keys()[row].to_le_bytes());
        for &x in store.row(row) {
            out.extend_from_slice(&x.to_le_bytes());
        }
        let toks = store.postings(row);
        out.extend_from_slice(&(toks.len() as u32).to_le_bytes());
        for &t in toks {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
    debug_assert_eq!(out.len(), store.bytes(), "bytes() disagrees with the writer");
    out
}

/// Parses an `LGRI1` byte buffer back into a store.
///
/// # Errors
///
/// [`IndexError::BadMagic`] / [`IndexError::VersionMismatch`] for a file
/// that is not an index, [`IndexError::Truncated`] when the buffer ends
/// mid-record, [`IndexError::BadRecord`] for duplicate keys, and
/// [`IndexError::TrailingBytes`] when data follows the last entry.
pub fn from_bytes(buf: &[u8]) -> Result<EmbeddingStore, IndexError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(IndexError::BadMagic);
    }
    let version = r.take(1)?[0];
    if version != VERSION {
        return Err(IndexError::VersionMismatch { found: version });
    }
    let fp_len = r.u32()? as usize;
    let fingerprint = String::from_utf8(r.take(fp_len)?.to_vec())
        .map_err(|_| IndexError::BadRecord { index: 0 })?;
    let dim = r.u32()? as usize;
    let count = r.u32()? as usize;
    let mut keys = Vec::with_capacity(count.min(1 << 20));
    let mut matrix: Vec<f32> = Vec::with_capacity(count.min(1 << 20) * dim);
    let mut postings = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        keys.push(r.u64()?);
        for _ in 0..dim {
            matrix.push(r.f32()?);
        }
        let ntok = r.u32()? as usize;
        let mut toks = Vec::with_capacity(ntok.min(1 << 20));
        for _ in 0..ntok {
            toks.push(r.u32()?);
        }
        postings.push(toks);
    }
    if r.pos != buf.len() {
        return Err(IndexError::TrailingBytes);
    }
    EmbeddingStore::from_parts(dim, fingerprint, keys, matrix, postings)
}

/// Writes `store` to `path` atomically (via a `.tmp` sibling + rename),
/// so a crash mid-save never corrupts an existing index.
///
/// # Errors
///
/// [`IndexError::Io`] on any filesystem failure.
pub fn save_to_path(store: &EmbeddingStore, path: &Path) -> Result<(), IndexError> {
    let bytes = to_bytes(store);
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| IndexError::Io(e.to_string());
    let mut file = std::fs::File::create(&tmp).map_err(io)?;
    file.write_all(&bytes).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io)
}

/// Reads an `LGRI1` file from `path`.
///
/// # Errors
///
/// [`IndexError::Io`] when the file cannot be read, plus every parse
/// error [`from_bytes`] reports.
pub fn load_from_path(path: &Path) -> Result<EmbeddingStore, IndexError> {
    let bytes = std::fs::read(path).map_err(|e| IndexError::Io(e.to_string()))?;
    from_bytes(&bytes)
}

/// Whether `buf` starts with the `LGRI` magic — cheap format sniffing
/// for tooling that dispatches on file contents.
pub fn sniff(buf: &[u8]) -> bool {
    buf.len() >= 4 && &buf[..4] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmbeddingStore {
        let mut store = EmbeddingStore::new(3, "demo@16");
        store.insert(0xdead_beef_cafe_f00d, &[1.0, 2.0, 2.0], &[4, 1, 4]).unwrap();
        store.insert(42, &[0.0, 0.0, 0.0], &[]).unwrap();
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample();
        let loaded = from_bytes(&to_bytes(&store)).unwrap();
        assert_eq!(loaded, store);
        assert_eq!(loaded.row_of(42), Some(1));
    }

    #[test]
    fn bytes_len_matches_store_accounting() {
        assert_eq!(to_bytes(&sample()).len(), sample().bytes());
        let empty = EmbeddingStore::new(7, "e");
        assert_eq!(to_bytes(&empty).len(), empty.bytes());
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes).unwrap_err(), IndexError::BadMagic);
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = b'9';
        assert_eq!(from_bytes(&bytes).unwrap_err(), IndexError::VersionMismatch { found: b'9' });
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert_eq!(
                from_bytes(&bytes[..cut]).unwrap_err(),
                IndexError::Truncated,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_typed() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert_eq!(from_bytes(&bytes).unwrap_err(), IndexError::TrailingBytes);
    }

    #[test]
    fn sniffing() {
        assert!(sniff(&to_bytes(&sample())));
        assert!(!sniff(b"LGR1"));
        assert!(!sniff(b"LG"));
    }

    #[test]
    fn path_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("lgri-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.lgri");
        let store = sample();
        save_to_path(&store, &path).unwrap();
        assert_eq!(load_from_path(&path).unwrap(), store);
        assert!(matches!(
            load_from_path(&dir.join("absent.lgri")).unwrap_err(),
            IndexError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
