//! Reciprocal-rank fusion: combining the semantic (cosine) and lexical
//! (token-overlap) rankings without score calibration.
//!
//! RRF assigns each candidate `Σ 1 / (K + rankᵢ)` over the ranked lists
//! it appears in (ranks are 1-based; absent means no contribution).
//! Because only *ranks* enter the formula, the wildly different scales
//! of cosine similarity and token-overlap counts never need to be
//! normalized against each other — the classic robustness argument for
//! RRF in hybrid retrieval. `K` damps the head of each list; the
//! literature default of 60 is kept.

/// The damping constant `K` in `1 / (K + rank)`.
pub const DEFAULT_RRF_K: usize = 60;

/// Fuses ranked key lists. Each inner slice is one ranking, best first.
/// Returns `(key, fused score)` sorted by score descending, ties broken
/// by key ascending so fusion is deterministic regardless of input list
/// order or hash-map iteration.
pub fn rrf_fuse(lists: &[&[u64]], k: usize) -> Vec<(u64, f64)> {
    let mut scores: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for list in lists {
        for (i, &key) in list.iter().enumerate() {
            *scores.entry(key).or_insert(0.0) += 1.0 / (k as f64 + (i + 1) as f64);
        }
    }
    let mut fused: Vec<(u64, f64)> = scores.into_iter().collect();
    fused.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_beats_single_list_dominance() {
        // Key 2 is mid-ranked in both lists; keys 1 and 3 top one list
        // each but miss the other entirely.
        let cosine: &[u64] = &[1, 2];
        let lexical: &[u64] = &[3, 2];
        let fused = rrf_fuse(&[cosine, lexical], DEFAULT_RRF_K);
        assert_eq!(fused[0].0, 2, "the doubly-ranked key wins: {fused:?}");
    }

    #[test]
    fn ties_break_by_key_ascending() {
        let a: &[u64] = &[9];
        let b: &[u64] = &[4];
        let fused = rrf_fuse(&[a, b], DEFAULT_RRF_K);
        assert_eq!(fused.iter().map(|f| f.0).collect::<Vec<_>>(), vec![4, 9]);
        assert_eq!(fused[0].1, fused[1].1);
    }

    #[test]
    fn empty_lists_fuse_to_nothing() {
        assert!(rrf_fuse(&[], DEFAULT_RRF_K).is_empty());
        assert!(rrf_fuse(&[&[], &[]], DEFAULT_RRF_K).is_empty());
    }

    #[test]
    fn scores_follow_the_formula() {
        let only: &[u64] = &[7, 8];
        let fused = rrf_fuse(&[only], 60);
        assert!((fused[0].1 - 1.0 / 61.0).abs() < 1e-12);
        assert!((fused[1].1 - 1.0 / 62.0).abs() < 1e-12);
    }
}
