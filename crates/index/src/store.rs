//! The storage layer: normalized embedding vectors plus token posting
//! lists, keyed by content hash.
//!
//! The store keeps every vector in one contiguous row-major matrix so
//! brute-force search can run batch-major over it with
//! [`tensor::gemm_batch`] (via [`tensor::cosine_scores`]) instead of a
//! per-entry dot-product loop. Vectors are L2-normalized at insert time,
//! turning every similarity into a plain dot product.
//!
//! Keys are the serve routing hash (FNV-1a over program structure), so
//! one program has one entry no matter how often it is re-indexed:
//! re-inserting an existing key overwrites in place ([`InsertOutcome`]
//! reports whether anything actually changed) and never grows the
//! matrix.

use crate::error::IndexError;
use std::collections::HashMap;

/// What [`EmbeddingStore::insert`] did with the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new key: the entry was appended.
    Inserted,
    /// The key existed with different contents: overwritten in place.
    Updated,
    /// The key existed with bitwise-identical contents: nothing changed.
    Unchanged,
}

impl InsertOutcome {
    /// The wire-protocol name of this outcome.
    pub fn name(self) -> &'static str {
        match self {
            InsertOutcome::Inserted => "inserted",
            InsertOutcome::Updated => "updated",
            InsertOutcome::Unchanged => "unchanged",
        }
    }
}

/// A persistent store of `(key, normalized vector, token posting list)`
/// entries with versioned model metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EmbeddingStore {
    dim: usize,
    /// Which model produced the vectors. Loading an index whose
    /// fingerprint differs from the serving model is refused: embeddings
    /// from different models are not comparable.
    fingerprint: String,
    keys: Vec<u64>,
    /// `keys.len() × dim`, row-major, each row L2-normalized.
    matrix: Vec<f32>,
    /// Sorted, deduplicated token ids per entry — the lexical half of
    /// hybrid ranking.
    postings: Vec<Vec<u32>>,
    by_key: HashMap<u64, usize>,
}

impl EmbeddingStore {
    /// An empty store for `dim`-dimensional vectors from the model
    /// identified by `fingerprint`.
    pub fn new(dim: usize, fingerprint: impl Into<String>) -> EmbeddingStore {
        EmbeddingStore { dim, fingerprint: fingerprint.into(), ..EmbeddingStore::default() }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The producing model's fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The content-hash keys in row order.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The packed row-major vector matrix (`len() × dim()`).
    pub fn matrix(&self) -> &[f32] {
        &self.matrix
    }

    /// Row `row`'s normalized vector.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.matrix[row * self.dim..(row + 1) * self.dim]
    }

    /// Row `row`'s sorted token posting list.
    pub fn postings(&self, row: usize) -> &[u32] {
        &self.postings[row]
    }

    /// The row holding `key`, if present.
    pub fn row_of(&self, key: u64) -> Option<usize> {
        self.by_key.get(&key).copied()
    }

    /// Serialized size of this store in the `LGRI1` format — the
    /// `bytes` figure the stats report.
    pub fn bytes(&self) -> usize {
        // Header: magic+version, fingerprint, dim, count.
        let mut total = 5 + 4 + self.fingerprint.len() + 4 + 4;
        for p in &self.postings {
            total += 8 + self.dim * 4 + 4 + p.len() * 4;
        }
        total
    }

    /// L2-normalizes `v` in place (f64 accumulation; the all-zero vector
    /// stays zero rather than dividing by zero).
    fn normalize(v: &mut [f32]) {
        let norm = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt();
        if norm > 0.0 {
            let inv = (1.0 / norm) as f32;
            for x in v {
                *x *= inv;
            }
        }
    }

    /// Inserts (or overwrites) the entry for `key`. The vector is
    /// normalized and the token list sorted/deduplicated before storage.
    ///
    /// # Errors
    ///
    /// [`IndexError::DimMismatch`] when `vector.len() != dim()`.
    pub fn insert(
        &mut self,
        key: u64,
        vector: &[f32],
        tokens: &[u32],
    ) -> Result<InsertOutcome, IndexError> {
        if vector.len() != self.dim {
            return Err(IndexError::DimMismatch { expected: self.dim, found: vector.len() });
        }
        let mut row_vec = vector.to_vec();
        Self::normalize(&mut row_vec);
        let mut toks = tokens.to_vec();
        toks.sort_unstable();
        toks.dedup();
        match self.by_key.get(&key) {
            Some(&row) => {
                let same_vec = self
                    .row(row)
                    .iter()
                    .zip(&row_vec)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                if same_vec && self.postings[row] == toks {
                    return Ok(InsertOutcome::Unchanged);
                }
                self.matrix[row * self.dim..(row + 1) * self.dim].copy_from_slice(&row_vec);
                self.postings[row] = toks;
                Ok(InsertOutcome::Updated)
            }
            None => {
                let row = self.keys.len();
                self.keys.push(key);
                self.matrix.extend_from_slice(&row_vec);
                self.postings.push(toks);
                self.by_key.insert(key, row);
                Ok(InsertOutcome::Inserted)
            }
        }
    }

    /// Rebuilds the key → row map — used by the loader, which fills the
    /// columnar fields directly.
    pub(crate) fn from_parts(
        dim: usize,
        fingerprint: String,
        keys: Vec<u64>,
        matrix: Vec<f32>,
        postings: Vec<Vec<u32>>,
    ) -> Result<EmbeddingStore, IndexError> {
        let mut by_key = HashMap::with_capacity(keys.len());
        for (row, &key) in keys.iter().enumerate() {
            if by_key.insert(key, row).is_some() {
                return Err(IndexError::BadRecord { index: row });
            }
        }
        Ok(EmbeddingStore { dim, fingerprint, keys, matrix, postings, by_key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_normalizes_and_dedups_tokens() {
        let mut store = EmbeddingStore::new(2, "m");
        assert_eq!(store.insert(7, &[3.0, 4.0], &[5, 1, 5, 3]).unwrap(), InsertOutcome::Inserted);
        assert_eq!(store.len(), 1);
        let row = store.row(0);
        assert!((row[0] - 0.6).abs() < 1e-6 && (row[1] - 0.8).abs() < 1e-6);
        assert_eq!(store.postings(0), &[1, 3, 5]);
        assert_eq!(store.row_of(7), Some(0));
    }

    #[test]
    fn reinsert_dedups_instead_of_growing() {
        let mut store = EmbeddingStore::new(2, "m");
        store.insert(7, &[3.0, 4.0], &[1]).unwrap();
        // Same direction ⇒ same normalized vector ⇒ unchanged.
        assert_eq!(store.insert(7, &[6.0, 8.0], &[1]).unwrap(), InsertOutcome::Unchanged);
        assert_eq!(store.insert(7, &[0.0, 1.0], &[1]).unwrap(), InsertOutcome::Updated);
        assert_eq!(store.len(), 1);
        assert_eq!(store.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn dim_mismatch_is_a_typed_error() {
        let mut store = EmbeddingStore::new(3, "m");
        assert_eq!(
            store.insert(1, &[1.0], &[]).unwrap_err(),
            IndexError::DimMismatch { expected: 3, found: 1 }
        );
    }

    #[test]
    fn zero_vector_stays_zero() {
        let mut store = EmbeddingStore::new(2, "m");
        store.insert(1, &[0.0, 0.0], &[]).unwrap();
        assert_eq!(store.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn bytes_tracks_contents() {
        let mut store = EmbeddingStore::new(4, "model-x");
        let empty = store.bytes();
        store.insert(1, &[1.0, 0.0, 0.0, 0.0], &[2, 9]).unwrap();
        assert_eq!(store.bytes(), empty + 8 + 16 + 4 + 8);
    }

    #[test]
    fn duplicate_keys_in_parts_are_rejected() {
        let err = EmbeddingStore::from_parts(
            1,
            String::new(),
            vec![3, 3],
            vec![1.0, 1.0],
            vec![vec![], vec![]],
        )
        .unwrap_err();
        assert_eq!(err, IndexError::BadRecord { index: 1 });
    }
}
