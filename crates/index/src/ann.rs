//! A std-only HNSW-style approximate-nearest-neighbor graph.
//!
//! Brute-force search is exact but O(n·d) per query; past ~10k entries
//! the [`crate::Index`] swaps in this graph. It is the standard
//! hierarchical navigable-small-world construction — greedy descent
//! through sparse upper layers, then a beam search over the dense bottom
//! layer — with two deliberate deviations that keep results reproducible
//! without an RNG or build-order dependence:
//!
//! 1. **Deterministic levels.** A node's top layer is derived from a
//!    SplitMix64 hash of its *key*, not from a random draw, so the layer
//!    structure is a pure function of the stored keys.
//! 2. **Canonical insertion order.** [`AnnGraph::build`] inserts nodes
//!    in ascending-key order regardless of the order entries landed in
//!    the store, so two stores holding the same entries — no matter how
//!    shard scheduling interleaved their inserts — build byte-identical
//!    graphs. Rebuilds happen off the store snapshot (see
//!    [`crate::Index`]), amortized by a tail scan for entries added
//!    since the last build.
//!
//! Recall is gated in tests and the `throughput_index` bench: ≥ 0.95
//! recall@10 against the exact searcher on a ≥10k synthetic corpus.

use crate::search::{rank_candidates, Searcher};
use crate::store::EmbeddingStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Graph construction / search tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnConfig {
    /// Max neighbors per node on layers ≥ 1 (layer 0 keeps `2 × m`).
    pub m: usize,
    /// Beam width while building.
    pub ef_construction: usize,
    /// Beam width while searching (raised to `k` when `k` is larger).
    pub ef_search: usize,
}

impl Default for AnnConfig {
    fn default() -> AnnConfig {
        AnnConfig { m: 16, ef_construction: 64, ef_search: 48 }
    }
}

/// `(similarity, node)` with a total order: higher similarity first,
/// ties broken by lower node id. NaN never occurs (vectors are finite
/// and normalized), but the ordering stays total even if it did.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    sim: f32,
    node: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Cand) -> Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Cand) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The built graph. Node ids index [`AnnGraph::rows`]; nodes are the
/// store rows present at build time, in ascending-key order.
#[derive(Debug, Clone, Default)]
pub struct AnnGraph {
    config: AnnConfig,
    /// Node id → store row.
    rows: Vec<u32>,
    /// Node id → highest layer the node appears on.
    levels: Vec<u8>,
    /// `layers[l][node]` → neighbor node ids (empty when the node does
    /// not reach layer `l`).
    layers: Vec<Vec<Vec<u32>>>,
    /// The entry node (highest-layer node; ties by id).
    entry: u32,
    /// How many store rows existed at build time — rows beyond this are
    /// not in the graph and must be scanned exactly (the caller's job).
    built_rows: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic stand-in for HNSW's geometric level draw: the
/// key's hash mapped to (0,1], then `⌊-ln(u)/ln(m)⌋`, capped.
fn level_for(key: u64, m: usize) -> u8 {
    let u = ((splitmix64(key) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let level = (-u.ln() / (m.max(2) as f64).ln()).floor();
    level.min(15.0) as u8
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl AnnGraph {
    /// How many store rows the graph covers.
    pub fn built_rows(&self) -> usize {
        self.built_rows
    }

    /// Builds the graph over every entry currently in `store`.
    pub fn build(store: &EmbeddingStore, config: AnnConfig) -> AnnGraph {
        let n = store.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&r| store.keys()[r as usize]);
        let mut graph = AnnGraph {
            config,
            rows: Vec::with_capacity(n),
            levels: Vec::with_capacity(n),
            layers: Vec::new(),
            entry: 0,
            built_rows: n,
        };
        for row in order {
            graph.insert(store, row);
        }
        graph
    }

    fn max_level(&self) -> u8 {
        self.layers.len().saturating_sub(1) as u8
    }

    fn vector<'a>(&self, store: &'a EmbeddingStore, node: u32) -> &'a [f32] {
        store.row(self.rows[node as usize] as usize)
    }

    fn insert(&mut self, store: &EmbeddingStore, row: u32) {
        let node = self.rows.len() as u32;
        let level = level_for(store.keys()[row as usize], self.config.m);
        self.rows.push(row);
        self.levels.push(level);
        while self.layers.len() <= level as usize {
            // A new top layer: every existing node gets an (empty) slot.
            self.layers.push(vec![Vec::new(); self.rows.len().saturating_sub(1)]);
        }
        for layer in &mut self.layers {
            layer.push(Vec::new());
        }
        if node == 0 {
            self.entry = 0;
            return;
        }
        let query = store.row(row as usize).to_vec();
        let mut ep = self.entry;
        // Greedy descent through layers above the node's level.
        let mut l = self.max_level();
        while l > level {
            ep = self.greedy_step(store, &query, ep, l);
            if l == 0 {
                break;
            }
            l -= 1;
        }
        // Beam-connect on every layer the node lives on.
        for l in (0..=level.min(self.max_level())).rev() {
            let found = self.search_layer(store, &query, ep, self.config.ef_construction, l, node);
            let cap = if l == 0 { 2 * self.config.m } else { self.config.m };
            let neighbors: Vec<u32> =
                found.iter().take(cap).map(|c| c.node).collect();
            for &nb in &neighbors {
                self.layers[l as usize][nb as usize].push(node);
                self.prune(store, nb, l, cap);
            }
            self.layers[l as usize][node as usize] = neighbors;
            if let Some(best) = found.first() {
                ep = best.node;
            }
        }
        // A node reaching above the previous top becomes the entry.
        if level > self.levels[self.entry as usize]
            || (level == self.levels[self.entry as usize] && node < self.entry)
        {
            self.entry = node;
        }
    }

    /// Keeps `node`'s neighbor list on `layer` at the `cap` best by
    /// similarity (ties by id) — the degree bound that keeps search
    /// logarithmic.
    fn prune(&mut self, store: &EmbeddingStore, node: u32, layer: u8, cap: usize) {
        let list = &self.layers[layer as usize][node as usize];
        if list.len() <= cap {
            return;
        }
        let base = self.vector(store, node);
        let mut scored: Vec<Cand> = list
            .iter()
            .map(|&nb| Cand { sim: dot(base, self.vector(store, nb)), node: nb })
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        scored.truncate(cap);
        self.layers[layer as usize][node as usize] = scored.into_iter().map(|c| c.node).collect();
    }

    /// One greedy hill-climb on `layer`: follow improving neighbors
    /// until a local similarity maximum.
    fn greedy_step(&self, store: &EmbeddingStore, query: &[f32], mut ep: u32, layer: u8) -> u32 {
        let mut best = dot(query, self.vector(store, ep));
        loop {
            let mut improved = false;
            for &nb in &self.layers[layer as usize][ep as usize] {
                let sim = dot(query, self.vector(store, nb));
                if sim > best || (sim == best && nb < ep) {
                    best = sim;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Classic beam search on one layer: returns up to `ef` candidates
    /// sorted best-first. `skip` excludes the node being inserted.
    fn search_layer(
        &self,
        store: &EmbeddingStore,
        query: &[f32],
        ep: u32,
        ef: usize,
        layer: u8,
        skip: u32,
    ) -> Vec<Cand> {
        let mut visited = vec![false; self.rows.len()];
        visited[ep as usize] = true;
        let start = Cand { sim: dot(query, self.vector(store, ep)), node: ep };
        // Frontier: best-first. Result set: worst-first (to evict).
        let mut frontier = BinaryHeap::from([start]);
        let mut results: BinaryHeap<std::cmp::Reverse<Cand>> =
            BinaryHeap::from([std::cmp::Reverse(start)]);
        while let Some(cand) = frontier.pop() {
            let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
            if results.len() >= ef && cand.sim < worst {
                break;
            }
            for &nb in &self.layers[layer as usize][cand.node as usize] {
                if nb == skip || std::mem::replace(&mut visited[nb as usize], true) {
                    continue;
                }
                let next = Cand { sim: dot(query, self.vector(store, nb)), node: nb };
                let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
                if results.len() < ef || next.sim > worst {
                    frontier.push(next);
                    results.push(std::cmp::Reverse(next));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = results.into_iter().map(|r| r.0).collect();
        out.sort_unstable_by(|a, b| b.cmp(a));
        out
    }
}

impl Searcher for AnnGraph {
    fn name(&self) -> &'static str {
        "ann"
    }

    /// Approximate top-`k`: greedy descent to layer 0, then a beam of
    /// `max(ef_search, k)`. Only covers rows < [`AnnGraph::built_rows`];
    /// the owning [`crate::Index`] scans newer rows exactly and merges.
    fn top_cosine(&self, store: &EmbeddingStore, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        if self.rows.is_empty() {
            return Vec::new();
        }
        let mut ep = self.entry;
        for l in (1..=self.max_level()).rev() {
            ep = self.greedy_step(store, query, ep, l);
        }
        let ef = self.config.ef_search.max(k);
        let found = self.search_layer(store, query, ep, ef, 0, u32::MAX);
        let candidates = found
            .into_iter()
            .map(|c| (self.rows[c.node as usize] as usize, c.sim))
            .collect();
        rank_candidates(store, candidates, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ExactSearcher;

    /// Deterministic pseudo-vectors without an RNG dependency.
    fn synth_vector(seed: u64, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|c| {
                let bits = splitmix64(seed.wrapping_mul(31).wrapping_add(c as u64));
                (bits >> 40) as f32 / (1u64 << 24) as f32 - 0.5
            })
            .collect()
    }

    fn synth_store(n: usize, dim: usize) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(dim, "synthetic");
        for i in 0..n {
            let key = splitmix64(i as u64 ^ 0xabcd);
            store.insert(key, &synth_vector(key, dim), &[]).unwrap();
        }
        store
    }

    #[test]
    fn small_graph_finds_exact_neighbors() {
        let store = synth_store(200, 8);
        let graph = AnnGraph::build(&store, AnnConfig { m: 8, ef_construction: 48, ef_search: 48 });
        let mut agree = 0;
        for q in 0..20 {
            let query = {
                let mut v = synth_vector(q * 7 + 3, 8);
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= norm);
                v
            };
            let exact = ExactSearcher.top_cosine(&store, &query, 1);
            let approx = graph.top_cosine(&store, &query, 1);
            if exact[0].0 == approx[0].0 {
                agree += 1;
            }
        }
        assert!(agree >= 18, "top-1 agreement {agree}/20 on a 200-entry store");
    }

    #[test]
    fn build_is_insertion_order_independent() {
        let dim = 6;
        let mut a = EmbeddingStore::new(dim, "m");
        let mut b = EmbeddingStore::new(dim, "m");
        let entries: Vec<(u64, Vec<f32>)> =
            (0..120).map(|i| (splitmix64(i), synth_vector(i, dim))).collect();
        for (k, v) in &entries {
            a.insert(*k, v, &[]).unwrap();
        }
        for (k, v) in entries.iter().rev() {
            b.insert(*k, v, &[]).unwrap();
        }
        let cfg = AnnConfig { m: 6, ef_construction: 32, ef_search: 32 };
        let ga = AnnGraph::build(&a, cfg);
        let gb = AnnGraph::build(&b, cfg);
        for q in 0..10 {
            let query = synth_vector(1000 + q, dim);
            let ha: Vec<u64> =
                ga.top_cosine(&a, &query, 5).iter().map(|&(r, _)| a.keys()[r]).collect();
            let hb: Vec<u64> =
                gb.top_cosine(&b, &query, 5).iter().map(|&(r, _)| b.keys()[r]).collect();
            assert_eq!(ha, hb, "query {q} diverged across insertion orders");
        }
    }

    #[test]
    fn empty_graph_returns_nothing() {
        let store = EmbeddingStore::new(4, "m");
        let graph = AnnGraph::build(&store, AnnConfig::default());
        assert!(graph.top_cosine(&store, &[0.0; 4], 3).is_empty());
        assert_eq!(graph.built_rows(), 0);
    }

    #[test]
    fn levels_are_deterministic_and_bounded() {
        for key in 0..1000u64 {
            let l1 = level_for(key, 16);
            assert_eq!(l1, level_for(key, 16));
            assert!(l1 <= 15);
        }
        // The geometric distribution actually produces some non-zero levels.
        assert!((0..1000u64).any(|k| level_for(k, 16) > 0));
    }
}
