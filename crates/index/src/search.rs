//! Query-side types and the exact brute-force searcher.
//!
//! The [`Searcher`] trait abstracts *candidate generation*: given a
//! normalized query, produce the top rows by cosine similarity. The
//! exact searcher scores every stored row through the batch-major
//! [`tensor::cosine_scores`] kernel; the ANN searcher
//! ([`crate::ann::AnnGraph`]) walks a small-world graph and is swapped
//! in above a corpus-size threshold by [`crate::Index`]. Ranking on top
//! of the candidates (min-sim filtering, hybrid RRF fusion) is shared
//! and lives in [`crate::Index::search`].

use crate::error::IndexError;
use crate::store::EmbeddingStore;

/// How `search` ranks its candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Pure embedding similarity.
    #[default]
    Cosine,
    /// Reciprocal-rank fusion of cosine ranks with token-overlap ranks.
    Hybrid,
}

impl SearchMode {
    /// The wire-protocol name of this mode.
    pub fn name(self) -> &'static str {
        match self {
            SearchMode::Cosine => "cosine",
            SearchMode::Hybrid => "hybrid",
        }
    }

    /// Parses a wire-protocol mode name.
    pub fn from_name(name: &str) -> Option<SearchMode> {
        match name {
            "cosine" => Some(SearchMode::Cosine),
            "hybrid" => Some(SearchMode::Hybrid),
            _ => None,
        }
    }
}

/// Validated query parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOptions {
    /// How many hits to return.
    pub k: usize,
    /// Hits below this cosine similarity are dropped (applies in both
    /// modes; `-1.0` disables the threshold).
    pub min_sim: f32,
    /// Ranking mode.
    pub mode: SearchMode,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions { k: 5, min_sim: -1.0, mode: SearchMode::Cosine }
    }
}

impl SearchOptions {
    /// Rejects degenerate parameters with typed errors.
    ///
    /// # Errors
    ///
    /// [`IndexError::BadK`] for `k == 0`, [`IndexError::BadMinSim`] for
    /// thresholds outside `[-1, 1]` (NaN included).
    pub fn validate(&self) -> Result<(), IndexError> {
        if self.k == 0 {
            return Err(IndexError::BadK);
        }
        if !(-1.0..=1.0).contains(&self.min_sim) {
            return Err(IndexError::BadMinSim { value: self.min_sim });
        }
        Ok(())
    }
}

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The entry's content-hash key.
    pub key: u64,
    /// Cosine similarity to the query.
    pub cosine: f32,
    /// The ranking score: the cosine itself in cosine mode, the fused
    /// RRF score in hybrid mode.
    pub score: f64,
}

/// Candidate generation: the top `k` rows by cosine similarity, sorted
/// descending, ties broken by key ascending.
pub trait Searcher {
    /// Human-readable name for diagnostics.
    fn name(&self) -> &'static str;

    /// The top-`k` `(row, cosine)` candidates for a normalized query.
    fn top_cosine(&self, store: &EmbeddingStore, query: &[f32], k: usize) -> Vec<(usize, f32)>;
}

/// Sorts `(row, cosine)` pairs by similarity descending with the
/// deterministic key-ascending tie-break, truncating to `k` — the one
/// ordering rule every searcher (and the hybrid ranker) shares, so
/// results never depend on insertion order or shard interleaving.
pub fn rank_candidates(
    store: &EmbeddingStore,
    mut candidates: Vec<(usize, f32)>,
    k: usize,
) -> Vec<(usize, f32)> {
    candidates.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(store.keys()[a.0].cmp(&store.keys()[b.0]))
    });
    candidates.truncate(k);
    candidates
}

/// Exact brute-force search: every stored row scored in one batch-major
/// kernel call, then top-k selected.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSearcher;

impl Searcher for ExactSearcher {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn top_cosine(&self, store: &EmbeddingStore, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        let n = store.len();
        let mut scores = vec![0.0f32; n];
        if n > 0 && store.dim() > 0 {
            tensor::cosine_scores(store.matrix(), n, store.dim(), query, 1, &mut scores);
        }
        let candidates = scores.into_iter().enumerate().collect();
        rank_candidates(store, candidates, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store3() -> EmbeddingStore {
        let mut store = EmbeddingStore::new(2, "m");
        store.insert(10, &[1.0, 0.0], &[1]).unwrap();
        store.insert(20, &[0.0, 1.0], &[2]).unwrap();
        store.insert(30, &[1.0, 1.0], &[3]).unwrap();
        store
    }

    #[test]
    fn exact_search_ranks_by_cosine() {
        let store = store3();
        let hits = ExactSearcher.top_cosine(&store, &[1.0, 0.0], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(store.keys()[hits[0].0], 10);
        assert_eq!(hits[0].1, 1.0);
        assert_eq!(store.keys()[hits[1].0], 30);
        assert!((hits[1].1 - (0.5f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn ties_break_by_key_ascending() {
        let mut store = EmbeddingStore::new(2, "m");
        // Inserted in descending key order; identical vectors.
        store.insert(9, &[1.0, 0.0], &[]).unwrap();
        store.insert(4, &[1.0, 0.0], &[]).unwrap();
        let hits = ExactSearcher.top_cosine(&store, &[1.0, 0.0], 2);
        assert_eq!(store.keys()[hits[0].0], 4);
        assert_eq!(store.keys()[hits[1].0], 9);
    }

    #[test]
    fn options_validate() {
        assert_eq!(
            SearchOptions { k: 0, ..SearchOptions::default() }.validate().unwrap_err(),
            IndexError::BadK
        );
        assert_eq!(
            SearchOptions { min_sim: 1.5, ..SearchOptions::default() }.validate().unwrap_err(),
            IndexError::BadMinSim { value: 1.5 }
        );
        assert!(matches!(
            SearchOptions { min_sim: f32::NAN, ..SearchOptions::default() }
                .validate()
                .unwrap_err(),
            IndexError::BadMinSim { .. }
        ));
        assert!(SearchOptions::default().validate().is_ok());
    }

    #[test]
    fn mode_names_roundtrip() {
        for mode in [SearchMode::Cosine, SearchMode::Hybrid] {
            assert_eq!(SearchMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(SearchMode::from_name("dance"), None);
    }
}
