//! # index — a persistent embedding index and semantic code-search core
//!
//! LIGER's program embeddings (DESIGN.md §2) put semantically similar
//! methods near each other in cosine space; this crate makes that
//! actionable as a *search service* substrate (DESIGN.md §2h):
//!
//! - [`EmbeddingStore`] — normalized embedding vectors plus token
//!   posting lists keyed by the serve routing hash (FNV-1a over program
//!   structure), deduplicating on re-insert,
//! - [`Searcher`] — exact brute-force top-k over the batch-major matrix
//!   ([`ExactSearcher`], via `tensor::cosine_scores`) and a std-only
//!   HNSW-style graph ([`AnnGraph`]) that activates past
//!   [`IndexConfig::ann_threshold`] entries,
//! - [`rrf_fuse`] — hybrid ranking by reciprocal-rank fusion of cosine
//!   ranks with token-overlap ranks,
//! - [`disk`] — the lossless `LGRI1` on-disk format, every corruption a
//!   typed [`IndexError`],
//! - [`Index`] — the facade `liger-serve` mounts behind its `index` /
//!   `search` / `similar` ops.
//!
//! Determinism contract: search results are a pure function of the set
//! of stored entries and the query — never of insertion order, shard
//! interleaving, or save/load cycles. Every ranking breaks ties by key
//! ascending, and the ANN graph builds from entries in sorted-key order.
//!
//! # Examples
//!
//! ```
//! use index::{Index, SearchOptions};
//!
//! let mut idx = Index::new(4, "demo-model");
//! idx.insert(0xa1, &[1.0, 0.0, 0.0, 0.0], &[10, 11]).unwrap();
//! idx.insert(0xb2, &[0.0, 1.0, 0.0, 0.0], &[12]).unwrap();
//!
//! let result = idx
//!     .search(&[0.9, 0.1, 0.0, 0.0], &[10], &SearchOptions::default())
//!     .unwrap();
//! assert_eq!(result.hits[0].key, 0xa1);
//! assert!(result.hits[0].cosine > 0.99);
//! ```

pub mod ann;
pub mod disk;
pub mod error;
pub mod rrf;
pub mod search;
pub mod store;

pub use ann::{AnnConfig, AnnGraph};
pub use error::IndexError;
pub use rrf::{rrf_fuse, DEFAULT_RRF_K};
pub use search::{ExactSearcher, Hit, SearchMode, SearchOptions, Searcher};
pub use store::{EmbeddingStore, InsertOutcome};

use std::path::Path;

/// Tunables for the [`Index`] facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Entry count at which search switches from exact brute force to
    /// the ANN graph. Exact scans stay comfortably under the 100ms
    /// target below this size; past it the graph pays for itself.
    pub ann_threshold: usize,
    /// ANN graph construction/search parameters.
    pub ann: AnnConfig,
    /// The damping constant for hybrid reciprocal-rank fusion.
    pub rrf_k: usize,
}

impl Default for IndexConfig {
    fn default() -> IndexConfig {
        IndexConfig { ann_threshold: 10_000, ann: AnnConfig::default(), rrf_k: DEFAULT_RRF_K }
    }
}

/// What one [`Index::search`] call did, beyond the hits themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The ranked hits, best first, at most `k`.
    pub hits: Vec<Hit>,
    /// How many stored entries were eligible.
    pub searched: usize,
    /// Whether the ANN graph produced the candidates.
    pub ann_used: bool,
    /// Whether the ANN graph came up short and the query fell back to
    /// an exact scan (counted on `index.ann_fallback`).
    pub ann_fallback: bool,
}

/// A point-in-time summary for the `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Stored entries.
    pub entries: usize,
    /// Serialized (`LGRI1`) size in bytes.
    pub bytes: usize,
    /// Searches served since this process opened the index.
    pub searches: u64,
}

/// The facade: store + searcher selection + hybrid ranking + stats.
#[derive(Debug, Clone, Default)]
pub struct Index {
    store: EmbeddingStore,
    config: IndexConfig,
    /// Built lazily once the store crosses the threshold; dropped when
    /// an update invalidates stored vectors.
    graph: Option<AnnGraph>,
    searches: u64,
}

impl Index {
    /// An empty index for `dim`-dimensional vectors from the model
    /// identified by `fingerprint`.
    pub fn new(dim: usize, fingerprint: impl Into<String>) -> Index {
        Index::with_config(dim, fingerprint, IndexConfig::default())
    }

    /// Like [`Index::new`] with explicit tunables.
    pub fn with_config(
        dim: usize,
        fingerprint: impl Into<String>,
        config: IndexConfig,
    ) -> Index {
        Index { store: EmbeddingStore::new(dim, fingerprint), config, graph: None, searches: 0 }
    }

    /// Wraps an already-populated store (e.g. one loaded from disk).
    pub fn from_store(store: EmbeddingStore, config: IndexConfig) -> Index {
        Index { store, config, graph: None, searches: 0 }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// The producing model's fingerprint.
    pub fn fingerprint(&self) -> &str {
        self.store.fingerprint()
    }

    /// Stored entry count.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The configuration this index runs with.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Inserts (or refreshes) an entry; see [`EmbeddingStore::insert`].
    ///
    /// # Errors
    ///
    /// [`IndexError::DimMismatch`] when the vector length is wrong.
    pub fn insert(
        &mut self,
        key: u64,
        vector: &[f32],
        tokens: &[u32],
    ) -> Result<InsertOutcome, IndexError> {
        let outcome = self.store.insert(key, vector, tokens)?;
        obs::counter!("index.insert").inc();
        if outcome == InsertOutcome::Updated {
            // Stored vectors changed under the graph — its edges are
            // built on stale similarities. Rebuild from scratch lazily.
            self.graph = None;
        }
        Ok(outcome)
    }

    /// Whether a search right now would consult the ANN graph.
    pub fn ann_active(&self) -> bool {
        self.store.len() >= self.config.ann_threshold
    }

    /// (Re)builds the graph when missing or when the exact-scanned tail
    /// of post-build entries has grown past 10% of the graph.
    fn ensure_graph(&mut self) {
        let stale = match &self.graph {
            None => true,
            Some(g) => (self.store.len() - g.built_rows()) * 10 > g.built_rows(),
        };
        if stale {
            self.graph = Some(AnnGraph::build(&self.store, self.config.ann));
        }
    }

    /// Top-k search. `query` is normalized internally; `query_tokens`
    /// feeds the lexical half of hybrid mode (ignored in cosine mode).
    ///
    /// # Errors
    ///
    /// [`IndexError::BadK`] / [`IndexError::BadMinSim`] for degenerate
    /// options, [`IndexError::EmptyIndex`] when nothing is stored,
    /// [`IndexError::DimMismatch`] for a wrong-length query.
    pub fn search(
        &mut self,
        query: &[f32],
        query_tokens: &[u32],
        opts: &SearchOptions,
    ) -> Result<SearchResult, IndexError> {
        opts.validate()?;
        if self.store.is_empty() {
            return Err(IndexError::EmptyIndex);
        }
        if query.len() != self.store.dim() {
            return Err(IndexError::DimMismatch {
                expected: self.store.dim(),
                found: query.len(),
            });
        }
        let started = std::time::Instant::now();
        self.searches += 1;
        obs::counter!("index.search").inc();

        let mut q = query.to_vec();
        let norm = q.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt();
        if norm > 0.0 {
            let inv = (1.0 / norm) as f32;
            q.iter_mut().for_each(|x| *x *= inv);
        }

        // Hybrid mode fuses ranks, so it needs a candidate pool deeper
        // than k for the fusion to reorder within.
        let pool = match opts.mode {
            SearchMode::Cosine => opts.k,
            SearchMode::Hybrid => (opts.k * 4).max(20),
        };

        let mut ann_used = false;
        let mut ann_fallback = false;
        let candidates = if self.ann_active() {
            ann_used = true;
            self.ensure_graph();
            let graph = self.graph.as_ref().expect("ensure_graph just built it");
            let mut found = graph.top_cosine(&self.store, &q, pool);
            // Entries inserted after the last build are not in the
            // graph: scan them exactly and merge.
            let tail_start = graph.built_rows();
            for row in tail_start..self.store.len() {
                let sim = self
                    .store
                    .row(row)
                    .iter()
                    .zip(&q)
                    .map(|(a, b)| a * b)
                    .sum::<f32>();
                found.push((row, sim));
            }
            if found.len() < pool.min(self.store.len()) {
                // The beam starved (disconnected graph region): give the
                // exact answer instead of a silently bad one.
                ann_fallback = true;
                obs::counter!("index.ann_fallback").inc();
                ExactSearcher.top_cosine(&self.store, &q, pool)
            } else {
                search::rank_candidates(&self.store, found, pool)
            }
        } else {
            ExactSearcher.top_cosine(&self.store, &q, pool)
        };

        let hits = match opts.mode {
            SearchMode::Cosine => candidates
                .into_iter()
                .filter(|&(_, sim)| sim >= opts.min_sim)
                .take(opts.k)
                .map(|(row, sim)| Hit {
                    key: self.store.keys()[row],
                    cosine: sim,
                    score: f64::from(sim),
                })
                .collect(),
            SearchMode::Hybrid => self.hybrid_hits(&q, query_tokens, candidates, opts, pool),
        };

        obs::histogram!("index.search_us").record(started.elapsed().as_micros() as u64);
        Ok(SearchResult { hits, searched: self.store.len(), ann_used, ann_fallback })
    }

    /// Fuses the cosine candidate ranking with a token-overlap ranking
    /// via reciprocal ranks, then filters by `min_sim` and truncates.
    fn hybrid_hits(
        &self,
        query: &[f32],
        query_tokens: &[u32],
        cosine_candidates: Vec<(usize, f32)>,
        opts: &SearchOptions,
        pool: usize,
    ) -> Vec<Hit> {
        let cosine_keys: Vec<u64> =
            cosine_candidates.iter().map(|&(row, _)| self.store.keys()[row]).collect();
        let lexical_keys = self.lexical_ranking(query_tokens, pool);
        let fused = rrf_fuse(&[&cosine_keys, &lexical_keys], self.config.rrf_k);
        let mut hits = Vec::with_capacity(opts.k);
        for (key, score) in fused {
            let row = self.store.row_of(key).expect("fused keys come from the store");
            let cosine = self
                .store
                .row(row)
                .iter()
                .zip(query)
                .map(|(a, b)| a * b)
                .sum::<f32>();
            if cosine < opts.min_sim {
                continue;
            }
            hits.push(Hit { key, cosine, score });
            if hits.len() == opts.k {
                break;
            }
        }
        hits
    }

    /// Ranks entries by `|postings ∩ query_tokens|` descending (ties by
    /// key ascending), dropping zero-overlap entries, truncated to
    /// `pool`. Both sides are sorted, so overlap is a linear merge.
    fn lexical_ranking(&self, query_tokens: &[u32], pool: usize) -> Vec<u64> {
        let mut sorted_query = query_tokens.to_vec();
        sorted_query.sort_unstable();
        sorted_query.dedup();
        if sorted_query.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(usize, u64)> = Vec::new();
        for row in 0..self.store.len() {
            let overlap = sorted_merge_overlap(self.store.postings(row), &sorted_query);
            if overlap > 0 {
                scored.push((overlap, self.store.keys()[row]));
            }
        }
        scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(pool);
        scored.into_iter().map(|(_, key)| key).collect()
    }

    /// Stats for the serve `stats` op.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            entries: self.store.len(),
            bytes: self.store.bytes(),
            searches: self.searches,
        }
    }

    /// Persists the store to `path` in the `LGRI1` format.
    ///
    /// # Errors
    ///
    /// [`IndexError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), IndexError> {
        disk::save_to_path(&self.store, path)
    }

    /// Loads an index from `path`, refusing files whose model metadata
    /// does not match the serving model.
    ///
    /// # Errors
    ///
    /// Every [`disk::load_from_path`] error, plus
    /// [`IndexError::FingerprintMismatch`] / [`IndexError::DimMismatch`]
    /// when the file was written for a different model.
    pub fn load(
        path: &Path,
        expected_dim: usize,
        expected_fingerprint: &str,
        config: IndexConfig,
    ) -> Result<Index, IndexError> {
        let store = disk::load_from_path(path)?;
        if store.fingerprint() != expected_fingerprint {
            return Err(IndexError::FingerprintMismatch {
                found: store.fingerprint().to_string(),
                expected: expected_fingerprint.to_string(),
            });
        }
        if store.dim() != expected_dim {
            return Err(IndexError::DimMismatch {
                expected: expected_dim,
                found: store.dim(),
            });
        }
        Ok(Index::from_store(store, config))
    }
}

/// Intersection size of two sorted, deduplicated slices.
fn sorted_merge_overlap(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_index() -> Index {
        let mut idx = Index::new(3, "m");
        idx.insert(1, &[1.0, 0.0, 0.0], &[10, 11]).unwrap();
        idx.insert(2, &[0.0, 1.0, 0.0], &[11, 12]).unwrap();
        idx.insert(3, &[0.0, 0.0, 1.0], &[13]).unwrap();
        idx
    }

    #[test]
    fn cosine_search_ranks_and_filters() {
        let mut idx = demo_index();
        let opts = SearchOptions { k: 3, min_sim: 0.5, ..SearchOptions::default() };
        let result = idx.search(&[1.0, 0.2, 0.0], &[], &opts).unwrap();
        assert_eq!(result.hits[0].key, 1);
        assert!(result.hits.iter().all(|h| h.cosine >= 0.5));
        assert!(!result.ann_used);
        assert_eq!(result.searched, 3);
        assert_eq!(idx.stats().searches, 1);
    }

    #[test]
    fn hybrid_search_rewards_token_overlap() {
        let mut idx = Index::new(2, "m");
        // Two entries equally similar to the query by cosine…
        idx.insert(5, &[1.0, 1.0], &[100]).unwrap();
        idx.insert(6, &[1.0, 1.0], &[200, 201]).unwrap();
        let opts =
            SearchOptions { k: 2, mode: SearchMode::Hybrid, ..SearchOptions::default() };
        // …but the query's tokens only overlap entry 6.
        let result = idx.search(&[1.0, 1.0], &[200, 201], &opts).unwrap();
        assert_eq!(result.hits[0].key, 6, "lexical overlap should break the cosine tie");
        assert!(result.hits[0].score > result.hits[1].score);
    }

    #[test]
    fn empty_index_and_bad_queries_are_typed() {
        let mut idx = Index::new(2, "m");
        assert_eq!(
            idx.search(&[1.0, 0.0], &[], &SearchOptions::default()).unwrap_err(),
            IndexError::EmptyIndex
        );
        idx.insert(1, &[1.0, 0.0], &[]).unwrap();
        assert_eq!(
            idx.search(&[1.0], &[], &SearchOptions::default()).unwrap_err(),
            IndexError::DimMismatch { expected: 2, found: 1 }
        );
        let bad_k = SearchOptions { k: 0, ..SearchOptions::default() };
        assert_eq!(idx.search(&[1.0, 0.0], &[], &bad_k).unwrap_err(), IndexError::BadK);
    }

    #[test]
    fn ann_activates_above_threshold_with_exact_tail() {
        let config = IndexConfig {
            ann_threshold: 32,
            ann: AnnConfig { m: 8, ef_construction: 32, ef_search: 32 },
            rrf_k: DEFAULT_RRF_K,
        };
        let mut idx = Index::with_config(4, "m", config);
        for i in 0..40u64 {
            let v = [
                (i % 7) as f32 - 3.0,
                (i % 5) as f32 - 2.0,
                (i % 3) as f32 - 1.0,
                1.0,
            ];
            idx.insert(1000 + i, &v, &[]).unwrap();
        }
        assert!(idx.ann_active());
        let opts = SearchOptions { k: 5, ..SearchOptions::default() };
        let result = idx.search(&[0.5, -0.5, 0.0, 1.0], &[], &opts).unwrap();
        assert!(result.ann_used);
        assert_eq!(result.hits.len(), 5);
        // A tail insert after the first search is still findable.
        idx.insert(9999, &[0.5, -0.5, 0.0, 1.0], &[]).unwrap();
        let result = idx.search(&[0.5, -0.5, 0.0, 1.0], &[], &opts).unwrap();
        assert_eq!(result.hits[0].key, 9999, "tail entries must be merged: {result:?}");
        assert!(result.hits[0].cosine > 0.999);
    }

    #[test]
    fn save_load_roundtrip_keeps_search_behavior() {
        let mut idx = demo_index();
        let dir = std::env::temp_dir().join(format!("lgri-lib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.lgri");
        idx.save(&path).unwrap();
        let mut loaded = Index::load(&path, 3, "m", IndexConfig::default()).unwrap();
        let opts = SearchOptions::default();
        let a = idx.search(&[0.2, 0.9, 0.1], &[11], &opts).unwrap();
        let b = loaded.search(&[0.2, 0.9, 0.1], &[11], &opts).unwrap();
        assert_eq!(a.hits, b.hits);
        assert_eq!(
            Index::load(&path, 3, "other", IndexConfig::default()).unwrap_err().kind(),
            "fingerprint_mismatch"
        );
        assert_eq!(
            Index::load(&path, 9, "m", IndexConfig::default()).unwrap_err().kind(),
            "dim_mismatch"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_track_entries_bytes_searches() {
        let mut idx = demo_index();
        let s = idx.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.bytes, idx.store().bytes());
        assert_eq!(s.searches, 0);
        idx.search(&[1.0, 0.0, 0.0], &[], &SearchOptions::default()).unwrap();
        assert_eq!(idx.stats().searches, 1);
    }
}
