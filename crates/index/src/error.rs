//! Typed errors for every index operation. The index is a *service*
//! subsystem: corrupt files, bad query parameters, and mismatched
//! metadata all surface as values a caller can map to a protocol reply —
//! nothing in this crate panics on untrusted input.

/// Everything that can go wrong inserting into, searching, saving, or
/// loading an [`crate::EmbeddingStore`].
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// A vector's length does not match the store's dimension.
    DimMismatch {
        /// The store's dimension.
        expected: usize,
        /// The offending vector's length.
        found: usize,
    },
    /// A `search` against an index holding no entries.
    EmptyIndex,
    /// `k == 0` asks for zero results — a degenerate query the caller
    /// almost certainly did not mean.
    BadK,
    /// `min_sim` outside `[-1, 1]` can never match a cosine.
    BadMinSim {
        /// The offending threshold.
        value: f32,
    },
    /// The store on disk was written for a different model (fingerprint
    /// mismatch): its vectors are not comparable to freshly served ones.
    FingerprintMismatch {
        /// The fingerprint the index file declares.
        found: String,
        /// The fingerprint the running model expects.
        expected: String,
    },
    /// The file does not start with the `LGRI` magic bytes.
    BadMagic,
    /// The magic matched but the version byte is not the current one.
    VersionMismatch {
        /// The version byte found in the input.
        found: u8,
    },
    /// The input ended in the middle of a record.
    Truncated,
    /// A record carried a non-UTF-8 fingerprint, a duplicate key, or an
    /// element count that overflows.
    BadRecord {
        /// The 0-based entry index (entry count for header problems).
        index: usize,
    },
    /// Bytes remained after the declared records — writer and reader
    /// disagree about the layout; refuse rather than silently ignore.
    TrailingBytes,
    /// Filesystem failure (message only, to keep the error comparable).
    Io(String),
}

impl IndexError {
    /// A stable machine-readable tag for protocol replies
    /// (`{"ok":false,"error":…,"kind":…}`).
    pub fn kind(&self) -> &'static str {
        match self {
            IndexError::DimMismatch { .. } => "dim_mismatch",
            IndexError::EmptyIndex => "empty_index",
            IndexError::BadK => "bad_k",
            IndexError::BadMinSim { .. } => "bad_min_sim",
            IndexError::FingerprintMismatch { .. } => "fingerprint_mismatch",
            IndexError::BadMagic => "bad_magic",
            IndexError::VersionMismatch { .. } => "version_mismatch",
            IndexError::Truncated => "truncated",
            IndexError::BadRecord { .. } => "bad_record",
            IndexError::TrailingBytes => "trailing_bytes",
            IndexError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::DimMismatch { expected, found } => {
                write!(f, "vector has {found} dims, the index stores {expected}")
            }
            IndexError::EmptyIndex => write!(f, "the index holds no entries"),
            IndexError::BadK => write!(f, "k must be at least 1"),
            IndexError::BadMinSim { value } => {
                write!(f, "min_sim {value} is outside [-1, 1]")
            }
            IndexError::FingerprintMismatch { found, expected } => write!(
                f,
                "index was built by model {found:?}, this server runs {expected:?}"
            ),
            IndexError::BadMagic => write!(f, "not a LIGER index (bad magic)"),
            IndexError::VersionMismatch { found } => {
                write!(f, "unsupported index version {:?}", char::from(*found))
            }
            IndexError::Truncated => write!(f, "index file ends mid-record"),
            IndexError::BadRecord { index } => write!(f, "malformed record for entry {index}"),
            IndexError::TrailingBytes => write!(f, "trailing bytes after the last record"),
            IndexError::Io(msg) => write!(f, "index I/O error: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_messages_render() {
        let cases = [
            (IndexError::DimMismatch { expected: 4, found: 3 }, "dim_mismatch"),
            (IndexError::EmptyIndex, "empty_index"),
            (IndexError::BadK, "bad_k"),
            (IndexError::BadMinSim { value: 2.0 }, "bad_min_sim"),
            (IndexError::BadMagic, "bad_magic"),
            (IndexError::VersionMismatch { found: b'9' }, "version_mismatch"),
            (IndexError::Truncated, "truncated"),
            (IndexError::BadRecord { index: 2 }, "bad_record"),
            (IndexError::TrailingBytes, "trailing_bytes"),
            (IndexError::Io("gone".into()), "io"),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert!(!err.to_string().is_empty());
        }
    }
}
