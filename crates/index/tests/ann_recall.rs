//! The ANN quality gate (DESIGN.md §2h): on a corpus past the
//! activation threshold, graph search must reach recall@10 ≥ 0.95
//! against the exact brute-force ranking, and the [`Index`] front end
//! must actually switch over to the graph.

use index::{ExactSearcher, Index, IndexConfig, SearchOptions, Searcher};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const DIM: usize = 16;
const CORPUS: usize = 10_500;
const QUERIES: usize = 40;
const K: usize = 10;

fn random_vector(rng: &mut StdRng) -> Vec<f32> {
    (0..DIM).map(|_| rng.random_range(-1.0f32..1.0)).collect()
}

#[test]
fn ann_recall_at_10_beats_0_95_past_the_threshold() {
    let mut rng = StdRng::seed_from_u64(0x1dc);
    let mut idx = Index::with_config(DIM, "recall/fp", IndexConfig::default());
    assert!(idx.config().ann_threshold <= CORPUS, "corpus must cross the activation threshold");
    for key in 0..CORPUS as u64 {
        let v = random_vector(&mut rng);
        idx.insert(key, &v, &[]).unwrap();
    }
    assert!(idx.ann_active(), "past the threshold the graph path must be active");

    let opts = SearchOptions { k: K, ..SearchOptions::default() };
    let mut hit_sum = 0usize;
    let mut ann_served = 0usize;
    for q in 0..QUERIES {
        let mut qrng = StdRng::seed_from_u64(0xbeef ^ q as u64);
        let query = random_vector(&mut qrng);

        // Ground truth: the exact searcher over the same store.
        let exact: Vec<u64> = ExactSearcher
            .top_cosine(idx.store(), &query, K)
            .into_iter()
            .map(|(row, _)| idx.store().keys()[row])
            .collect();
        assert_eq!(exact.len(), K);

        let result = idx.search(&query, &[], &opts).unwrap();
        assert_eq!(result.hits.len(), K);
        if result.ann_used && !result.ann_fallback {
            ann_served += 1;
        }
        hit_sum += result
            .hits
            .iter()
            .filter(|h| exact.contains(&h.key))
            .count();
    }

    let recall = hit_sum as f64 / (QUERIES * K) as f64;
    assert!(recall >= 0.95, "ANN recall@10 = {recall:.3}, below the 0.95 gate");
    assert!(
        ann_served * 2 > QUERIES,
        "graph search fell back to exact on {}/{QUERIES} queries",
        QUERIES - ann_served
    );
}

#[test]
fn below_the_threshold_search_is_exact() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut idx = Index::with_config(
        DIM,
        "exact/fp",
        IndexConfig { ann_threshold: 1_000, ..IndexConfig::default() },
    );
    for key in 0..100u64 {
        let v = random_vector(&mut rng);
        idx.insert(key, &v, &[]).unwrap();
    }
    assert!(!idx.ann_active());
    let query = random_vector(&mut rng);
    let result = idx.search(&query, &[], &SearchOptions::default()).unwrap();
    assert!(!result.ann_used);
    assert!(!result.ann_fallback);
    assert_eq!(result.searched, 100);
}
