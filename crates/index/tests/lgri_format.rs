//! Property tests for the `LGRI1` on-disk format (DESIGN.md §2h):
//! save → load is lossless for arbitrary stores (including the empty
//! index and the degenerate 0-dim store), and every corruption — any
//! truncation, a flipped magic, a bumped version, trailing garbage —
//! surfaces as a *typed* [`IndexError`], never a panic.

use index::disk::{from_bytes, load_from_path, save_to_path, sniff, to_bytes};
use index::{EmbeddingStore, IndexError};
use proptest::prelude::*;

/// Builds a store from generated raw parts, deduplicating keys the way
/// a caller would (last write wins is irrelevant here — we skip dups so
/// the roundtrip comparison stays 1:1).
fn store_from(
    dim: usize,
    entries: &[(u64, Vec<f32>, Vec<u32>)],
) -> EmbeddingStore {
    let mut store = EmbeddingStore::new(dim, "test/fp");
    for (key, vector, tokens) in entries {
        if store.row_of(*key).is_none() {
            store.insert(*key, &vector[..dim], tokens).unwrap();
        }
    }
    store
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_lossless(store: &EmbeddingStore) {
    let buf = to_bytes(store);
    assert!(sniff(&buf));
    assert_eq!(buf.len(), store.bytes(), "bytes() must predict the serialized size");
    let loaded = from_bytes(&buf).unwrap();
    assert_eq!(loaded.dim(), store.dim());
    assert_eq!(loaded.fingerprint(), store.fingerprint());
    assert_eq!(loaded.keys(), store.keys(), "insertion order must survive");
    assert_eq!(bits(loaded.matrix()), bits(store.matrix()), "vectors must be bitwise lossless");
    for row in 0..store.len() {
        assert_eq!(loaded.postings(row), store.postings(row), "row {row} postings diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_is_lossless(
        dim in 1usize..6,
        entries in proptest::collection::vec(
            (
                0u64..50,
                proptest::collection::vec(-3.0f32..3.0, 6..=6),
                proptest::collection::vec(0u32..40, 0..=5),
            ),
            0..=12,
        ),
    ) {
        let store = store_from(dim, &entries);
        assert_lossless(&store);
    }

    #[test]
    fn every_truncation_is_a_typed_error(
        entries in proptest::collection::vec(
            (
                0u64..20,
                proptest::collection::vec(-2.0f32..2.0, 3..=3),
                proptest::collection::vec(0u32..10, 0..=3),
            ),
            1..=5,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let store = store_from(3, &entries);
        let buf = to_bytes(&store);
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < buf.len());
        match from_bytes(&buf[..cut]) {
            Err(IndexError::Truncated) | Err(IndexError::BadMagic) => {}
            other => panic!("prefix of {cut} bytes: expected a typed error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_headers_are_typed_errors(
        flip_at in 0usize..5,
        entries in proptest::collection::vec(
            (
                0u64..20,
                proptest::collection::vec(-2.0f32..2.0, 2..=2),
                proptest::collection::vec(0u32..10, 0..=2),
            ),
            0..=4,
        ),
    ) {
        let store = store_from(2, &entries);
        let mut buf = to_bytes(&store);
        buf[flip_at] ^= 0x5a;
        match from_bytes(&buf) {
            Err(IndexError::BadMagic) | Err(IndexError::VersionMismatch { .. }) => {}
            // Flipping a byte inside `fp_len` instead reshapes the
            // layout; any typed decode error is acceptable — a panic or
            // a silent success is not.
            Err(IndexError::Truncated)
            | Err(IndexError::TrailingBytes)
            | Err(IndexError::BadRecord { .. }) => {
                prop_assert!(flip_at >= 5, "magic/version flips must be BadMagic/VersionMismatch");
            }
            other => panic!("flip at {flip_at}: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn empty_store_roundtrips() {
    assert_lossless(&EmbeddingStore::new(4, "empty/fp"));
}

#[test]
fn zero_dim_store_roundtrips() {
    // The 0×N edge: entries exist but carry no components. Normalizing
    // a zero-length vector is a no-op, and the format has no special
    // case — each record is just key + 0 floats + postings.
    let mut store = EmbeddingStore::new(0, "zero/fp");
    store.insert(7, &[], &[1, 2, 3]).unwrap();
    store.insert(9, &[], &[]).unwrap();
    assert_lossless(&store);
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut store = EmbeddingStore::new(2, "fp");
    store.insert(1, &[0.5, -0.25], &[3]).unwrap();
    let mut buf = to_bytes(&store);
    buf.push(0);
    assert!(matches!(from_bytes(&buf), Err(IndexError::TrailingBytes)));
}

#[test]
fn file_roundtrip_and_missing_file_are_typed() {
    let dir = std::env::temp_dir().join(format!("lgri-fmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.lgri");

    let mut store = EmbeddingStore::new(3, "file/fp");
    store.insert(11, &[1.0, 2.0, 3.0], &[5, 6]).unwrap();
    store.insert(12, &[-1.0, 0.0, 1.0], &[]).unwrap();
    save_to_path(&store, &path).unwrap();
    let loaded = load_from_path(&path).unwrap();
    assert_eq!(loaded.keys(), store.keys());
    assert_eq!(bits(loaded.matrix()), bits(store.matrix()));

    // No stray temp file survives a successful save.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "atomic save leaked temp files");

    assert!(matches!(
        load_from_path(&dir.join("absent.lgri")),
        Err(IndexError::Io(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}
