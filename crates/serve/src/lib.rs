//! # serve — the liger-serve batched inference service
//!
//! ROADMAP item "production-scale serving": load a trained
//! [`liger::ModelBundle`] checkpoint and answer embedding / method-name /
//! classification queries over TCP, micro-batching concurrent requests
//! into shared forward passes (DESIGN.md §2c).
//!
//! - [`json`] — the minimal JSON value/parser/writer, re-exported from
//!   [`obs`] where it now lives (the workspace is offline; no serde),
//! - [`protocol`] — length-prefixed JSON frames (incremental
//!   [`FrameReader`] + allocation-free [`write_frame_into`]) and the
//!   request grammar,
//! - [`epoll`] — the raw-`epoll` readiness poller and eventfd waker the
//!   event loop runs on (`poll(2)` fallback off-Linux),
//! - [`conn`] — per-connection state machines with the reply-ordering
//!   ledger,
//! - [`stats`] — `obs`-backed counters + interpolated latency
//!   percentiles for STATS, broken down per inference shard,
//! - [`server`] — the epoll event loop, admission control, and the
//!   sharded micro-batching workers (DESIGN.md §2g).
//!
//! # Examples
//!
//! ```no_run
//! use serve::server::{serve, Client, ServerConfig};
//! use serve::json::Json;
//!
//! # fn main() -> std::io::Result<()> {
//! let bundle = liger::ModelBundle::load_from_path("model.lgrb")
//!     .map_err(|e| std::io::Error::other(e.to_string()))?;
//! let handle = serve(&bundle, ServerConfig::default())?;
//! let mut client = Client::connect(handle.local_addr())?;
//! let reply = client.call(&Json::obj(vec![("op", Json::str("ping"))]))?;
//! assert_eq!(reply.get("pong").and_then(Json::as_bool), Some(true));
//! handle.shutdown();
//! handle.join();
//! # Ok(())
//! # }
//! ```

pub use obs::json;
pub mod conn;
pub mod epoll;
pub mod protocol;
pub mod server;
pub mod stats;

pub use json::Json;
pub use protocol::{
    embedding_from_json, embedding_to_json, infer_request, program_from_json, program_to_json,
    read_frame, shed_response, write_frame, write_frame_into, FrameReader, InferInput, InferKind,
    Request, MAX_FRAME,
};
pub use server::{content_hash, serve, CanonMemoStats, Client, ServerConfig, ServerHandle};
pub use stats::{ServeStats, ShardSnapshot, StatsSnapshot};
