//! The liger-serve wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! frame   := length "\n" payload
//! length  := ASCII decimal byte count of payload (no sign, no padding)
//! payload := one JSON value, UTF-8
//! ```
//!
//! The explicit length makes the stream self-delimiting without
//! requiring a streaming JSON parser, keeps payloads free to contain
//! newlines, and lets the server reject oversized requests before
//! buffering them. Requests are objects with an `"op"` discriminator;
//! see DESIGN.md §2c for the full grammar and examples.
//!
//! Inference inputs come in two forms: `"source"` (MiniLang text, traced
//! and encoded server-side with the deterministic extractor) or
//! `"program"` (a pre-extracted [`EncodedProgram`], for clients that run
//! their own tracing). The program encoding is positional and mirrors
//! the builder types in `liger::encode`:
//!
//! ```text
//! program := {"traces":[trace…]}
//! trace   := [step…]
//! step    := {"tree":tree, "states":[state…]}
//! tree    := [token, [tree…]]
//! state   := [var…]
//! var     := token            (primitive value)
//!          | [token…]         (object: flattened attribute tokens)
//! ```

use crate::json::{parse, Json};
use index::{Hit, InsertOutcome, SearchMode, SearchOptions, SearchResult};
use liger::{EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram};
use std::io::{Read, Write};

/// Frames larger than this are rejected before buffering.
pub const MAX_FRAME: usize = 64 << 20;

/// How much spare space [`FrameReader::fill_from`] asks the socket for.
const READ_CHUNK: usize = 16 * 1024;

/// An incremental frame decoder over one reusable buffer — the
/// per-connection replacement for [`read_frame`], which allocates a
/// fresh payload `Vec` per request. Bytes land in the buffer via
/// [`FrameReader::fill_from`] (one `read` per call, so nonblocking
/// callers can drain until `WouldBlock`); [`FrameReader::next_payload`]
/// carves complete frames out in place. The buffer grows to the largest
/// frame seen and is then reused forever: the framing hot path performs
/// **zero allocations** in steady state (asserted by the serve bench).
///
/// The decoder handles every adversarial split the proptests throw at
/// it: partial length lines, payloads arriving a byte at a time,
/// several frames coalesced into one read, and oversized lengths —
/// rejected as soon as the header is complete, before any payload is
/// buffered.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Parse cursor: `buf[start..end]` is unconsumed input.
    start: usize,
    end: usize,
}

impl FrameReader {
    /// An empty reader (no buffer until the first fill).
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether any unconsumed bytes are buffered — after EOF, `true`
    /// means the peer disconnected mid-frame.
    pub fn has_buffered(&self) -> bool {
        self.start < self.end
    }

    /// Performs one `read` into the buffer tail and returns its byte
    /// count (0 = EOF).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (including `WouldBlock` on
    /// nonblocking sources).
    pub fn fill_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        // Reclaim the consumed prefix before growing: the buffer only
        // ever holds in-progress frames, so capacity stabilizes at the
        // largest frame plus one read chunk.
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.start > 0 && self.end + READ_CHUNK > self.buf.len() {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() < self.end + READ_CHUNK {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Pops the next complete frame's payload bytes, or `Ok(None)` if
    /// more input is needed. The returned slice borrows the internal
    /// buffer and is valid until the next call.
    ///
    /// # Errors
    ///
    /// `InvalidData` for malformed length lines and oversized frames
    /// (detected from the header alone, before the payload arrives).
    pub fn next_payload(&mut self) -> std::io::Result<Option<&[u8]>> {
        let pending = &self.buf[self.start..self.end];
        let mut len: usize = 0;
        let mut digits = 0usize;
        let mut header = 0usize;
        for &b in pending {
            header += 1;
            match b {
                b'\n' if digits > 0 => {
                    if len > MAX_FRAME {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
                        ));
                    }
                    if pending.len() - header < len {
                        return Ok(None); // payload still in flight
                    }
                    let at = self.start + header;
                    self.start = at + len;
                    return Ok(Some(&self.buf[at..at + len]));
                }
                d @ b'0'..=b'9' if digits < 9 => {
                    len = len * 10 + usize::from(d - b'0');
                    digits += 1;
                }
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad frame length byte {other:#04x}"),
                    ))
                }
            }
        }
        Ok(None) // length line still in flight
    }

    /// [`FrameReader::next_payload`] plus JSON parsing.
    ///
    /// # Errors
    ///
    /// `InvalidData` for framing errors, non-UTF-8, or unparseable JSON.
    pub fn next_frame(&mut self) -> std::io::Result<Option<Json>> {
        let Some(payload) = self.next_payload()? else { return Ok(None) };
        let text = std::str::from_utf8(payload).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 payload")
        })?;
        parse(text)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Appends one frame to `out`, rendering the payload through `scratch` —
/// the zero-steady-state-allocation sibling of [`write_frame`] used by
/// the event loop's per-connection write buffers (both buffers keep
/// their capacity across requests).
pub fn write_frame_into(out: &mut Vec<u8>, scratch: &mut String, value: &Json) {
    use std::io::Write as _;
    scratch.clear();
    value.write_to(scratch);
    let _ = writeln!(out, "{}", scratch.len()); // Vec<u8> writes are infallible
    out.extend_from_slice(scratch.as_bytes());
}

/// Writes one frame.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_frame(w: &mut impl Write, value: &Json) -> std::io::Result<()> {
    let payload = value.to_string();
    let mut frame = payload.len().to_string().into_bytes();
    frame.push(b'\n');
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
///
/// # Errors
///
/// Returns `InvalidData` for malformed lengths, oversized frames, or
/// unparseable payloads; timeouts and disconnects surface as the
/// underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Json>> {
    // Read the length line byte-by-byte (it is ≤ ~8 bytes; the payload
    // read below is the bulk transfer).
    let mut len: usize = 0;
    let mut digits = 0;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if digits == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(_) => match byte[0] {
                b'\n' if digits > 0 => break,
                d @ b'0'..=b'9' if digits < 9 => {
                    len = len * 10 + usize::from(d - b'0');
                    digits += 1;
                }
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad frame length byte {other:#04x}"),
                    ))
                }
            },
            Err(e) => return Err(e),
        }
    }
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 payload"))?;
    parse(&text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Which inference result the client wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferKind {
    /// The program embedding 𝓗_P.
    Embed,
    /// Predicted method-name sub-tokens (namer bundles).
    Name,
    /// Predicted class id + label (classifier bundles).
    Classify,
}

/// The inference input: MiniLang source or a pre-extracted program.
#[derive(Debug, Clone)]
pub enum InferInput {
    /// MiniLang source text; the server traces and encodes it.
    Source(String),
    /// MiniLang source text with `"canon": true`: the server
    /// canonicalizes it first and encodes the canonical form, so every
    /// syntactic variant of the same routine shares one encoding, one
    /// content hash, and one index entry.
    CanonSource(String),
    /// A client-side-extracted encoded program (boxed: the pool tables
    /// make it the dominant variant, and requests move through
    /// channels).
    Encoded(Box<EncodedProgram>),
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server counters + latency percentiles.
    Stats,
    /// Begin graceful shutdown (admin verb; also triggered by SIGTERM).
    Shutdown,
    /// Run the static analyses on a MiniLang source and return structured
    /// diagnostics (always terminates; never touches the model).
    Lint(String),
    /// Run the model.
    Infer(InferKind, InferInput),
    /// Embed the input and store it in the embedding index under its
    /// content hash.
    Index(InferInput),
    /// Embed the input and return its top-k nearest stored programs
    /// (ops `search` and its alias `similar`).
    Search(InferInput, SearchOptions),
}

/// Parses the `k` / `min_sim` / `mode` fields of a search request,
/// defaulting each to [`SearchOptions::default`]. Range validation
/// (`k == 0`, `min_sim` outside `[-1, 1]`) is deferred to execution so
/// those degenerate values surface as *typed* protocol errors.
fn search_options_from_json(value: &Json) -> Result<SearchOptions, String> {
    let mut opts = SearchOptions::default();
    if let Some(k) = value.get("k") {
        opts.k = k.as_usize().ok_or("\"k\" must be a non-negative integer")?;
    }
    if let Some(min_sim) = value.get("min_sim") {
        opts.min_sim = min_sim.as_f64().ok_or("\"min_sim\" must be a number")? as f32;
    }
    if let Some(mode) = value.get("mode") {
        let name = mode.as_str().ok_or("\"mode\" must be a string")?;
        opts.mode = SearchMode::from_name(name)
            .ok_or_else(|| format!("unknown mode {name:?} (expected \"cosine\" or \"hybrid\")"))?;
    }
    Ok(opts)
}

impl Request {
    /// Parses a request object.
    ///
    /// # Errors
    ///
    /// Returns a client-facing description of what is malformed.
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request must be an object with a string \"op\" field")?;
        let kind = match op {
            "ping" => return Ok(Request::Ping),
            "stats" => return Ok(Request::Stats),
            "shutdown" => return Ok(Request::Shutdown),
            "lint" => {
                let src = value
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or("op \"lint\" needs a string \"source\" field")?;
                return Ok(Request::Lint(src.to_string()));
            }
            "index" => {
                return Ok(Request::Index(infer_input_from_json(value, op)?));
            }
            "search" | "similar" => {
                let input = infer_input_from_json(value, op)?;
                return Ok(Request::Search(input, search_options_from_json(value)?));
            }
            "embed" => InferKind::Embed,
            "name" => InferKind::Name,
            "classify" => InferKind::Classify,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request::Infer(kind, infer_input_from_json(value, op)?))
    }
}

/// Pulls the one-of `source` / `program` input every model-touching op
/// shares, plus the optional `"canon": true` flag (source inputs only:
/// canonicalization rewrites the AST, which a pre-extracted program no
/// longer has).
fn infer_input_from_json(value: &Json, op: &str) -> Result<InferInput, String> {
    let canon = match value.get("canon") {
        None => false,
        Some(flag) => flag.as_bool().ok_or("\"canon\" must be a boolean")?,
    };
    match (value.get("source"), value.get("program")) {
        (Some(src), None) => {
            let src = src.as_str().ok_or("\"source\" must be a string")?.to_string();
            Ok(if canon { InferInput::CanonSource(src) } else { InferInput::Source(src) })
        }
        (None, Some(_)) if canon => Err("\"canon\" requires a \"source\" input \
             (a pre-extracted \"program\" has no AST left to canonicalize)"
            .to_string()),
        (None, Some(prog)) => Ok(InferInput::Encoded(Box::new(program_from_json(prog)?))),
        _ => Err(format!("op {op:?} needs exactly one of \"source\"/\"program\"")),
    }
}

/// Builds the JSON form of an inference request (client side).
pub fn infer_request(kind: InferKind, input: &InferInput) -> Json {
    let op = match kind {
        InferKind::Embed => "embed",
        InferKind::Name => "name",
        InferKind::Classify => "classify",
    };
    let mut fields = vec![("op", Json::str(op))];
    push_infer_input(&mut fields, input);
    Json::obj(fields)
}

/// Builds the JSON form of a lint request (client side).
pub fn lint_request(source: &str) -> Json {
    Json::obj(vec![("op", Json::str("lint")), ("source", Json::str(source))])
}

/// Serializes a lint report as the LINT reply payload:
/// `{"ok":true,"clean":…,"fatal":…,"diagnostics":[{kind,severity,line,message}…]}`.
pub fn lint_response(report: &analysis::LintReport) -> Json {
    let diagnostics = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("kind", Json::str(d.kind.name())),
                (
                    "severity",
                    Json::str(match d.severity {
                        analysis::Severity::Fatal => "fatal",
                        analysis::Severity::Warning => "warning",
                    }),
                ),
                ("line", Json::num(d.line as usize)),
                ("message", Json::str(d.message.clone())),
            ])
        })
        .collect();
    ok_response(vec![
        ("clean", Json::Bool(report.is_clean())),
        ("fatal", Json::Bool(report.has_fatal())),
        ("diagnostics", Json::Arr(diagnostics)),
    ])
}

/// Standard success / error / busy response builders.
pub fn ok_response(mut fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.append(&mut fields);
    Json::obj(all)
}

/// An error reply: `{"ok":false,"error":...}`.
pub fn error_response(message: impl Into<String>) -> Json {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::str(message.into()))])
}

/// A *typed* error reply: `{"ok":false,"error":…,"kind":…}` — the shape
/// every index failure takes, with `kind` the stable machine-readable
/// tag from [`index::IndexError::kind`] (e.g. `bad_k`, `empty_index`).
pub fn typed_error_response(kind: &str, message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message.into())),
        ("kind", Json::str(kind)),
    ])
}

/// Renders an [`index::IndexError`] as its typed protocol reply.
pub fn index_error_response(err: &index::IndexError) -> Json {
    typed_error_response(err.kind(), err.to_string())
}

/// Formats an index key for the wire. Keys are 64-bit FNV-1a hashes;
/// JSON numbers are `f64` and cannot carry them exactly, so they travel
/// as fixed-width hex strings.
pub fn key_to_json(key: u64) -> Json {
    Json::str(format!("{key:016x}"))
}

/// Parses a key written by [`key_to_json`].
///
/// # Errors
///
/// Returns a description when the value is not a hex string.
pub fn key_from_json(value: &Json) -> Result<u64, String> {
    let text = value.as_str().ok_or("key must be a hex string")?;
    u64::from_str_radix(text, 16).map_err(|_| format!("bad key {text:?}"))
}

/// The `index` op's success reply:
/// `{"ok":true,"key":…,"outcome":"inserted"|"updated"|"unchanged","entries":…}`.
pub fn index_response(key: u64, outcome: InsertOutcome, entries: usize) -> Json {
    ok_response(vec![
        ("key", key_to_json(key)),
        ("outcome", Json::str(outcome.name())),
        ("entries", Json::num(entries)),
    ])
}

/// The `search` / `similar` success reply:
/// `{"ok":true,"exact":…,"hits":[{key,cosine,score}…],"searched":…,"ann":…,"ann_fallback":…}`.
/// `exact` is the canonical-exact tier: the stored key the query
/// collapsed onto (same content hash — for `"canon": true` queries,
/// the same canonical form), or `null` when no stored program is
/// content-identical. Cosines are `f32` widened losslessly; the fused
/// score is a plain `f64`. Hits are ranked best-first.
pub fn search_response(result: &SearchResult, exact: Option<u64>) -> Json {
    let hits = result
        .hits
        .iter()
        .map(|h: &Hit| {
            Json::obj(vec![
                ("key", key_to_json(h.key)),
                ("cosine", Json::Num(f64::from(h.cosine))),
                ("score", Json::Num(h.score)),
            ])
        })
        .collect();
    ok_response(vec![
        ("exact", exact.map_or(Json::Null, key_to_json)),
        ("hits", Json::Arr(hits)),
        ("searched", Json::num(result.searched)),
        ("ann", Json::Bool(result.ann_used)),
        ("ann_fallback", Json::Bool(result.ann_fallback)),
    ])
}

/// Builds the JSON form of an `index` request (client side).
pub fn index_request(input: &InferInput) -> Json {
    let mut fields = vec![("op", Json::str("index"))];
    push_infer_input(&mut fields, input);
    Json::obj(fields)
}

/// Builds the JSON form of a `search` request (client side).
pub fn search_request(input: &InferInput, opts: &SearchOptions) -> Json {
    let mut fields = vec![("op", Json::str("search"))];
    push_infer_input(&mut fields, input);
    fields.push(("k", Json::num(opts.k)));
    fields.push(("min_sim", Json::Num(f64::from(opts.min_sim))));
    fields.push(("mode", Json::str(opts.mode.name())));
    Json::obj(fields)
}

fn push_infer_input(fields: &mut Vec<(&'static str, Json)>, input: &InferInput) {
    match input {
        InferInput::Source(src) => fields.push(("source", Json::str(src.clone()))),
        InferInput::CanonSource(src) => {
            fields.push(("source", Json::str(src.clone())));
            fields.push(("canon", Json::Bool(true)));
        }
        InferInput::Encoded(prog) => fields.push(("program", program_to_json(prog))),
    }
}

/// The backpressure reply: `{"ok":false,"busy":true,...}`. Clients should
/// back off and retry.
pub fn busy_response() -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("busy", Json::Bool(true)),
        ("error", Json::str("server queue is full, retry later")),
    ])
}

/// The load-shed reply: `{"ok":false,"shed":true,...}`. Distinct from
/// [`busy_response`]: BUSY means one shard's queue momentarily filled
/// (retry immediately, another batch is about to drain it); SHED means
/// admission control turned the work away before it touched any queue —
/// the server is over its connection or in-flight budget and clients
/// should back off hard or try another replica.
pub fn shed_response(reason: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("shed", Json::Bool(true)),
        ("error", Json::str(reason)),
    ])
}

/// Serializes an embedding losslessly (each `f32` widened to `f64`,
/// which shortest-roundtrip formatting preserves bitwise).
pub fn embedding_to_json(embedding: &[f32]) -> Json {
    Json::Arr(embedding.iter().map(|&v| Json::Num(f64::from(v))).collect())
}

/// Parses an embedding written by [`embedding_to_json`].
///
/// # Errors
///
/// Returns a description of the first non-numeric element.
pub fn embedding_from_json(value: &Json) -> Result<Vec<f32>, String> {
    value
        .as_arr()
        .ok_or("embedding must be an array")?
        .iter()
        .map(|v| v.as_f64().map(|n| n as f32).ok_or_else(|| "non-numeric embedding".into()))
        .collect()
}

/// Serializes an [`EncodedProgram`] (see the module docs for the shape).
pub fn program_to_json(prog: &EncodedProgram) -> Json {
    fn tree(t: &liger::TreeId, prog: &EncodedProgram) -> Json {
        let node = prog.pool.tree(*t);
        Json::Arr(vec![
            Json::num(node.token),
            Json::Arr(node.children.iter().map(|c| tree(c, prog)).collect()),
        ])
    }
    fn state(s: &liger::StateId, prog: &EncodedProgram) -> Json {
        Json::Arr(
            prog.pool
                .state(*s)
                .vars
                .iter()
                .map(|v| match v {
                    liger::PoolVar::Primitive(tok) => Json::num(*tok),
                    liger::PoolVar::Object(obj) => Json::Arr(
                        prog.pool.object(*obj).iter().map(|&t| Json::num(t)).collect(),
                    ),
                })
                .collect(),
        )
    }
    let traces = prog
        .traces
        .iter()
        .map(|t| {
            Json::Arr(
                t.steps
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("tree", tree(&s.tree, prog)),
                            (
                                "states",
                                Json::Arr(s.states.iter().map(|st| state(st, prog)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();
    Json::obj(vec![("traces", Json::Arr(traces))])
}

/// Parses a program written by [`program_to_json`], re-interning it into
/// a fresh pool.
///
/// # Errors
///
/// Returns a description of the first malformed component.
pub fn program_from_json(value: &Json) -> Result<EncodedProgram, String> {
    fn tree(value: &Json) -> Result<EncTree, String> {
        let pair = value.as_arr().ok_or("tree must be [token,[children]]")?;
        let [token, children] = pair else {
            return Err("tree must be [token,[children]]".into());
        };
        Ok(EncTree {
            token: token.as_usize().ok_or("tree token must be an integer")?,
            children: children
                .as_arr()
                .ok_or("tree children must be an array")?
                .iter()
                .map(tree)
                .collect::<Result<_, _>>()?,
        })
    }
    fn var(value: &Json) -> Result<EncVar, String> {
        match value {
            Json::Num(_) => Ok(EncVar::Primitive(
                value.as_usize().ok_or("variable token must be an integer")?,
            )),
            Json::Arr(tokens) => Ok(EncVar::Object(
                tokens
                    .iter()
                    .map(|t| t.as_usize().ok_or_else(|| "object token must be an integer".into()))
                    .collect::<Result<_, String>>()?,
            )),
            _ => Err("variable must be a token or a token array".into()),
        }
    }
    let traces = value
        .get("traces")
        .and_then(Json::as_arr)
        .ok_or("program must have a \"traces\" array")?
        .iter()
        .map(|t| {
            let steps = t
                .as_arr()
                .ok_or("trace must be an array of steps")?
                .iter()
                .map(|s| {
                    let states = s
                        .get("states")
                        .and_then(Json::as_arr)
                        .ok_or("step must have a \"states\" array")?
                        .iter()
                        .map(|st| {
                            Ok(EncState {
                                vars: st
                                    .as_arr()
                                    .ok_or("state must be an array")?
                                    .iter()
                                    .map(var)
                                    .collect::<Result<_, String>>()?,
                            })
                        })
                        .collect::<Result<_, String>>()?;
                    Ok(EncStep {
                        tree: tree(s.get("tree").ok_or("step must have a \"tree\"")?)?,
                        states,
                    })
                })
                .collect::<Result<_, String>>()?;
            Ok(EncBlended { steps })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(EncodedProgram::from_traces(traces))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> EncodedProgram {
        EncodedProgram::from_traces(vec![
            EncBlended {
                steps: vec![
                    EncStep {
                        tree: EncTree {
                            token: 3,
                            children: vec![
                                EncTree { token: 4, children: vec![] },
                                EncTree { token: 5, children: vec![] },
                            ],
                        },
                        states: vec![
                            EncState {
                                vars: vec![EncVar::Primitive(6), EncVar::Object(vec![7, 8])],
                            },
                            EncState { vars: vec![EncVar::Primitive(9), EncVar::Object(vec![])] },
                        ],
                    },
                    EncStep {
                        tree: EncTree { token: 4, children: vec![] },
                        states: vec![EncState { vars: vec![] }],
                    },
                ],
            },
            EncBlended {
                steps: vec![EncStep {
                    tree: EncTree { token: 3, children: vec![] },
                    states: vec![EncState { vars: vec![EncVar::Object(vec![7])] }],
                }],
            },
        ])
    }

    #[test]
    fn program_roundtrips_through_json() {
        let prog = sample_program();
        let back = program_from_json(&program_to_json(&prog)).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let value = infer_request(InferKind::Embed, &InferInput::Source("fn f() {}".into()));
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::str("ping"))])).unwrap();

        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), value);
        assert!(matches!(
            Request::from_json(&read_frame(&mut cursor).unwrap().unwrap()).unwrap(),
            Request::Ping
        ));
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // No digits before the newline.
        assert!(read_frame(&mut &b"\n{}"[..]).is_err());
        // Non-digit length byte.
        assert!(read_frame(&mut &b"2x\n{}"[..]).is_err());
        // Truncated payload.
        assert!(read_frame(&mut &b"10\n{}"[..]).is_err());
        // Unparseable payload.
        assert!(read_frame(&mut &b"2\n{]"[..]).is_err());
    }

    #[test]
    fn requests_validate_their_inputs() {
        let bad = parse("{\"op\":\"embed\"}").unwrap();
        assert!(Request::from_json(&bad).is_err());
        let both = parse("{\"op\":\"embed\",\"source\":\"x\",\"program\":{}}").unwrap();
        assert!(Request::from_json(&both).is_err());
        let unknown = parse("{\"op\":\"dance\"}").unwrap();
        assert!(Request::from_json(&unknown).is_err());

        let good = infer_request(
            InferKind::Classify,
            &InferInput::Encoded(Box::new(sample_program())),
        );
        assert!(matches!(
            Request::from_json(&good).unwrap(),
            Request::Infer(InferKind::Classify, InferInput::Encoded(_))
        ));
    }

    #[test]
    fn lint_requests_parse_and_render() {
        let req = lint_request("fn f(x: int) -> int { return x / 0; }");
        let Request::Lint(src) = Request::from_json(&req).unwrap() else {
            panic!("expected a lint request");
        };
        assert!(src.contains("x / 0"));
        // `source` is mandatory.
        let bad = parse("{\"op\":\"lint\"}").unwrap();
        assert!(Request::from_json(&bad).is_err());

        let program = minilang::parse(&src).unwrap();
        let reply = lint_response(&analysis::lint::run(&program));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("fatal").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("clean").and_then(Json::as_bool), Some(false));
        let diags = reply.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert!(!diags.is_empty());
        let first = &diags[0];
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("division-by-zero"));
        assert_eq!(first.get("severity").and_then(Json::as_str), Some("fatal"));
        assert_eq!(first.get("line").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn index_and_search_requests_parse() {
        let req = index_request(&InferInput::Source("fn f() {}".into()));
        assert!(matches!(Request::from_json(&req).unwrap(), Request::Index(InferInput::Source(_))));

        let opts = SearchOptions { k: 3, min_sim: 0.25, mode: SearchMode::Hybrid };
        let req = search_request(&InferInput::Source("fn f() {}".into()), &opts);
        let Request::Search(_, parsed) = Request::from_json(&req).unwrap() else {
            panic!("expected a search request");
        };
        assert_eq!(parsed, opts);

        // `similar` is an alias with defaulted options.
        let alias = parse("{\"op\":\"similar\",\"source\":\"fn f() {}\"}").unwrap();
        let Request::Search(_, parsed) = Request::from_json(&alias).unwrap() else {
            panic!("expected the alias to parse as a search");
        };
        assert_eq!(parsed, SearchOptions::default());

        // Degenerate ranges still parse (typed rejection happens at
        // execution); malformed types do not.
        let zero_k = parse("{\"op\":\"search\",\"source\":\"x\",\"k\":0}").unwrap();
        assert!(matches!(Request::from_json(&zero_k).unwrap(), Request::Search(_, o) if o.k == 0));
        let bad_mode = parse("{\"op\":\"search\",\"source\":\"x\",\"mode\":\"dance\"}").unwrap();
        assert!(Request::from_json(&bad_mode).is_err());
        let bad_k = parse("{\"op\":\"search\",\"source\":\"x\",\"k\":-2}").unwrap();
        assert!(Request::from_json(&bad_k).is_err());
        let no_input = parse("{\"op\":\"index\"}").unwrap();
        assert!(Request::from_json(&no_input).is_err());
    }

    #[test]
    fn keys_roundtrip_as_hex_strings() {
        for key in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(key_from_json(&key_to_json(key)).unwrap(), key);
        }
        assert!(key_from_json(&Json::Num(12.0)).is_err());
        assert!(key_from_json(&Json::str("zz")).is_err());
    }

    #[test]
    fn typed_errors_carry_their_kind() {
        let reply = index_error_response(&index::IndexError::BadK);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(reply.get("kind").and_then(Json::as_str), Some("bad_k"));
        assert!(reply.get("error").and_then(Json::as_str).is_some());
    }

    #[test]
    fn search_responses_render_hits() {
        let result = SearchResult {
            hits: vec![Hit { key: 7, cosine: 0.5, score: 0.5 }],
            searched: 9,
            ann_used: false,
            ann_fallback: false,
        };
        let reply = search_response(&result, None);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("searched").and_then(Json::as_usize), Some(9));
        assert_eq!(reply.get("exact"), Some(&Json::Null));
        let hits = reply.get("hits").and_then(Json::as_arr).unwrap();
        assert_eq!(key_from_json(hits[0].get("key").unwrap()).unwrap(), 7);
        assert_eq!(hits[0].get("cosine").and_then(Json::as_f64), Some(0.5));

        let reply = search_response(&result, Some(7));
        assert_eq!(key_from_json(reply.get("exact").unwrap()).unwrap(), 7);
    }

    #[test]
    fn canon_flag_parses_for_source_inputs_only() {
        let canon = parse("{\"op\":\"embed\",\"source\":\"fn f() {}\",\"canon\":true}").unwrap();
        assert!(matches!(
            Request::from_json(&canon).unwrap(),
            Request::Infer(InferKind::Embed, InferInput::CanonSource(_))
        ));
        // canon:false keeps the plain source path.
        let plain = parse("{\"op\":\"embed\",\"source\":\"fn f() {}\",\"canon\":false}").unwrap();
        assert!(matches!(
            Request::from_json(&plain).unwrap(),
            Request::Infer(InferKind::Embed, InferInput::Source(_))
        ));
        // index / search / similar accept the flag too.
        let idx = parse("{\"op\":\"index\",\"source\":\"fn f() {}\",\"canon\":true}").unwrap();
        assert!(matches!(
            Request::from_json(&idx).unwrap(),
            Request::Index(InferInput::CanonSource(_))
        ));
        let sim = parse("{\"op\":\"similar\",\"source\":\"fn f() {}\",\"canon\":true}").unwrap();
        assert!(matches!(
            Request::from_json(&sim).unwrap(),
            Request::Search(InferInput::CanonSource(_), _)
        ));
        // canon on a pre-extracted program is a typed protocol error.
        let enc = infer_request(
            InferKind::Embed,
            &InferInput::Encoded(Box::new(sample_program())),
        );
        let Json::Obj(mut fields) = enc else { panic!("request must be an object") };
        fields.push(("canon".to_string(), Json::Bool(true)));
        assert!(Request::from_json(&Json::Obj(fields)).is_err());
        // Non-boolean canon is rejected.
        let bad = parse("{\"op\":\"embed\",\"source\":\"x\",\"canon\":1}").unwrap();
        assert!(Request::from_json(&bad).is_err());
        // Client builder round-trips the flag.
        let req = infer_request(InferKind::Embed, &InferInput::CanonSource("fn f() {}".into()));
        assert_eq!(req.get("canon").and_then(Json::as_bool), Some(true));
        assert!(matches!(
            Request::from_json(&req).unwrap(),
            Request::Infer(InferKind::Embed, InferInput::CanonSource(_))
        ));
    }

    #[test]
    fn embeddings_roundtrip_bitwise() {
        let embedding = vec![0.1f32, -2.5e-20, 3.0e30, f32::MIN_POSITIVE, -0.0];
        let back = embedding_from_json(&embedding_to_json(&embedding)).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&embedding));
    }
}
