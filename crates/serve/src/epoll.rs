//! Raw readiness polling over a thin `libc`-style FFI shim.
//!
//! The event-loop front end (DESIGN.md §2g) needs exactly four kernel
//! facilities: an interest set, edge-style readiness notification, a
//! cross-thread wakeup, and nonblocking sockets. The workspace is
//! offline and std-only, so instead of a runtime crate this module
//! declares the handful of syscalls directly:
//!
//! * **Linux** — `epoll` in edge-triggered mode (`EPOLLET`): one
//!   `epoll_wait` per loop iteration, `O(ready)` not `O(registered)`,
//!   which is what lets one thread front thousands of connections. The
//!   waker is an `eventfd` — shard workers write an 8-byte counter to
//!   nudge the loop when completions land.
//! * **other unix** — `poll(2)` (POSIX, level-triggered) with an
//!   interest table kept in userspace and a nonblocking
//!   `UnixStream` pair as the waker. Level vs. edge is invisible to
//!   callers because every handler drains its fd until `WouldBlock`
//!   anyway.
//! * **elsewhere** — [`Poller::new`] returns `Unsupported`; the blocking
//!   [`crate::server::Client`] and the protocol codec still compile.
//!
//! Tokens are caller-chosen `u64`s (the server uses connection slot
//! indices plus two reserved values for the listener and the waker); the
//! poller never interprets them.

/// Which readiness a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable (and peer hangup).
    pub readable: bool,
    /// Wake on writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read + write interest — armed while a write buffer is non-empty.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a hangup to observe via `read → 0`).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
}

pub use sys::{Poller, Waker};

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirror of the kernel's `struct epoll_event`. The layout is
    /// arch-dependent: only x86-64 packs it (12 bytes, no padding
    /// between the 32-bit event mask and the 64-bit payload); every
    /// other Linux architecture uses the natural 16-byte layout with
    /// `data` at offset 8.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLET | EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An `epoll` instance plus its reusable event buffer.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
        /// Scratch for `epoll_wait` — allocated once, reused per wait.
        /// Sized and strided by `size_of::<EpollEvent>()`, whichever
        /// layout this architecture uses.
        buf: Vec<EpollEvent>,
    }

    // 256 events per wait is plenty: readiness is re-reported next
    // iteration for anything left over.
    const MAX_EVENTS: usize = 256;

    impl Poller {
        /// Creates the epoll instance.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_create1` error.
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS] })
        }

        /// Adds `fd` to the interest set under `token` (edge-triggered).
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` error.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest of an already-registered fd.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` error.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Removes `fd` from the interest set.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` error.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: token };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        /// Blocks up to `timeout_ms` (−1 = forever) and appends ready
        /// events to `out` (cleared first). `EINTR` returns empty.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_wait` error.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let n = unsafe {
                epoll_wait(self.epfd, self.buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for i in 0..n as usize {
                // Copy the element out by value: field reads on the
                // (possibly packed) copy need no references.
                let ev = self.buf[i];
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    // ERR/HUP surface as readable so the handler reads
                    // to EOF/error and tears the connection down.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// A cross-thread wakeup: an `eventfd` registered in the poller.
    /// Cloneable-by-Arc; `wake` is safe from any thread.
    #[derive(Debug)]
    pub struct Waker {
        fd: i32,
    }

    impl Waker {
        /// Creates the nonblocking eventfd.
        ///
        /// # Errors
        ///
        /// Returns the `eventfd` error.
        pub fn new() -> io::Result<Waker> {
            let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
            Ok(Waker { fd })
        }

        /// The fd to register (readable) in the poller.
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Nudges the event loop. Best-effort: a full counter means a
        /// wake is already pending, which is all we need.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe { write(self.fd, std::ptr::addr_of!(one).cast::<u8>(), 8) };
        }

        /// Consumes pending wakes so edge-triggered polling re-arms.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    #[cfg(test)]
    mod abi {
        use super::EpollEvent;

        /// The kernel writes `size_of::<epoll_event>()`-strided records:
        /// 12 bytes (packed) on x86-64, 16 bytes with `data` at offset 8
        /// everywhere else. Getting this wrong corrupts tokens and
        /// overruns the wait buffer, so pin the layout per-arch.
        #[test]
        fn epoll_event_matches_the_kernel_layout() {
            if cfg!(target_arch = "x86_64") {
                assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
            } else {
                assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
                assert_eq!(std::mem::offset_of!(EpollEvent, data), 8);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll(2)`-backed fallback: the interest table lives in userspace.
    #[derive(Debug)]
    pub struct Poller {
        fds: Vec<(RawFd, u64, Interest)>,
    }

    impl Poller {
        /// Creates an empty interest table (infallible here; the
        /// signature matches the epoll backend).
        ///
        /// # Errors
        ///
        /// Never on this backend.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { fds: Vec::new() })
        }

        /// Adds `fd` under `token`.
        ///
        /// # Errors
        ///
        /// `AlreadyExists` if the fd is registered.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.fds.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::ErrorKind::AlreadyExists.into());
            }
            self.fds.push((fd, token, interest));
            Ok(())
        }

        /// Updates `fd`'s token and interest.
        ///
        /// # Errors
        ///
        /// `NotFound` if the fd is not registered.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for slot in &mut self.fds {
                if slot.0 == fd {
                    *slot = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::ErrorKind::NotFound.into())
        }

        /// Drops `fd` from the table.
        ///
        /// # Errors
        ///
        /// `NotFound` if the fd is not registered.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.fds.len();
            self.fds.retain(|(f, _, _)| *f != fd);
            if self.fds.len() == before {
                return Err(io::ErrorKind::NotFound.into());
            }
            Ok(())
        }

        /// Polls the whole table once.
        ///
        /// # Errors
        ///
        /// Returns the `poll` error (except `EINTR`, which is empty-ok).
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut pfds: Vec<PollFd> = self
                .fds
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.writable { POLLIN | POLLOUT } else { POLLIN },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(pfds.as_mut_ptr(), pfds.len() as u64, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &(_, token, _)) in pfds.iter().zip(&self.fds) {
                let r = pfd.revents;
                if r != 0 {
                    out.push(Event {
                        token,
                        readable: r & (POLLIN | POLLERR | POLLHUP) != 0,
                        writable: r & POLLOUT != 0,
                    });
                }
            }
            Ok(())
        }
    }

    /// Socketpair-backed waker for the `poll` fallback.
    #[derive(Debug)]
    pub struct Waker {
        tx: UnixStream,
        rx: UnixStream,
    }

    impl Waker {
        /// Creates the nonblocking pair.
        ///
        /// # Errors
        ///
        /// Returns the socketpair error.
        pub fn new() -> io::Result<Waker> {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok(Waker { tx, rx })
        }

        /// The readable end to register in the poller.
        pub fn raw_fd(&self) -> RawFd {
            self.rx.as_raw_fd()
        }

        /// Nudges the event loop (best-effort; a full pipe already
        /// guarantees a pending wake).
        pub fn wake(&self) {
            let _ = (&self.tx).write(&[1u8]);
        }

        /// Consumes pending wake bytes.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::raw::c_int as RawFd;

    /// Stub backend: the event-loop server is unix-only; everything else
    /// in the crate (protocol codec, blocking client) still compiles.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        /// Always fails on this platform.
        ///
        /// # Errors
        ///
        /// `Unsupported`, unconditionally.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "event loop requires unix"))
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Never returns.
        pub fn register(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("no Poller instance on this platform")
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Never returns.
        pub fn modify(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("no Poller instance on this platform")
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Never returns.
        pub fn deregister(&mut self, _: RawFd) -> io::Result<()> {
            unreachable!("no Poller instance on this platform")
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Never returns.
        pub fn wait(&mut self, _: &mut Vec<Event>, _: i32) -> io::Result<()> {
            unreachable!("no Poller instance on this platform")
        }
    }

    /// Stub waker.
    #[derive(Debug)]
    pub struct Waker;

    impl Waker {
        /// Always fails on this platform.
        ///
        /// # Errors
        ///
        /// `Unsupported`, unconditionally.
        pub fn new() -> io::Result<Waker> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "event loop requires unix"))
        }

        /// Stub (no poller to register in).
        pub fn raw_fd(&self) -> RawFd {
            -1
        }

        /// No-op.
        pub fn wake(&self) {}

        /// No-op.
        pub fn drain(&self) {}
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no wake requested yet");

        waker.wake();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        waker.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained waker must re-arm");
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 42, Interest::READ).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Write interest reports immediately on an idle socket.
        poller.modify(server.as_raw_fd(), 42, Interest::READ_WRITE).unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));
        poller.deregister(server.as_raw_fd()).unwrap();
    }
}
