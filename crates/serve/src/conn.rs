//! Per-connection state for the event-loop front end.
//!
//! Each accepted socket owns exactly one [`Conn`]: a reusable
//! [`FrameReader`] on the read side, a reusable write buffer + payload
//! scratch on the write side, and the **reply-ordering ledger** in
//! between. The event loop parses pipelined requests as fast as they
//! arrive and fans them out to inference shards, so replies can complete
//! out of order — but the wire contract (and every pipelining client
//! since PR 3) is *replies in request order*. [`Conn::complete`]
//! enforces it: each parsed request takes the next sequence number, and
//! a completed reply is released into the write buffer only when every
//! earlier sequence has been; later completions wait in a small held
//! list. Admin verbs answered inline go through the same ledger, so a
//! `ping` pipelined behind an `embed` never overtakes its reply.
//!
//! All four buffers (read, write, payload scratch, held list) keep their
//! capacity across requests: the steady-state framing path allocates
//! nothing (DESIGN.md §2g; asserted by the serve bench).

use crate::json::Json;
use crate::protocol::{write_frame_into, FrameReader};
use std::io::{self, Write};
use std::net::TcpStream;

/// Flush the write buffer eagerly once it crosses this size even while
/// more completions are pending — bounds memory per slow client.
const FLUSH_COMPACT: usize = 64 * 1024;

/// One live connection's state machine.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Guards completions against slot reuse: a completion whose
    /// generation mismatches belongs to a previous connection.
    pub generation: u64,
    /// Incremental frame decoder with its reusable buffer.
    pub reader: FrameReader,
    /// Inference requests in flight in the shards.
    pub inflight: usize,
    /// The peer closed its write side (read returned 0); flush what we
    /// owe, then drop.
    pub peer_closed: bool,
    /// A fatal protocol error was replied; close once flushed.
    pub fatal: bool,
    /// Whether the poller currently has write interest armed.
    pub write_armed: bool,
    /// Encoded-but-unsent reply bytes.
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf`.
    wpos: usize,
    /// Reusable JSON payload scratch for frame encoding.
    wscratch: String,
    /// Sequence number the next parsed request will take.
    next_seq: u64,
    /// Sequence number the next released reply must carry.
    next_release: u64,
    /// Completed replies waiting for an earlier sequence (tiny in
    /// practice: only out-of-order completions land here).
    held: Vec<(u64, Json)>,
}

impl Conn {
    /// Wraps a freshly accepted nonblocking stream.
    pub fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            reader: FrameReader::new(),
            inflight: 0,
            peer_closed: false,
            fatal: false,
            write_armed: false,
            wbuf: Vec::new(),
            wpos: 0,
            wscratch: String::new(),
            next_seq: 0,
            next_release: 0,
            held: Vec::new(),
        }
    }

    /// Assigns the arrival sequence number for a newly parsed request.
    pub fn assign_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Queues `reply` for request `seq`, releasing it (and any held
    /// successors) into the write buffer once all predecessors are out.
    pub fn complete(&mut self, seq: u64, reply: Json) {
        if seq != self.next_release {
            self.held.push((seq, reply));
            return;
        }
        write_frame_into(&mut self.wbuf, &mut self.wscratch, &reply);
        self.next_release += 1;
        while let Some(at) = self.held.iter().position(|(s, _)| *s == self.next_release) {
            let (_, next) = self.held.swap_remove(at);
            write_frame_into(&mut self.wbuf, &mut self.wscratch, &next);
            self.next_release += 1;
        }
    }

    /// Whether reply bytes are waiting to reach the socket.
    pub fn has_pending_writes(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Whether replies are owed but not yet completed or flushed.
    pub fn owes_replies(&self) -> bool {
        self.inflight > 0 || !self.held.is_empty() || self.has_pending_writes()
    }

    /// Whether the connection holds no buffered work in either
    /// direction — the safe point to close on shutdown or peer EOF.
    pub fn is_idle(&self) -> bool {
        !self.owes_replies() && !self.reader.has_buffered()
    }

    /// Writes as much buffered reply data as the socket accepts.
    /// Returns `Ok(true)` when the buffer fully drained, `Ok(false)`
    /// when the socket blocked first (caller arms write interest).
    ///
    /// # Errors
    ///
    /// Returns fatal socket errors (the caller drops the connection).
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }

    /// Reclaims the consumed prefix once it dominates the buffer, so a
    /// slow client cannot pin unbounded memory behind `wpos`.
    fn compact(&mut self) {
        if self.wpos >= FLUSH_COMPACT && self.wpos * 2 >= self.wbuf.len() {
            self.wbuf.copy_within(self.wpos.., 0);
            self.wbuf.truncate(self.wbuf.len() - self.wpos);
            self.wpos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ok_response;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (server, client)
    }

    fn reply(n: usize) -> Json {
        ok_response(vec![("n", Json::num(n))])
    }

    #[test]
    fn replies_release_in_request_order() {
        let (server, client) = pair();
        let mut conn = Conn::new(server, 1);
        let s0 = conn.assign_seq();
        let s1 = conn.assign_seq();
        let s2 = conn.assign_seq();
        assert_eq!((s0, s1, s2), (0, 1, 2));

        // Replies 2 and 1 land before 0: nothing may be written yet.
        conn.complete(s2, reply(2));
        conn.complete(s1, reply(1));
        assert!(!conn.has_pending_writes());
        assert!(conn.owes_replies());

        // Reply 0 releases the whole chain, in order.
        conn.complete(s0, reply(0));
        assert!(conn.flush().unwrap());
        assert!(!conn.owes_replies());

        drop(conn);
        let mut reader = FrameReader::new();
        let mut from = client;
        for expect in 0..3 {
            let frame = loop {
                if let Some(f) = reader.next_frame().unwrap() {
                    break f;
                }
                assert!(reader.fill_from(&mut from).unwrap() > 0);
            };
            assert_eq!(frame.get("n").and_then(Json::as_usize), Some(expect));
        }
    }

    #[test]
    fn idle_tracks_all_buffers() {
        let (server, _client) = pair();
        let mut conn = Conn::new(server, 1);
        assert!(conn.is_idle());
        let seq = conn.assign_seq();
        conn.inflight += 1;
        assert!(!conn.is_idle());
        conn.inflight -= 1;
        conn.complete(seq, reply(0));
        assert!(!conn.is_idle(), "unflushed replies are not idle");
        assert!(conn.flush().unwrap());
        assert!(conn.is_idle());
    }
}
