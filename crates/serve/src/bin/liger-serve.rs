//! liger-serve: serve a trained LIGER checkpoint over TCP.
//!
//! ```text
//! liger-serve --ckpt model.lgrb [--addr 127.0.0.1:7878] [--batch-max 16]
//!             [--batch-timeout-ms 5] [--queue-cap 64] [--threads N]
//!             [--shards N] [--max-conns N] [--max-inflight N]
//!             [--drain-deadline-ms 5000]
//! liger-serve --demo [--save model.lgrb] [flags…]   # train a toy model, then serve it
//! liger-serve query ADDR JSON [JSON…]               # one-shot client (pipelined)
//! liger-serve index ADDR FILE [FILE…]               # index MiniLang files by content hash
//! liger-serve search ADDR FILE [--k N] [--min-sim X] [--mode cosine|hybrid]
//! ```
//!
//! `--index-path FILE.lgri` makes the embedding index persistent: loaded
//! at startup, saved on graceful shutdown.
//!
//! `--store-path DIR` points shard workers at the content-addressed
//! artifact store: embedding requests whose content hash (and model
//! fingerprint) match a cached entry skip the forward pass entirely.
//!
//! The server shuts down gracefully on SIGTERM/ctrl-c or the admin
//! `{"op":"shutdown"}` verb: the listener stops accepting, open
//! connections drain, and every accepted request is answered.

use liger::{
    extract_encoded, vocab_from_sources, train_namer, ExtractOptions, LigerConfig, LigerNamer,
    ModelBundle, NameSample, OutVocab, TrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::json::{parse, Json};
use serve::server::{serve, Client, ServerConfig};
use std::time::Duration;

/// The corpus the `--demo` model is trained on: (method name, source).
const DEMO_CORPUS: &[(&str, &str)] = &[
    ("addOne", "fn addOne(x: int) -> int { return x + 1; }"),
    ("double", "fn double(x: int) -> int { x *= 2; return x; }"),
    ("square", "fn square(x: int) -> int { return x * x; }"),
    ("negate", "fn negate(x: int) -> int { return 0 - x; }"),
];

#[cfg(unix)]
mod signals {
    //! Minimal SIGTERM/SIGINT hook; the container has no signal crate,
    //! and `signal(2)` with an atomic flag is all graceful shutdown
    //! needs.
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("query") => query_main(&args[1..]),
        Some("index") => index_main(&args[1..]),
        Some("search") => search_main(&args[1..]),
        _ => serve_main(&args),
    };
    std::process::exit(code);
}

/// `liger-serve query ADDR JSON…` — sends every JSON argument pipelined,
/// prints one reply per line. Exits nonzero if any reply is not ok.
fn query_main(args: &[String]) -> i32 {
    let [addr, requests @ ..] = args else {
        eprintln!("usage: liger-serve query ADDR JSON [JSON...]");
        return 2;
    };
    if requests.is_empty() {
        eprintln!("usage: liger-serve query ADDR JSON [JSON...]");
        return 2;
    }
    let parsed: Vec<Json> = match requests.iter().map(|r| parse(r)).collect() {
        Ok(values) => values,
        Err(e) => {
            eprintln!("liger-serve: bad request JSON: {e}");
            return 2;
        }
    };
    let run = || -> std::io::Result<bool> {
        let mut client = Client::connect(addr)?;
        for request in &parsed {
            client.send(request)?;
        }
        let mut all_ok = true;
        for _ in &parsed {
            let reply = client.recv()?;
            println!("{reply}");
            all_ok &= reply.get("ok").and_then(Json::as_bool) == Some(true);
        }
        Ok(all_ok)
    };
    match run() {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(e) => {
            eprintln!("liger-serve: {e}");
            1
        }
    }
}

/// `liger-serve index ADDR [--canon] FILE…` — indexes each MiniLang
/// file's embedding under its content hash, one pipelined request per
/// file. Prints `KEY OUTCOME FILE` per line (KEY is the 16-hex index
/// key). With `--canon`, programs are canonicalized first, so syntactic
/// variants dedup onto one key (`unchanged`).
fn index_main(args: &[String]) -> i32 {
    let [addr, rest @ ..] = args else {
        eprintln!("usage: liger-serve index ADDR [--canon] FILE [FILE...]");
        return 2;
    };
    let canon = rest.iter().any(|a| a == "--canon");
    let files: Vec<&String> = rest.iter().filter(|a| a.as_str() != "--canon").collect();
    if files.is_empty() {
        eprintln!("usage: liger-serve index ADDR [--canon] FILE [FILE...]");
        return 2;
    }
    let run = || -> std::io::Result<bool> {
        let mut client = Client::connect(addr)?;
        for file in &files {
            let source = std::fs::read_to_string(file)?;
            let mut fields = vec![("op", Json::str("index")), ("source", Json::str(source))];
            if canon {
                fields.push(("canon", Json::Bool(true)));
            }
            client.send(&Json::obj(fields))?;
        }
        let mut all_ok = true;
        for file in &files {
            let reply = client.recv()?;
            if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                let key = reply.get("key").and_then(Json::as_str).unwrap_or("?");
                let outcome = reply.get("outcome").and_then(Json::as_str).unwrap_or("?");
                println!("{key} {outcome} {file}");
            } else {
                all_ok = false;
                eprintln!("liger-serve: index {file} failed: {reply}");
            }
        }
        Ok(all_ok)
    };
    match run() {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(e) => {
            eprintln!("liger-serve: {e}");
            1
        }
    }
}

/// `liger-serve search ADDR FILE [--k N] [--min-sim X] [--mode M]
/// [--canon]` — embeds the file and prints its nearest indexed
/// programs, one hit per line: `RANK KEY COSINE SCORE`. With `--canon`
/// the query is canonicalized and an `exact KEY` line precedes the hits
/// when a stored entry shares the query's canonical form.
fn search_main(args: &[String]) -> i32 {
    let [addr, file, rest @ ..] = args else {
        eprintln!(
            "usage: liger-serve search ADDR FILE [--k N] [--min-sim X] [--mode M] [--canon]"
        );
        return 2;
    };
    let mut fields = vec![("op", Json::str("search"))];
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("liger-serve: cannot read {file}: {e}");
            return 2;
        }
    };
    fields.push(("source", Json::str(source)));
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--canon" {
            fields.push(("canon", Json::Bool(true)));
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("liger-serve: {flag} needs a value");
            return 2;
        };
        match flag.as_str() {
            "--k" => match value.parse::<usize>() {
                Ok(k) => fields.push(("k", Json::num(k))),
                Err(_) => {
                    eprintln!("liger-serve: --k expects a number, got {value:?}");
                    return 2;
                }
            },
            "--min-sim" => match value.parse::<f64>() {
                Ok(s) => fields.push(("min_sim", Json::Num(s))),
                Err(_) => {
                    eprintln!("liger-serve: --min-sim expects a number, got {value:?}");
                    return 2;
                }
            },
            "--mode" => fields.push(("mode", Json::str(value.clone()))),
            other => {
                eprintln!("liger-serve: unknown search flag {other:?}");
                return 2;
            }
        }
    }
    let run = || -> std::io::Result<bool> {
        let mut client = Client::connect(addr)?;
        let reply = client.call(&Json::obj(fields))?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("liger-serve: search failed: {reply}");
            return Ok(false);
        }
        if let Some(exact) = reply.get("exact").and_then(Json::as_str) {
            println!("exact {exact}");
        }
        let hits = reply.get("hits").and_then(Json::as_arr).unwrap_or(&[]);
        for (rank, hit) in hits.iter().enumerate() {
            let key = hit.get("key").and_then(Json::as_str).unwrap_or("?");
            let cosine = hit.get("cosine").and_then(Json::as_f64).unwrap_or(f64::NAN);
            let score = hit.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN);
            println!("{} {key} {cosine} {score}", rank + 1);
        }
        Ok(true)
    };
    match run() {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(e) => {
            eprintln!("liger-serve: {e}");
            1
        }
    }
}

fn serve_main(args: &[String]) -> i32 {
    let mut config = ServerConfig::default();
    let mut ckpt: Option<String> = None;
    let mut save: Option<String> = None;
    let mut demo = false;
    let mut metrics = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--ckpt" => value("--ckpt").map(|v| ckpt = Some(v)),
            "--save" => value("--save").map(|v| save = Some(v)),
            "--demo" => {
                demo = true;
                Ok(())
            }
            "--metrics" => {
                metrics = true;
                Ok(())
            }
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--batch-max" => parse_num(&mut value, "--batch-max").map(|n| config.batch_max = n),
            "--batch-timeout-ms" => parse_num(&mut value, "--batch-timeout-ms")
                .map(|n| config.batch_timeout_ms = n as u64),
            "--queue-cap" => parse_num(&mut value, "--queue-cap").map(|n| config.queue_cap = n),
            "--shards" => parse_num(&mut value, "--shards").map(|n| config.shards = n),
            "--max-conns" => parse_num(&mut value, "--max-conns").map(|n| config.max_conns = n),
            "--max-inflight" => {
                parse_num(&mut value, "--max-inflight").map(|n| config.max_inflight = n)
            }
            "--drain-deadline-ms" => parse_num(&mut value, "--drain-deadline-ms")
                .map(|n| config.drain_deadline_ms = n as u64),
            "--index-path" => value("--index-path")
                .map(|v| config.index_path = Some(std::path::PathBuf::from(v))),
            "--store-path" => value("--store-path")
                .map(|v| config.store_path = Some(std::path::PathBuf::from(v))),
            "--threads" => {
                parse_num(&mut value, "--threads").map(|n| par::set_threads(Some(n)))
            }
            "--help" | "-h" => {
                print_usage();
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(msg) = result {
            eprintln!("liger-serve: {msg}");
            print_usage();
            return 2;
        }
    }

    let bundle = match (demo, &ckpt) {
        (true, None) => {
            eprintln!("liger-serve: training demo model ({} methods)...", DEMO_CORPUS.len());
            let bundle = train_demo_bundle();
            if let Some(path) = &save {
                if let Err(e) = bundle.save_to_path(path) {
                    eprintln!("liger-serve: cannot save {path}: {e}");
                    return 2;
                }
                eprintln!("liger-serve: saved demo checkpoint to {path}");
            }
            bundle
        }
        (false, Some(path)) => match ModelBundle::load_from_path(path) {
            Ok(bundle) => bundle,
            Err(e) => {
                eprintln!("liger-serve: cannot load {path}: {e}");
                return 2;
            }
        },
        _ => {
            eprintln!("liger-serve: pass exactly one of --ckpt PATH or --demo");
            print_usage();
            return 2;
        }
    };

    signals::install();
    let handle = match serve(&bundle, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("liger-serve: cannot start server: {e}");
            return 2;
        }
    };
    println!("liger-serve listening on {}", handle.local_addr());

    while !handle.is_finished() {
        if signals::requested() {
            handle.shutdown();
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let snap = handle.stats();
    handle.join();
    eprintln!(
        "liger-serve: stopped after {} requests in {} batches ({} rejected)",
        snap.requests, snap.batches, snap.rejected
    );
    if metrics {
        // The full process-wide registry: serve.* counters plus the
        // kernel-level ones (tensor.gemm.dispatch_f32 / dispatch_int8,
        // tensor.gemm.batched_rows, serve.fused_embed_batch) that show
        // how batches were executed.
        print!("{}", obs::metrics::registry().snapshot().render_table());
    }
    0
}

fn parse_num(
    value: &mut impl FnMut(&str) -> Result<String, String>,
    name: &str,
) -> Result<usize, String> {
    let text = value(name)?;
    text.parse().map_err(|_| format!("{name} expects a number, got {text:?}"))
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         liger-serve --ckpt model.lgrb [--addr HOST:PORT] [--batch-max N]\n              \
         [--batch-timeout-ms N] [--queue-cap N] [--threads N] [--shards N]\n              \
         [--max-conns N] [--max-inflight N] [--drain-deadline-ms N] [--metrics]\n              \
         [--index-path FILE.lgri] [--store-path DIR]\n  \
         liger-serve --demo [--save model.lgrb] [flags...]\n  \
         liger-serve query ADDR JSON [JSON...]\n  \
         liger-serve index ADDR [--canon] FILE [FILE...]\n  \
         liger-serve search ADDR FILE [--k N] [--min-sim X] [--mode cosine|hybrid] [--canon]"
    );
}

/// Trains a tiny method-name model on [`DEMO_CORPUS`] — enough to smoke
/// the full pipeline without shipping a checkpoint.
fn train_demo_bundle() -> ModelBundle {
    let opts = ExtractOptions::default();
    let sources: Vec<&str> = DEMO_CORPUS.iter().map(|(_, src)| *src).collect();
    let vocab = vocab_from_sources(&sources, &opts).expect("demo corpus traces");
    let mut out = OutVocab::new();
    for (name, _) in DEMO_CORPUS {
        for sub in minilang::subtokens(name) {
            out.add(&sub);
        }
    }
    let samples: Vec<NameSample> = DEMO_CORPUS
        .iter()
        .map(|(name, src)| NameSample {
            program: extract_encoded(src, &vocab, &opts).expect("demo corpus encodes"),
            target: out.encode_name(name),
        })
        .collect();
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };
    let mut store = tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
    train_namer(
        &namer,
        &mut store,
        &samples,
        &TrainConfig { epochs: 20, lr: 0.05, batch_size: 2 },
        &mut rng,
    );
    ModelBundle::for_namer(cfg, vocab, out, store)
}
