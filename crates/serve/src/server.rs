//! The liger-serve front end: a nonblocking epoll event loop fanning
//! requests out to sharded micro-batching inference workers.
//!
//! ```text
//!  clients ──► event-loop thread ──► shard queues ──► shard batchers
//!  (frames)    (epoll, edge-style    (bounded          (one per shard:
//!               readiness; per-conn   sync_channel      coalesce ≤ batch_max
//!               state machines,       per shard,        or batch_timeout_ms,
//!               admission control)    hash-routed)      persistent Workspaces)
//!                      ▲                                      │
//!                      └────── completions + eventfd wake ────┘
//! ```
//!
//! - **Event loop.** One thread fronts every connection through raw
//!   `epoll` (edge-triggered; `poll(2)` off-Linux — see [`crate::epoll`]).
//!   Per-connection state machines reuse their read/write buffers, so
//!   the framing hot path allocates nothing in steady state. Replies are
//!   released strictly in request-arrival order per connection
//!   ([`crate::conn`]), preserving the PR 3 pipelining contract.
//! - **Sharding.** CPU-bound requests route to one of N shards by a
//!   stable content hash — [`content_hash`] over pre-extracted program
//!   structure, [`source_hash`] over raw source bytes for `source`
//!   inputs and `lint` (both extraction and the lint analyses run on
//!   the shard, keeping the loop thread I/O-only): routing depends only
//!   on the request, never on load or timing, so batch *composition* is
//!   workload-determined while results stay bitwise identical to the
//!   offline memoized encoder regardless of shard count (workspaces
//!   reset per program). Each shard owns a bounded queue, a persistent
//!   [`Workspace`] pool, and its own `serve.shard{i}.*` instruments.
//! - **Backpressure & admission control.** A full shard queue yields the
//!   BUSY reply (retry soon). *Before* any queue is touched, admission
//!   control sheds work with the distinct SHED reply: connections over
//!   `max_conns` are answered-and-closed at accept, and requests beyond
//!   the global in-flight budget are refused (back off hard).
//! - **Shutdown & drain.** SIGTERM/ctrl-c (wired in the binary) or the
//!   admin `shutdown` verb sets a flag; the listener closes, and every
//!   connection drains: requests already parsed-and-enqueued are
//!   answered across all shards before their connection closes, and the
//!   loop exits only when no connection owes a reply. Accepted work is
//!   never dropped — but delivery is bounded: a peer that refuses to
//!   read its replies is force-closed once the drain deadline
//!   (`drain_deadline_ms`) passes, so one stalled client cannot hang
//!   [`ServerHandle::join`] forever.
//! - **Determinism.** Inference uses the memoized encoder on a reset
//!   workspace, so served embeddings are bitwise identical to the
//!   offline `EncodeMode::Memoized` path for every shard count and
//!   batch shape (proptest-gated in `tests/serve_properties.rs`).

use crate::conn::Conn;
use crate::epoll::{Event, Interest, Poller, Waker};
use crate::json::Json;
use crate::protocol::{
    busy_response, embedding_to_json, error_response, index_error_response, index_response,
    lint_response, ok_response, search_response, shed_response, write_frame, InferInput, InferKind,
    Request,
};
use crate::stats::{ServeStats, StatsSnapshot};
use index::{Index, IndexConfig, IndexStats, SearchOptions};
use liger::{
    extract_encoded, CanonEncoder, EncodedProgram, ExtractOptions, LigerTask, ModelBundle,
    QuantEngine, Vocab, Workspace,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Maximum requests coalesced into one forward-pass batch (per shard).
    pub batch_max: usize,
    /// How long a shard batcher waits for more requests after the first.
    pub batch_timeout_ms: u64,
    /// Bounded queue capacity *per shard*; beyond it, requests get BUSY.
    pub queue_cap: usize,
    /// Inference shard count; 0 = one per hardware thread.
    pub shards: usize,
    /// Open-connection cap; excess sockets get a SHED frame and close.
    pub max_conns: usize,
    /// Global in-flight request budget (admission control); 0 derives
    /// `2 × shards × (queue_cap + batch_max)`.
    pub max_inflight: usize,
    /// How long graceful shutdown waits for connections that still owe
    /// replies before force-closing them. A peer that never reads its
    /// pending replies could otherwise hold `join` (and process exit)
    /// hostage forever.
    pub drain_deadline_ms: u64,
    /// How MiniLang sources are traced and encoded server-side.
    pub extract: ExtractOptions,
    /// Where the embedding index persists (`LGRI1`). `None` keeps the
    /// index in memory only. When the file exists it is loaded at
    /// startup (refusing dim/fingerprint mismatches); the index is
    /// written back on graceful shutdown, atomically.
    pub index_path: Option<std::path::PathBuf>,
    /// Root of the content-addressed artifact store (`LGRS1`). Shard
    /// workers resolve embedding requests through it before the fused
    /// GEMM pass: a hit skips the forward pass entirely, and every
    /// entry is stamped with the bundle's fingerprint so a swapped
    /// checkpoint reads as a miss, never a stale embedding.
    pub store_path: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_max: 16,
            batch_timeout_ms: 5,
            queue_cap: 64,
            shards: 0,
            max_conns: 1024,
            max_inflight: 0,
            drain_deadline_ms: 5000,
            extract: ExtractOptions::default(),
            index_path: None,
            store_path: None,
        }
    }
}

/// Model state shared by every thread (read-only after startup, except
/// the shutdown flag and the completion queue).
struct Shared {
    task: LigerTask,
    store: tensor::ParamStore,
    /// Present for quantized (`qparams`) bundles: each shard worker
    /// clones it into a private [`QuantEngine`] and serves the int8 path.
    qstore: Option<tensor::QuantStore>,
    vocab: Vocab,
    extract: ExtractOptions,
    stats: ServeStats,
    /// The embedding index behind the `index` / `search` / `similar`
    /// ops. A plain mutex: every touch happens on shard threads (never
    /// the event loop), and the critical sections are small next to the
    /// forward passes that precede them. Determinism across shard
    /// counts does not depend on lock order — search results are a pure
    /// function of the stored *set*, not of insertion interleaving.
    index: Mutex<Index>,
    /// The canonical-key encoding memo behind `"canon": true` requests:
    /// `canon_hash` → encoded canonical form, shared across shards so a
    /// variant seen by any shard collapses for all of them. Same locking
    /// story as `index`: only shard threads touch it, and a memo hit
    /// skips an entire trace-and-encode pass, which dwarfs the critical
    /// section.
    canon: Mutex<CanonEncoder>,
    /// Where [`ServerHandle::join`] persists the index, if anywhere.
    index_path: Option<std::path::PathBuf>,
    /// The content-addressed artifact store, if configured. Shard
    /// threads consult it for cached embeddings keyed by the routing
    /// content hash; corruption never takes a request down — the shard
    /// recomputes and counts `serve.store_error`.
    astore: Option<store::Store>,
    /// The bundle fingerprint stamped on every cached embedding.
    model_fp: String,
    shutdown: AtomicBool,
    /// Shard → event-loop reply channel, drained on eventfd wake.
    completions: Mutex<Vec<Completion>>,
    /// Nudges the event loop when completions land (or on shutdown).
    waker: Waker,
}

/// Persistent per-worker inference state: the f32 workspace (arena +
/// memo reuse across batches) and, for quantized bundles, the int8
/// engine with its quantization scratch.
struct WorkerCtx {
    ws: Workspace,
    engine: Option<QuantEngine>,
}

/// One queued unit of shard work, addressed back to its connection.
struct Job {
    work: Work,
    /// Connection slot in the event loop.
    slot: usize,
    /// Slot-reuse guard (see [`Conn::generation`]).
    generation: u64,
    /// Per-connection reply-ordering sequence number.
    seq: u64,
    queued: Instant,
}

/// What a shard runs for one job. Everything CPU-bound ships here —
/// including `source` extraction and the lint analyses — so the
/// event-loop thread stays I/O-only: one request carrying a huge
/// MiniLang source must never stall accepts, reads, and reply flushes
/// for every other connection behind its parse.
enum Work {
    /// Run the model.
    Infer(InferKind, InferPayload),
    /// Parse/typecheck/lint a source (never touches the model).
    Lint(String),
    /// Embed and store in the embedding index.
    Index(InferPayload),
    /// Embed and query the embedding index.
    Search(InferPayload, SearchOptions),
}

/// An inference job's input, exactly as the client sent it.
enum InferPayload {
    /// A pre-extracted program (routed by [`content_hash`]). Boxed so
    /// the enum stays pointer-sized next to the `Source` variant.
    Encoded(Box<EncodedProgram>),
    /// MiniLang source; the shard traces and encodes it (routed by
    /// [`source_hash`]).
    Source(String),
    /// MiniLang source with `"canon": true`; the shard canonicalizes it
    /// and serves the encoding of the canonical form through the shared
    /// `canon_hash` memo (routed by [`source_hash`] — the canonical key
    /// is not known until the shard has parsed the source).
    CanonSource(String),
}

/// What happens to a resolved job's forward-pass output.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReadyOp {
    /// Reply with the inference result itself.
    Infer(InferKind),
    /// Insert the embedding into the index under the program's
    /// content hash.
    Index,
    /// Query the index with the embedding.
    Search(SearchOptions),
}

impl ReadyOp {
    /// Whether this op's forward pass is the fused embed panel.
    fn needs_embedding(self) -> bool {
        !matches!(self, ReadyOp::Infer(InferKind::Name | InferKind::Classify))
    }
}

/// An inference job resolved to its encoded program on the shard
/// thread, ready for the batcher's fused/fan-out paths.
struct Ready {
    op: ReadyOp,
    prog: EncodedProgram,
    slot: usize,
    generation: u64,
    seq: u64,
    queued: Instant,
}

/// A finished job's reply, travelling shard → event loop.
struct Completion {
    slot: usize,
    generation: u64,
    seq: u64,
    reply: Json,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Requests graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }

    /// Whether every server thread has exited.
    pub fn is_finished(&self) -> bool {
        self.event_loop.as_ref().is_none_or(JoinHandle::is_finished)
            && self.shard_threads.iter().all(JoinHandle::is_finished)
    }

    /// Waits for the event loop and every shard batcher to finish, then
    /// persists the embedding index (if an `index_path` is configured) —
    /// after the threads exit, no insert can race the save.
    pub fn join(mut self) {
        if let Some(t) = self.event_loop.take() {
            t.join().expect("event-loop thread panicked");
        }
        for t in self.shard_threads.drain(..) {
            t.join().expect("shard thread panicked");
        }
        if let Some(path) = &self.shared.index_path {
            let idx = self.shared.index.lock().expect("index poisoned");
            if let Err(e) = idx.save(path) {
                eprintln!("liger-serve: failed to save index {}: {e}", path.display());
            }
        }
    }
}

/// Stable FNV-1a hash of a program's *structure* — the shard routing
/// key. It walks the same shape `protocol::program_to_json` serializes
/// (trace/step/tree/state tokens plus arity delimiters), so it depends
/// only on the program content, never on pool-id assignment, process
/// layout, or arrival order: one program always routes to one shard,
/// which is what keeps `stats` aggregation and drain accounting
/// deterministic under resharding.
pub fn content_hash(prog: &EncodedProgram) -> u64 {
    use store::hash::Fnv64 as Fnv;
    fn tree(h: &mut Fnv, t: liger::TreeId, prog: &EncodedProgram) {
        let node = prog.pool.tree(t);
        h.num(1);
        h.num(node.token as u64);
        h.num(node.children.len() as u64);
        for &c in &node.children {
            tree(h, c, prog);
        }
    }
    let mut h = Fnv::new();
    h.num(prog.traces.len() as u64);
    for tr in &prog.traces {
        h.num(2);
        h.num(tr.steps.len() as u64);
        for step in &tr.steps {
            tree(&mut h, step.tree, prog);
            h.num(3);
            h.num(step.states.len() as u64);
            for &s in &step.states {
                let state = prog.pool.state(s);
                h.num(4);
                for v in &state.vars {
                    match v {
                        liger::PoolVar::Primitive(tok) => {
                            h.num(5);
                            h.num(*tok as u64);
                        }
                        liger::PoolVar::Object(obj) => {
                            h.num(6);
                            for &t in prog.pool.object(*obj) {
                                h.num(t as u64);
                            }
                        }
                    }
                }
            }
        }
    }
    h.finish()
}

/// Stable FNV-1a hash of a raw source string — the routing key for the
/// jobs a shard parses itself (`source` inference inputs and lint),
/// and the artifact-store key for source-derived caches. Delegates to
/// the workspace-shared hasher so the routing and store key spaces are
/// one; it depends only on the request bytes, so one source always
/// routes to one shard.
pub fn source_hash(src: &str) -> u64 {
    store::hash::fnv1a_str(src)
}

/// A compact fingerprint of the serving model, stored in every index
/// file: head kind, embedding width, vocabulary size, numeric path, and
/// an FNV-1a hash of the trained parameter bytes. Two bundles that could
/// produce different embeddings get different fingerprints, so a stale
/// index is refused at load rather than silently searched. Delegates to
/// [`ModelBundle::fingerprint`], which the artifact store stamps on
/// every cached embedding for the same staleness guarantee.
pub fn model_fingerprint(bundle: &ModelBundle) -> String {
    bundle.fingerprint()
}

/// Opens (or creates) the embedding index for `bundle`: loads
/// `index_path` when the file exists, otherwise starts empty.
///
/// # Errors
///
/// `InvalidData` when the file is corrupt or was written by a different
/// model (its typed kind is preserved in the message).
fn open_index(
    bundle: &ModelBundle,
    index_path: Option<&std::path::Path>,
) -> io::Result<Index> {
    let fingerprint = model_fingerprint(bundle);
    let dim = bundle.cfg.hidden;
    match index_path {
        Some(path) if path.exists() => {
            Index::load(path, dim, &fingerprint, IndexConfig::default()).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("cannot load index {}: {e} ({})", path.display(), e.kind()),
                )
            })
        }
        _ => Ok(Index::new(dim, fingerprint)),
    }
}

/// Instantiates `bundle` and starts serving it.
///
/// # Errors
///
/// Returns `InvalidData` when the bundle's parameters do not match its
/// declared architecture or a configured index file is unusable, the
/// bind error, or the poller setup error.
pub fn serve(bundle: &ModelBundle, config: ServerConfig) -> io::Result<ServerHandle> {
    let (task, store) = bundle
        .instantiate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let idx = open_index(bundle, config.index_path.as_deref())?;
    let astore = match config.store_path.as_deref() {
        Some(dir) => Some(store::Store::open(dir).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cannot open artifact store {}: {e}", dir.display()),
            )
        })?),
        None => None,
    };
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;

    let shards = if config.shards == 0 { par::hardware_threads() } else { config.shards };
    let queue_cap = config.queue_cap.max(1);
    let batch_max = config.batch_max.max(1);
    let max_inflight = if config.max_inflight == 0 {
        2 * shards * (queue_cap + batch_max)
    } else {
        config.max_inflight
    };
    // Each shard's inner fan-out takes only its slice of the pool, so N
    // shards together never oversubscribe the configured thread count.
    let inner_cap = (par::threads() / shards).max(1);

    let shared = Arc::new(Shared {
        task,
        store,
        qstore: bundle.qstore.clone(),
        vocab: bundle.vocab.clone(),
        extract: config.extract.clone(),
        stats: ServeStats::new(shards),
        index: Mutex::new(idx),
        canon: Mutex::new(CanonEncoder::new()),
        index_path: config.index_path.clone(),
        astore,
        model_fp: model_fingerprint(bundle),
        shutdown: AtomicBool::new(false),
        completions: Mutex::new(Vec::new()),
        waker: Waker::new()?,
    });

    let mut senders = Vec::with_capacity(shards);
    let mut shard_threads = Vec::with_capacity(shards);
    let timeout = Duration::from_millis(config.batch_timeout_ms);
    for shard in 0..shards {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue_cap);
        senders.push(tx);
        let shared = Arc::clone(&shared);
        shard_threads.push(
            std::thread::Builder::new()
                .name(format!("liger-serve-shard{shard}"))
                .spawn(move || shard_loop(&shared, shard, &rx, batch_max, timeout, inner_cap))?,
        );
    }

    let event_loop = {
        let shared = Arc::clone(&shared);
        let max_conns = config.max_conns.max(1);
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(shared.waker.raw_fd(), TOKEN_WAKER, Interest::READ)?;
        let state = EventLoop {
            shared,
            poller,
            listener: Some(listener),
            senders,
            conns: Vec::new(),
            free: Vec::new(),
            open: 0,
            inflight: 0,
            next_gen: 0,
            max_conns,
            max_inflight,
            drain_deadline: Duration::from_millis(config.drain_deadline_ms),
            drain_started: None,
            frame_scratch: Vec::new(),
            completion_scratch: Vec::new(),
            touched: Vec::new(),
        };
        std::thread::Builder::new()
            .name("liger-serve-loop".to_string())
            .spawn(move || state.run())?
    };

    Ok(ServerHandle {
        local_addr,
        shared,
        event_loop: Some(event_loop),
        shard_threads,
    })
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// How long `epoll_wait` may sleep: the fallback cadence for noticing a
/// shutdown requested without a wake (e.g. from a signal handler).
const WAIT_MS: i32 = 25;

/// The event-loop thread's whole world. Single-threaded by design:
/// shards talk to it only through the completion queue + waker.
struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    /// `None` once shutdown closed it.
    listener: Option<TcpListener>,
    senders: Vec<SyncSender<Job>>,
    /// Connection slab indexed by slot (= poll token).
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    /// Jobs accepted into shard queues and not yet completed. Only this
    /// thread touches it: enqueue and completion both happen here.
    inflight: usize,
    next_gen: u64,
    max_conns: usize,
    max_inflight: usize,
    /// Grace period for the shutdown drain; see [`ServerConfig`].
    drain_deadline: Duration,
    /// When the loop first observed the shutdown flag.
    drain_started: Option<Instant>,
    /// Reused between events: parsed-but-undispatched frames.
    frame_scratch: Vec<Json>,
    /// Reused double-buffer for draining the completion queue.
    completion_scratch: Vec<Completion>,
    /// Slots touched by the last completion drain (need flushing).
    touched: Vec<usize>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.poller.wait(&mut events, WAIT_MS).is_err() {
                // Poller died (fd exhaustion at registration is handled
                // per-connection; this is unrecoverable).
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    slot => self.conn_ready(slot as usize, ev),
                }
            }
            self.process_completions();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                let started = *self.drain_started.get_or_insert_with(Instant::now);
                self.drain_step(started.elapsed() >= self.drain_deadline);
                if self.open == 0 && self.inflight == 0 {
                    break;
                }
            }
        }
        // Dropping `senders` disconnects every shard queue; the shard
        // loops finish whatever is buffered (nothing, by the loop-exit
        // condition) and exit.
    }

    /// Accepts until the listener would block, shedding over-cap sockets.
    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if self.open >= self.max_conns {
                        self.shed_conn(stream, "connection limit reached, try another replica");
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    self.next_gen += 1;
                    if self.poller.register(stream.as_raw_fd(), slot as u64, Interest::READ).is_err()
                    {
                        // Same contract as the over-cap path: the client
                        // gets one SHED frame instead of a bare reset,
                        // and the slot returns to the free list unused.
                        self.free.push(slot);
                        self.shed_conn(stream, "server cannot register the connection, back off");
                        continue;
                    }
                    self.conns[slot] = Some(Conn::new(stream, self.next_gen));
                    self.open += 1;
                    self.shared.stats.record_conn_opened();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Best-effort SHED reply to a connection refused at the door
    /// (over `max_conns`, or the poller would not take its fd).
    fn shed_conn(&mut self, stream: TcpStream, reason: &str) {
        self.shared.stats.record_shed();
        let _ = stream.set_nonblocking(true);
        let mut stream = stream;
        let _ = write_frame(&mut stream, &shed_response(reason));
        // Dropping the stream closes it; the frame either made the
        // socket buffer in one write or the client sees a plain reset.
    }

    /// One connection's readiness: flush writes, then drain reads.
    fn conn_ready(&mut self, slot: usize, ev: Event) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return; // already closed this iteration
        }
        if ev.writable && !self.flush_slot(slot) {
            return; // connection died on flush
        }
        if ev.readable {
            self.read_ready(slot);
        }
        self.settle(slot);
    }

    /// Drains the socket (edge-triggered: until `WouldBlock`), parsing
    /// and dispatching every complete frame.
    fn read_ready(&mut self, slot: usize) {
        let mut frames = std::mem::take(&mut self.frame_scratch);
        let mut framing_error: Option<io::Error> = None;
        let mut dead = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                self.frame_scratch = frames;
                return;
            };
            if conn.fatal {
                // Already replied with a protocol error; ignore the rest.
                self.frame_scratch = frames;
                return;
            }
            'fill: loop {
                match conn.reader.fill_from(&mut conn.stream) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break 'fill;
                    }
                    Ok(_) => loop {
                        match conn.reader.next_frame() {
                            Ok(Some(frame)) => frames.push(frame),
                            Ok(None) => break,
                            Err(e) => {
                                framing_error = Some(e);
                                break 'fill;
                            }
                        }
                    },
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'fill,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break 'fill;
                    }
                }
            }
        }
        if dead {
            frames.clear();
            self.frame_scratch = frames;
            self.close_conn(slot);
            return;
        }
        for frame in frames.drain(..) {
            self.dispatch(slot, frame);
        }
        self.frame_scratch = frames;
        if let Some(e) = framing_error {
            // Frames already parsed keep their replies; the error reply
            // takes the next sequence slot, then the connection closes
            // once everything has flushed.
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.fatal = true;
                let seq = conn.assign_seq();
                conn.complete(seq, error_response(e.to_string()));
            }
        }
    }

    /// Routes one parsed request: admin verbs answer inline (through the
    /// ordering ledger); inference *and every other CPU-bound verb*
    /// (lint, `source` extraction) hash to a shard queue — the loop
    /// thread itself only parses frames and moves bytes.
    fn dispatch(&mut self, slot: usize, frame: Json) {
        let Some(conn) = self.conns[slot].as_mut() else { return };
        let seq = conn.assign_seq();
        let generation = conn.generation;
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(msg) => return self.complete_inline(slot, seq, error_response(msg)),
        };
        let (key, work) = match request {
            Request::Ping => {
                return self.complete_inline(slot, seq, ok_response(vec![("pong", Json::Bool(true))]))
            }
            Request::Stats => {
                let index_stats = self.shared.index.lock().expect("index poisoned").stats();
                let canon_stats = {
                    let memo = self.shared.canon.lock().expect("canon memo poisoned");
                    CanonMemoStats { entries: memo.len(), hits: memo.hits, misses: memo.misses }
                };
                let reply =
                    stats_response(&self.shared.stats.snapshot(), &index_stats, &canon_stats);
                return self.complete_inline(slot, seq, reply);
            }
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                return self
                    .complete_inline(slot, seq, ok_response(vec![("shutting_down", Json::Bool(true))]));
            }
            Request::Lint(src) => (source_hash(&src), Work::Lint(src)),
            Request::Infer(kind, InferInput::Encoded(prog)) => {
                (content_hash(&prog), Work::Infer(kind, InferPayload::Encoded(prog)))
            }
            Request::Infer(kind, InferInput::Source(src)) => {
                (source_hash(&src), Work::Infer(kind, InferPayload::Source(src)))
            }
            Request::Infer(kind, InferInput::CanonSource(src)) => {
                (source_hash(&src), Work::Infer(kind, InferPayload::CanonSource(src)))
            }
            Request::Index(InferInput::Encoded(prog)) => {
                (content_hash(&prog), Work::Index(InferPayload::Encoded(prog)))
            }
            Request::Index(InferInput::Source(src)) => {
                (source_hash(&src), Work::Index(InferPayload::Source(src)))
            }
            Request::Index(InferInput::CanonSource(src)) => {
                (source_hash(&src), Work::Index(InferPayload::CanonSource(src)))
            }
            Request::Search(InferInput::Encoded(prog), opts) => {
                (content_hash(&prog), Work::Search(InferPayload::Encoded(prog), opts))
            }
            Request::Search(InferInput::Source(src), opts) => {
                (source_hash(&src), Work::Search(InferPayload::Source(src), opts))
            }
            Request::Search(InferInput::CanonSource(src), opts) => {
                (source_hash(&src), Work::Search(InferPayload::CanonSource(src), opts))
            }
        };
        if self.inflight >= self.max_inflight {
            self.shared.stats.record_shed();
            let reply = shed_response("server over its in-flight budget, back off");
            return self.complete_inline(slot, seq, reply);
        }
        let shard = (key % self.senders.len() as u64) as usize;
        // Lint rides the queues but is not an inference request: it
        // moves the queue-depth gauges, never the `requests` counter.
        // Index and search run a forward pass, so they count.
        let infer = !matches!(work, Work::Lint(_));
        if infer {
            self.shared.stats.record_enqueued(shard);
        } else {
            self.shared.stats.record_lint_enqueued(shard);
        }
        let job = Job { work, slot, generation, seq, queued: Instant::now() };
        match self.senders[shard].try_send(job) {
            Ok(()) => {
                self.inflight += 1;
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.inflight += 1;
                }
            }
            Err(TrySendError::Full(_)) => {
                if infer {
                    self.shared.stats.record_enqueue_reverted(shard);
                } else {
                    self.shared.stats.record_lint_reverted(shard);
                }
                self.shared.stats.record_rejected();
                self.complete_inline(slot, seq, busy_response());
            }
            Err(TrySendError::Disconnected(_)) => {
                if infer {
                    self.shared.stats.record_enqueue_reverted(shard);
                } else {
                    self.shared.stats.record_lint_reverted(shard);
                }
                self.complete_inline(slot, seq, error_response("server is shutting down"));
            }
        }
    }

    /// Completes a reply produced on the event-loop thread itself.
    fn complete_inline(&mut self, slot: usize, seq: u64, reply: Json) {
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.complete(seq, reply);
        }
    }

    /// Drains the shard→loop completion queue and flushes the slots it
    /// touched.
    fn process_completions(&mut self) {
        let mut batch = std::mem::take(&mut self.completion_scratch);
        {
            let mut queue = self.shared.completions.lock().expect("completion queue poisoned");
            std::mem::swap(&mut *queue, &mut batch);
        }
        if batch.is_empty() {
            self.completion_scratch = batch;
            return;
        }
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        for done in batch.drain(..) {
            self.inflight -= 1;
            if let Some(conn) = self.conns.get_mut(done.slot).and_then(Option::as_mut) {
                if conn.generation == done.generation {
                    conn.inflight -= 1;
                    conn.complete(done.seq, done.reply);
                    if !touched.contains(&done.slot) {
                        touched.push(done.slot);
                    }
                }
                // A mismatched generation is a completion for a
                // connection that died mid-flight: the global in-flight
                // budget is released, the reply has nowhere to go.
            }
        }
        self.completion_scratch = batch;
        for &slot in &touched {
            if self.flush_slot(slot) {
                self.settle(slot);
            }
        }
        self.touched = touched;
    }

    /// Flushes a connection's write buffer and keeps poller write
    /// interest in sync. Returns `false` if the connection was closed.
    fn flush_slot(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else { return false };
        match conn.flush() {
            Ok(drained) => {
                let fd = conn.stream.as_raw_fd();
                if drained && conn.write_armed {
                    conn.write_armed = false;
                    let _ = self.poller.modify(fd, slot as u64, Interest::READ);
                } else if !drained && !conn.write_armed {
                    conn.write_armed = true;
                    let _ = self.poller.modify(fd, slot as u64, Interest::READ_WRITE);
                }
                true
            }
            Err(_) => {
                self.close_conn(slot);
                false
            }
        }
    }

    /// Applies the close rules after I/O or completions changed a
    /// connection's state.
    fn settle(&mut self, slot: usize) {
        if !self.flush_slot(slot) {
            return;
        }
        let Some(conn) = self.conns[slot].as_ref() else { return };
        let close = (conn.fatal && !conn.has_pending_writes() && conn.inflight == 0)
            || (conn.peer_closed && !conn.owes_replies());
        if close {
            self.close_conn(slot);
        }
    }

    /// Shutdown housekeeping, run once per loop iteration while the
    /// flag is set: close the listener, then retire every connection
    /// that owes nothing. Connections still owed replies stay until
    /// their shards complete them — accepted work is never dropped —
    /// until the drain deadline passes (`force`): past it, a peer that
    /// will not take delivery of its replies (never reading, socket
    /// buffers full) is force-closed rather than allowed to hold
    /// [`ServerHandle::join`] hostage. Its in-flight completions are
    /// released by the generation check when they land.
    fn drain_step(&mut self, force: bool) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        for slot in 0..self.conns.len() {
            let closable = match &self.conns[slot] {
                Some(conn) => force || !conn.owes_replies(),
                None => false,
            };
            if closable {
                self.close_conn(slot);
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.stats.record_conn_closed();
            self.open -= 1;
            self.free.push(slot);
        }
    }
}

/// Runs the always-terminating static analyses on a submitted source and
/// renders the diagnostics. Never touches the model, but parsing and
/// typechecking are CPU-bound, so lint jobs run on the shard workers
/// (routed by [`source_hash`]) rather than the event-loop thread.
fn lint_source(src: &str) -> Json {
    let program = match minilang::parse(src) {
        Ok(p) => p,
        Err(e) => return error_response(format!("parse error: {e}")),
    };
    if let Err(e) = minilang::typecheck(&program) {
        return error_response(format!("type error: {e}"));
    }
    lint_response(&analysis::lint::run(&program))
}

/// The token posting list the index keeps per program: every tree and
/// state token the encoded program mentions, as the lexical half of
/// hybrid search. Sorting/deduplication happens inside the store.
fn program_tokens(prog: &EncodedProgram) -> Vec<u32> {
    fn tree(out: &mut Vec<u32>, t: liger::TreeId, prog: &EncodedProgram) {
        let node = prog.pool.tree(t);
        out.push(node.token as u32);
        for &c in &node.children {
            tree(out, c, prog);
        }
    }
    let mut out = Vec::new();
    for tr in &prog.traces {
        for step in &tr.steps {
            tree(&mut out, step.tree, prog);
            for &s in &step.states {
                for v in &prog.pool.state(s).vars {
                    match v {
                        liger::PoolVar::Primitive(tok) => out.push(*tok as u32),
                        liger::PoolVar::Object(obj) => {
                            out.extend(prog.pool.object(*obj).iter().map(|&t| t as u32));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Executes the `index` op against the shared index: key = the same
/// content hash that routed the job, so index identity and shard
/// routing agree on what "the same program" means.
fn index_insert(shared: &Shared, prog: &EncodedProgram, embedding: &[f32]) -> Json {
    let key = content_hash(prog);
    let tokens = program_tokens(prog);
    let mut idx = shared.index.lock().expect("index poisoned");
    match idx.insert(key, embedding, &tokens) {
        Ok(outcome) => index_response(key, outcome, idx.len()),
        Err(e) => index_error_response(&e),
    }
}

/// Executes the `search` / `similar` op against the shared index. The
/// reply leads with the *exact tier*: if a stored program has the same
/// content hash as the query — for `"canon": true` queries, the same
/// canonical form, so every syntactic variant of an indexed routine
/// matches — its key is surfaced as `exact` before the cosine ranking.
fn index_search(
    shared: &Shared,
    prog: &EncodedProgram,
    embedding: &[f32],
    opts: SearchOptions,
) -> Json {
    let key = content_hash(prog);
    let tokens = program_tokens(prog);
    let mut idx = shared.index.lock().expect("index poisoned");
    let exact = idx.store().row_of(key).map(|_| key);
    if exact.is_some() {
        obs::counter!("serve.search_exact").add(1);
    }
    match idx.search(embedding, &tokens, &opts) {
        Ok(result) => search_response(&result, exact),
        Err(e) => index_error_response(&e),
    }
}

/// Point-in-time counters of the canonical-key encoding memo, rendered
/// into the STATS reply's `canon` block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CanonMemoStats {
    /// Distinct canonical forms cached.
    pub entries: usize,
    /// Requests served from the memo (variants that collapsed).
    pub hits: u64,
    /// Requests that encoded a new canonical form.
    pub misses: u64,
}

/// Renders a stats snapshot as the STATS reply payload. The pre-shard
/// top-level fields keep their exact keys and meanings; `shed`, `conns`,
/// the per-shard breakdown, and the `index` / `canon` blocks are
/// appended after them.
pub fn stats_response(
    snap: &StatsSnapshot,
    index_stats: &IndexStats,
    canon_stats: &CanonMemoStats,
) -> Json {
    let shards = snap
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Json::obj(vec![
                ("shard", Json::num(i)),
                ("requests", Json::num(s.requests as usize)),
                ("batches", Json::num(s.batches as usize)),
                ("batch_factor", Json::Num((s.batch_factor() * 100.0).round() / 100.0)),
                ("queue_depth", Json::num(s.queue_depth as usize)),
                ("p50_us", Json::num(s.p50_us as usize)),
                ("p99_us", Json::num(s.p99_us as usize)),
            ])
        })
        .collect();
    ok_response(vec![
        ("requests", Json::num(snap.requests as usize)),
        ("batches", Json::num(snap.batches as usize)),
        ("rejected", Json::num(snap.rejected as usize)),
        ("queue_depth", Json::num(snap.queue_depth as usize)),
        ("p50_us", Json::num(snap.p50_us as usize)),
        ("p99_us", Json::num(snap.p99_us as usize)),
        ("shed", Json::num(snap.shed as usize)),
        ("conns", Json::num(snap.conns as usize)),
        ("shards", Json::Arr(shards)),
        (
            "index",
            Json::obj(vec![
                ("entries", Json::num(index_stats.entries)),
                ("bytes", Json::num(index_stats.bytes)),
                ("searches", Json::num(index_stats.searches as usize)),
            ]),
        ),
        (
            "canon",
            Json::obj(vec![
                ("entries", Json::num(canon_stats.entries)),
                ("hits", Json::num(canon_stats.hits as usize)),
                ("misses", Json::num(canon_stats.misses as usize)),
            ]),
        ),
    ])
}

/// One shard's batcher: coalesces its queue into batches, fans each
/// batch out across the shard's persistent worker pool, and posts the
/// replies to the event loop. Exits when the queue sender is gone
/// **and** the queue is drained — `Receiver::recv` keeps returning
/// buffered jobs after the sender disconnects, so accepted requests
/// always get replies.
fn shard_loop(
    shared: &Arc<Shared>,
    shard: usize,
    jobs: &Receiver<Job>,
    batch_max: usize,
    timeout: Duration,
    inner_cap: usize,
) {
    let mut workers: Vec<WorkerCtx> = Vec::new();
    let new_ctx = || WorkerCtx {
        ws: Workspace::new(),
        engine: shared.qstore.clone().map(QuantEngine::from_store),
    };
    let mut out: Vec<Completion> = Vec::new();
    loop {
        let first = match jobs.recv() {
            Ok(job) => job,
            Err(_) => return, // sender gone, queue drained
        };
        shared.stats.record_dequeued(shard);
        let mut batch = vec![first];
        let deadline = Instant::now() + timeout;
        while batch.len() < batch_max {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match jobs.recv_timeout(remaining) {
                Ok(job) => {
                    shared.stats.record_dequeued(shard);
                    batch.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Span opens after the blocking recv: it times coalescing,
        // resolution, fan-out, and replies, not idle queue waits.
        let _span = obs::span!("serve.batch");

        // Resolve each job to a concrete inference input *here*, on the
        // shard thread: lint runs its analyses and `source` inputs get
        // traced-and-encoded off the event loop, whose thread must stay
        // I/O-only. Failures complete immediately as error replies.
        let mut ready: Vec<Ready> = Vec::with_capacity(batch.len());
        for job in batch {
            let Job { work, slot, generation, seq, queued } = job;
            let (op, payload) = match work {
                Work::Lint(src) => {
                    out.push(Completion { slot, generation, seq, reply: lint_source(&src) });
                    continue;
                }
                Work::Infer(kind, payload) => (ReadyOp::Infer(kind), payload),
                Work::Index(payload) => (ReadyOp::Index, payload),
                Work::Search(payload, opts) => (ReadyOp::Search(opts), payload),
            };
            let extracted = match payload {
                InferPayload::Encoded(prog) => Ok(*prog),
                InferPayload::Source(src) => extract_encoded(&src, &shared.vocab, &shared.extract)
                    .map_err(|e| e.to_string()),
                // The canonical path: parse + canonicalize here, then
                // serve the canonical form's encoding from the shared
                // memo. A hit skips the whole trace-and-encode pass;
                // either way the program the model sees is the
                // canonical one, so content-hash identity (index keys,
                // dedup) collapses across syntactic variants.
                InferPayload::CanonSource(src) => shared
                    .canon
                    .lock()
                    .expect("canon memo poisoned")
                    .encode(&src, &shared.vocab, &shared.extract)
                    .map(|c| c.encoded)
                    .map_err(|e| e.to_string()),
            };
            match extracted {
                Ok(prog) => ready.push(Ready { op, prog, slot, generation, seq, queued }),
                Err(msg) => {
                    out.push(Completion { slot, generation, seq, reply: error_response(msg) })
                }
            }
        }
        let infer_total = ready.len();

        // Embedding-consuming requests — `embed` itself plus `index` and
        // `search`, which post-process the same forward pass — take the
        // fused batch-major path: all programs in the batch share one
        // tape, so each layer runs a packed panel matmul
        // (`Op::AffineBatch`) instead of per-program matvecs. Results
        // stay bitwise identical to the per-program encoder, so the
        // determinism contract above is unchanged. Name/Classify
        // requests keep the per-program fan-out (decode is sequential
        // per program anyway).
        let (embeds, rest): (Vec<Ready>, Vec<Ready>) =
            ready.into_iter().partition(|job| job.op.needs_embedding());

        if !embeds.is_empty() {
            if workers.is_empty() {
                workers.push(new_ctx());
            }
            obs::counter!("serve.fused_embed_batch").add(embeds.len() as u64);
            let ctx = &mut workers[0];
            // Resolve cache hits through the artifact store first, keyed
            // by the routing content hash + bundle fingerprint. Hits drop
            // out of the fused GEMM panel entirely; only misses are
            // computed, and their results are written back. A corrupt
            // entry recomputes (counted) rather than failing the request.
            let mut cached: Vec<Option<Vec<f32>>> = vec![None; embeds.len()];
            let mut keys: Vec<u64> = Vec::new();
            if let Some(st) = &shared.astore {
                keys = embeds.iter().map(|job| content_hash(&job.prog)).collect();
                for (slot, key) in cached.iter_mut().zip(&keys) {
                    match st.get(store::ArtifactKind::Embedding, *key, &shared.model_fp) {
                        Ok(Some(payload)) => match store::embedding_from_bytes(&payload) {
                            Ok(emb) => *slot = Some(emb),
                            Err(_) => obs::counter!("serve.store_error").inc(),
                        },
                        Ok(None) => {}
                        Err(_) => obs::counter!("serve.store_error").inc(),
                    }
                }
            }
            let miss_idx: Vec<usize> =
                (0..embeds.len()).filter(|&i| cached[i].is_none()).collect();
            let progs: Vec<&EncodedProgram> =
                miss_idx.iter().map(|&i| &embeds[i].prog).collect();
            let computed: Vec<Vec<f32>> = if progs.is_empty() {
                Vec::new()
            } else {
                match &mut ctx.engine {
                    Some(engine) => {
                        let model = shared.task.model();
                        progs.iter().map(|prog| engine.embed(model, prog)).collect()
                    }
                    None => shared.task.embed_batch_in(&mut ctx.ws, &shared.store, &progs),
                }
            };
            if let Some(st) = &shared.astore {
                for (&i, emb) in miss_idx.iter().zip(&computed) {
                    let payload = store::embedding_to_bytes(emb);
                    if st
                        .put(store::ArtifactKind::Embedding, keys[i], &shared.model_fp, &payload)
                        .is_err()
                    {
                        obs::counter!("serve.store_error").inc();
                    }
                }
            }
            let mut fresh = computed.into_iter();
            let embeddings: Vec<Vec<f32>> = cached
                .into_iter()
                .map(|slot| slot.unwrap_or_else(|| fresh.next().expect("one result per miss")))
                .collect();
            for (job, embedding) in embeds.into_iter().zip(embeddings) {
                shared.stats.record_latency(shard, InferKind::Embed, job.queued.elapsed());
                let reply = match job.op {
                    ReadyOp::Index => index_insert(shared, &job.prog, &embedding),
                    ReadyOp::Search(opts) => index_search(shared, &job.prog, &embedding, opts),
                    ReadyOp::Infer(_) => {
                        ok_response(vec![("embedding", embedding_to_json(&embedding))])
                    }
                };
                out.push(Completion {
                    slot: job.slot,
                    generation: job.generation,
                    seq: job.seq,
                    reply,
                });
            }
        }

        if !rest.is_empty() {
            let mut inputs = Vec::with_capacity(rest.len());
            let mut sinks = Vec::with_capacity(rest.len());
            for job in rest {
                let ReadyOp::Infer(kind) = job.op else {
                    unreachable!("non-infer ops all need embeddings")
                };
                inputs.push((kind, job.prog));
                sinks.push((job.slot, job.generation, job.seq, job.queued, kind));
            }
            let results = par::par_map_ordered_with_cap(
                &inputs,
                &mut workers,
                new_ctx,
                |ctx, _i, (kind, prog)| run_inference(shared, ctx, *kind, prog),
                inner_cap,
            );
            for ((slot, generation, seq, queued, kind), reply) in sinks.into_iter().zip(results) {
                shared.stats.record_latency(shard, kind, queued.elapsed());
                out.push(Completion { slot, generation, seq, reply });
            }
        }
        // Only forward passes count as a batch: a coalesced run of pure
        // lint (or failed-extraction) jobs executes no model work.
        if infer_total > 0 {
            shared.stats.record_batch(shard, infer_total);
        }

        // One lock + one wake per batch, not per reply.
        shared.completions.lock().expect("completion queue poisoned").append(&mut out);
        shared.waker.wake();
    }
}

/// One forward pass. Resets the workspace first, so the result is a pure
/// function of the program — bitwise identical to the offline memoized
/// encoder no matter which shard, worker, or batch runs it. Quantized
/// bundles dispatch to the worker's int8 engine instead (deterministic
/// too: the integer accumulation is exact).
fn run_inference(shared: &Shared, ctx: &mut WorkerCtx, kind: InferKind, prog: &EncodedProgram) -> Json {
    let _span = obs::span!("serve.infer");
    if let Some(engine) = &mut ctx.engine {
        return run_inference_quant(shared, engine, kind, prog);
    }
    let ws = &mut ctx.ws;
    match kind {
        InferKind::Embed => {
            let embedding = shared.task.embed_in(ws, &shared.store, prog);
            ok_response(vec![("embedding", embedding_to_json(&embedding))])
        }
        InferKind::Name => match shared.task.name_in(ws, &shared.store, prog) {
            Some(tokens) => ok_response(vec![(
                "name",
                Json::Arr(tokens.into_iter().map(Json::Str).collect()),
            )]),
            None => error_response("this bundle is a classifier; it cannot predict names"),
        },
        InferKind::Classify => match shared.task.classify_in(ws, &shared.store, prog) {
            Some((class, label)) => ok_response(vec![
                ("class", Json::num(class)),
                ("label", Json::str(label)),
            ]),
            None => error_response("this bundle is a namer; it cannot classify"),
        },
    }
}

/// [`run_inference`] through the dequantize-free int8 engine.
fn run_inference_quant(
    shared: &Shared,
    engine: &mut QuantEngine,
    kind: InferKind,
    prog: &EncodedProgram,
) -> Json {
    match kind {
        InferKind::Embed => {
            let embedding = engine.embed(shared.task.model(), prog);
            ok_response(vec![("embedding", embedding_to_json(&embedding))])
        }
        InferKind::Name => match &shared.task {
            LigerTask::Namer { namer, out } => {
                let tokens = out.decode_name(&engine.name(namer, prog));
                ok_response(vec![(
                    "name",
                    Json::Arr(tokens.into_iter().map(Json::Str).collect()),
                )])
            }
            LigerTask::Classifier { .. } => {
                error_response("this bundle is a classifier; it cannot predict names")
            }
        },
        InferKind::Classify => match &shared.task {
            LigerTask::Namer { .. } => {
                error_response("this bundle is a namer; it cannot classify")
            }
            LigerTask::Classifier { cls, labels } => {
                let class = engine.classify(cls, prog);
                let label =
                    labels.get(class).cloned().unwrap_or_else(|| format!("class{class}"));
                ok_response(vec![("class", Json::num(class)), ("label", Json::str(label))])
            }
        },
    }
}

/// A blocking client for the frame protocol. Supports pipelining:
/// [`Client::send`] several requests, then [`Client::recv`] the replies
/// in order. Both directions reuse per-client buffers (a [`FrameReader`]
/// and a write buffer), so a long-lived client allocates nothing for
/// framing in steady state.
///
/// [`FrameReader`]: crate::protocol::FrameReader
pub struct Client {
    stream: TcpStream,
    reader: crate::protocol::FrameReader,
    wbuf: Vec<u8>,
    wscratch: String,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: crate::protocol::FrameReader::new(),
            wbuf: Vec::new(),
            wscratch: String::new(),
        })
    }

    /// Writes one request frame without waiting for the reply.
    ///
    /// # Errors
    ///
    /// Returns the write error.
    pub fn send(&mut self, request: &Json) -> io::Result<()> {
        use std::io::Write;
        self.wbuf.clear();
        crate::protocol::write_frame_into(&mut self.wbuf, &mut self.wscratch, request);
        self.stream.write_all(&self.wbuf)?;
        self.stream.flush()
    }

    /// Reads the next reply frame.
    ///
    /// # Errors
    ///
    /// Returns `UnexpectedEof` if the server closed the connection (mid-
    /// frame or between frames).
    pub fn recv(&mut self) -> io::Result<Json> {
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                return Ok(frame);
            }
            if self.reader.fill_from(&mut self.stream)? == 0 {
                let detail = if self.reader.has_buffered() {
                    "server closed the connection mid-frame"
                } else {
                    "server closed the connection"
                };
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, detail));
            }
        }
    }

    /// One request/reply round trip.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error on either leg.
    pub fn call(&mut self, request: &Json) -> io::Result<Json> {
        self.send(request)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the routing hash on the store's shared pin program. Source
    /// hashes key persistent artifacts (embedding cache entries, index
    /// identities), so a drift in the shared FNV-1a implementation must
    /// fail this test rather than silently orphan every cached artifact.
    #[test]
    fn source_hash_agrees_with_the_store_pin() {
        assert_eq!(source_hash(store::hash::PIN_PROGRAM), store::hash::PIN_SOURCE_HASH);
    }
}
