//! The liger-serve TCP server: micro-batched inference over a bounded
//! queue.
//!
//! ```text
//!  clients ──► handler threads ──► bounded queue ──► batcher thread
//!  (frames)    (parse, extract,    (sync_channel,    (coalesce ≤ batch_max
//!               backpressure)       queue_cap)        or batch_timeout_ms,
//!                                                     par fan-out over
//!                                                     persistent Workspaces)
//! ```
//!
//! - **Batching.** The batcher blocks on the queue; once a request
//!   arrives it keeps collecting until `batch_max` requests are in hand
//!   or `batch_timeout_ms` has elapsed since the first, whichever comes
//!   first, then runs the whole batch through one
//!   [`par::par_map_ordered_with`] fan-out. Each worker keeps a
//!   persistent [`Workspace`] across batches (DESIGN.md §2b), so arena
//!   capacity and memo tables amortize.
//! - **Backpressure.** Handlers `try_send` into the bounded queue; a
//!   full queue yields an immediate BUSY reply instead of unbounded
//!   buffering.
//! - **Shutdown.** SIGTERM/ctrl-c (wired in the binary) or the admin
//!   `shutdown` verb sets a flag: the listener stops accepting,
//!   connections are served until idle, and the batcher drains every
//!   accepted request before exiting — accepted work is never dropped.
//! - **Determinism.** Inference uses the memoized encoder on a reset
//!   workspace, so served embeddings are bitwise identical to the
//!   offline `EncodeMode::Memoized` path regardless of batch shape.

use crate::json::Json;
use crate::protocol::{
    busy_response, embedding_to_json, error_response, lint_response, ok_response, read_frame,
    write_frame, InferInput, InferKind, Request,
};
use crate::stats::{ServeStats, StatsSnapshot};
use liger::{
    extract_encoded, EncodedProgram, ExtractOptions, LigerTask, ModelBundle, QuantEngine, Vocab,
    Workspace,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Maximum requests coalesced into one forward-pass batch.
    pub batch_max: usize,
    /// How long the batcher waits for more requests after the first.
    pub batch_timeout_ms: u64,
    /// Bounded queue capacity; beyond it, requests get BUSY.
    pub queue_cap: usize,
    /// How MiniLang sources are traced and encoded server-side.
    pub extract: ExtractOptions,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_max: 16,
            batch_timeout_ms: 5,
            queue_cap: 64,
            extract: ExtractOptions::default(),
        }
    }
}

/// Model state shared by every thread (read-only after startup, except
/// the shutdown flag).
struct Shared {
    task: LigerTask,
    store: tensor::ParamStore,
    /// Present for quantized (`qparams`) bundles: each batcher worker
    /// clones it into a private [`QuantEngine`] and serves the int8 path.
    qstore: Option<tensor::QuantStore>,
    vocab: Vocab,
    extract: ExtractOptions,
    stats: ServeStats,
    shutdown: AtomicBool,
}

/// Persistent per-worker inference state: the f32 workspace (arena +
/// memo reuse across batches) and, for quantized bundles, the int8
/// engine with its quantization scratch.
struct WorkerCtx {
    ws: Workspace,
    engine: Option<QuantEngine>,
}

/// One queued inference request.
struct Job {
    kind: InferKind,
    prog: EncodedProgram,
    reply: std::sync::mpsc::Sender<Json>,
    queued: Instant,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Requests graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether both server threads have exited.
    pub fn is_finished(&self) -> bool {
        self.listener.as_ref().is_none_or(JoinHandle::is_finished)
            && self.batcher.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Waits for the listener and batcher (and through them, every
    /// connection handler) to finish.
    pub fn join(mut self) {
        if let Some(t) = self.listener.take() {
            t.join().expect("listener thread panicked");
        }
        if let Some(t) = self.batcher.take() {
            t.join().expect("batcher thread panicked");
        }
    }
}

/// Instantiates `bundle` and starts serving it.
///
/// # Errors
///
/// Returns `InvalidData` when the bundle's parameters do not match its
/// declared architecture, or the bind error.
pub fn serve(bundle: &ModelBundle, config: ServerConfig) -> io::Result<ServerHandle> {
    let (task, store) = bundle
        .instantiate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        task,
        store,
        qstore: bundle.qstore.clone(),
        vocab: bundle.vocab.clone(),
        extract: config.extract.clone(),
        stats: ServeStats::new(),
        shutdown: AtomicBool::new(false),
    });

    let (queue, jobs) = std::sync::mpsc::sync_channel::<Job>(config.queue_cap.max(1));

    let batcher = {
        let shared = Arc::clone(&shared);
        let batch_max = config.batch_max.max(1);
        let timeout = Duration::from_millis(config.batch_timeout_ms);
        std::thread::Builder::new()
            .name("liger-serve-batcher".to_string())
            .spawn(move || batcher_loop(&shared, &jobs, batch_max, timeout))?
    };

    let listener_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("liger-serve-listener".to_string())
            .spawn(move || listener_loop(&shared, &listener, &queue))?
    };

    Ok(ServerHandle {
        local_addr,
        shared,
        listener: Some(listener_thread),
        batcher: Some(batcher),
    })
}

/// Accepts connections until shutdown, then joins every handler. The
/// queue sender is dropped on exit — once all handlers are gone too, the
/// batcher sees the channel disconnect and finishes draining.
fn listener_loop(shared: &Arc<Shared>, listener: &TcpListener, queue: &SyncSender<Job>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let queue = queue.clone();
                let handler = std::thread::Builder::new()
                    .name("liger-serve-conn".to_string())
                    .spawn(move || handle_connection(&shared, stream, &queue));
                match handler {
                    Ok(h) => handlers.push(h),
                    Err(_) => continue, // thread spawn failed; drop the connection
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                handlers.retain(|h| !h.is_finished());
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serves one connection: reads frames, answers admin verbs inline, and
/// routes inference through the batch queue. After shutdown is
/// requested, frames already in flight keep being served; the
/// connection closes once it goes idle.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, queue: &SyncSender<Job>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        // Idle-wait with peek so a timeout never splits a frame: the
        // frame reader only runs once at least one byte is buffered.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let request = match read_frame(&mut stream) {
            Ok(Some(value)) => value,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Framing is broken; report and drop the connection.
                let _ = write_frame(&mut stream, &error_response(e.to_string()));
                return;
            }
            Err(_) => return,
        };
        let reply = match Request::from_json(&request) {
            Ok(req) => handle_request(shared, queue, req),
            Err(msg) => error_response(msg),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn handle_request(shared: &Arc<Shared>, queue: &SyncSender<Job>, request: Request) -> Json {
    match request {
        Request::Ping => ok_response(vec![("pong", Json::Bool(true))]),
        Request::Stats => stats_response(&shared.stats.snapshot()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            ok_response(vec![("shutting_down", Json::Bool(true))])
        }
        Request::Lint(src) => lint_source(&src),
        Request::Infer(kind, input) => {
            let prog = match input {
                InferInput::Encoded(prog) => *prog,
                InferInput::Source(src) => {
                    match extract_encoded(&src, &shared.vocab, &shared.extract) {
                        Ok(prog) => prog,
                        Err(e) => return error_response(e.to_string()),
                    }
                }
            };
            let (reply_tx, reply_rx) = std::sync::mpsc::channel();
            let job = Job { kind, prog, reply: reply_tx, queued: Instant::now() };
            shared.stats.record_enqueued();
            match queue.try_send(job) {
                Ok(()) => reply_rx
                    .recv()
                    .unwrap_or_else(|_| error_response("server stopped before replying")),
                Err(TrySendError::Full(_)) => {
                    shared.stats.record_enqueue_reverted();
                    shared.stats.record_rejected();
                    busy_response()
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.stats.record_enqueue_reverted();
                    error_response("server is shutting down")
                }
            }
        }
    }
}

/// Runs the always-terminating static analyses on a submitted source and
/// renders the diagnostics. Never touches the model or the batch queue,
/// so it is answered inline like the other admin verbs.
fn lint_source(src: &str) -> Json {
    let program = match minilang::parse(src) {
        Ok(p) => p,
        Err(e) => return error_response(format!("parse error: {e}")),
    };
    if let Err(e) = minilang::typecheck(&program) {
        return error_response(format!("type error: {e}"));
    }
    lint_response(&analysis::lint::run(&program))
}

/// Renders a stats snapshot as the STATS reply payload.
pub fn stats_response(snap: &StatsSnapshot) -> Json {
    ok_response(vec![
        ("requests", Json::num(snap.requests as usize)),
        ("batches", Json::num(snap.batches as usize)),
        ("rejected", Json::num(snap.rejected as usize)),
        ("queue_depth", Json::num(snap.queue_depth as usize)),
        ("p50_us", Json::num(snap.p50_us as usize)),
        ("p99_us", Json::num(snap.p99_us as usize)),
    ])
}

/// Coalesces queued jobs into batches and fans each batch out across the
/// worker pool. Exits when every queue sender is gone **and** the queue
/// is drained — `Receiver::recv` keeps returning buffered jobs after the
/// senders disconnect, so accepted requests always get replies.
fn batcher_loop(shared: &Arc<Shared>, jobs: &Receiver<Job>, batch_max: usize, timeout: Duration) {
    let mut workers: Vec<WorkerCtx> = Vec::new();
    let new_ctx = || WorkerCtx {
        ws: Workspace::new(),
        engine: shared.qstore.clone().map(QuantEngine::from_store),
    };
    loop {
        let first = match jobs.recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone, queue drained
        };
        shared.stats.record_dequeued();
        let mut batch = vec![first];
        let deadline = Instant::now() + timeout;
        while batch.len() < batch_max {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match jobs.recv_timeout(remaining) {
                Ok(job) => {
                    shared.stats.record_dequeued();
                    batch.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Span opens after the blocking recv: it times coalescing,
        // fan-out, and replies, not idle queue waits.
        let _span = obs::span!("serve.batch");
        let total = batch.len();

        // Embed requests take the fused batch-major path: all programs
        // in the batch share one tape, so each layer runs a packed panel
        // matmul (`Op::AffineBatch`) instead of per-program matvecs.
        // Results stay bitwise identical to the per-program encoder, so
        // the determinism contract above is unchanged. Name/Classify
        // requests keep the per-program fan-out (decode is sequential
        // per program anyway).
        let (embeds, rest): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|job| matches!(job.kind, InferKind::Embed));

        if !embeds.is_empty() {
            if workers.is_empty() {
                workers.push(new_ctx());
            }
            obs::counter!("serve.fused_embed_batch").add(embeds.len() as u64);
            let ctx = &mut workers[0];
            let progs: Vec<&EncodedProgram> = embeds.iter().map(|job| &job.prog).collect();
            let embeddings: Vec<Vec<f32>> = match &mut ctx.engine {
                Some(engine) => {
                    let model = shared.task.model();
                    progs.iter().map(|prog| engine.embed(model, prog)).collect()
                }
                None => shared.task.embed_batch_in(&mut ctx.ws, &shared.store, &progs),
            };
            for (job, embedding) in embeds.into_iter().zip(embeddings) {
                shared.stats.record_latency(InferKind::Embed, job.queued.elapsed());
                let reply = ok_response(vec![("embedding", embedding_to_json(&embedding))]);
                let _ = job.reply.send(reply); // receiver may have hung up
            }
        }

        if !rest.is_empty() {
            let mut inputs = Vec::with_capacity(rest.len());
            let mut sinks = Vec::with_capacity(rest.len());
            for job in rest {
                inputs.push((job.kind, job.prog));
                sinks.push((job.reply, job.queued, job.kind));
            }
            let results = par::par_map_ordered_with(
                &inputs,
                &mut workers,
                new_ctx,
                |ctx, _i, (kind, prog)| run_inference(shared, ctx, *kind, prog),
            );
            for ((reply, queued, kind), result) in sinks.into_iter().zip(results) {
                shared.stats.record_latency(kind, queued.elapsed());
                let _ = reply.send(result); // receiver may have hung up
            }
        }
        shared.stats.record_batch(total);
    }
}

/// One forward pass. Resets the workspace first, so the result is a pure
/// function of the program — bitwise identical to the offline memoized
/// encoder no matter which worker or batch runs it. Quantized bundles
/// dispatch to the worker's int8 engine instead (deterministic too: the
/// integer accumulation is exact).
fn run_inference(shared: &Shared, ctx: &mut WorkerCtx, kind: InferKind, prog: &EncodedProgram) -> Json {
    let _span = obs::span!("serve.infer");
    if let Some(engine) = &mut ctx.engine {
        return run_inference_quant(shared, engine, kind, prog);
    }
    let ws = &mut ctx.ws;
    match kind {
        InferKind::Embed => {
            let embedding = shared.task.embed_in(ws, &shared.store, prog);
            ok_response(vec![("embedding", embedding_to_json(&embedding))])
        }
        InferKind::Name => match shared.task.name_in(ws, &shared.store, prog) {
            Some(tokens) => ok_response(vec![(
                "name",
                Json::Arr(tokens.into_iter().map(Json::Str).collect()),
            )]),
            None => error_response("this bundle is a classifier; it cannot predict names"),
        },
        InferKind::Classify => match shared.task.classify_in(ws, &shared.store, prog) {
            Some((class, label)) => ok_response(vec![
                ("class", Json::num(class)),
                ("label", Json::str(label)),
            ]),
            None => error_response("this bundle is a namer; it cannot classify"),
        },
    }
}

/// [`run_inference`] through the dequantize-free int8 engine.
fn run_inference_quant(
    shared: &Shared,
    engine: &mut QuantEngine,
    kind: InferKind,
    prog: &EncodedProgram,
) -> Json {
    match kind {
        InferKind::Embed => {
            let embedding = engine.embed(shared.task.model(), prog);
            ok_response(vec![("embedding", embedding_to_json(&embedding))])
        }
        InferKind::Name => match &shared.task {
            LigerTask::Namer { namer, out } => {
                let tokens = out.decode_name(&engine.name(namer, prog));
                ok_response(vec![(
                    "name",
                    Json::Arr(tokens.into_iter().map(Json::Str).collect()),
                )])
            }
            LigerTask::Classifier { .. } => {
                error_response("this bundle is a classifier; it cannot predict names")
            }
        },
        InferKind::Classify => match &shared.task {
            LigerTask::Namer { .. } => {
                error_response("this bundle is a namer; it cannot classify")
            }
            LigerTask::Classifier { cls, labels } => {
                let class = engine.classify(cls, prog);
                let label =
                    labels.get(class).cloned().unwrap_or_else(|| format!("class{class}"));
                ok_response(vec![("class", Json::num(class)), ("label", Json::str(label))])
            }
        },
    }
}

/// A blocking client for the frame protocol. Supports pipelining:
/// [`Client::send`] several requests, then [`Client::recv`] the replies
/// in order.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Writes one request frame without waiting for the reply.
    ///
    /// # Errors
    ///
    /// Returns the write error.
    pub fn send(&mut self, request: &Json) -> io::Result<()> {
        write_frame(&mut self.stream, request)
    }

    /// Reads the next reply frame.
    ///
    /// # Errors
    ///
    /// Returns `UnexpectedEof` if the server closed the connection.
    pub fn recv(&mut self) -> io::Result<Json> {
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// One request/reply round trip.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error on either leg.
    pub fn call(&mut self, request: &Json) -> io::Result<Json> {
        self.send(request)?;
        self.recv()
    }
}
