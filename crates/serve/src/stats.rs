//! Lock-free server counters and a log-bucketed latency histogram.
//!
//! Handlers and the batcher record into shared atomics; the STATS verb
//! snapshots them without stopping the world. Latency percentiles come
//! from a power-of-two-bucketed histogram (bucket *i* holds samples with
//! ⌊log₂ µs⌋ = *i*), so p50/p99 are upper bounds accurate to 2× — enough
//! to see batching and queueing effects without a mutex on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 40; // 2⁴⁰ µs ≈ 12 days: effectively unbounded.

/// Shared server counters. All methods are safe to call concurrently.
#[derive(Debug)]
pub struct ServeStats {
    /// Inference requests accepted into the queue.
    requests: AtomicU64,
    /// Forward-pass batches executed.
    batches: AtomicU64,
    /// Requests rejected with BUSY (queue full).
    rejected: AtomicU64,
    /// Current queue depth (enqueued, not yet batched).
    queue_depth: AtomicU64,
    /// Latency histogram: enqueue → reply, microseconds, log₂ buckets.
    latency: [AtomicU64; BUCKETS],
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Inference requests accepted into the queue.
    pub requests: u64,
    /// Forward-pass batches executed.
    pub batches: u64,
    /// Requests rejected with BUSY.
    pub rejected: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Median request latency upper bound, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new()
    }
}

impl ServeStats {
    /// A fresh zeroed counter set.
    pub fn new() -> ServeStats {
        ServeStats {
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records a request entering the queue.
    pub fn record_enqueued(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request leaving the queue (pulled into a batch).
    pub fn record_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Undoes [`ServeStats::record_enqueued`] for a request the queue
    /// refused (recorded optimistically to keep the depth gauge from
    /// racing below zero).
    pub fn record_enqueue_reverted(&self) {
        self.requests.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a BUSY rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's enqueue→reply latency.
    pub fn record_latency(&self, elapsed: std::time::Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bucket = position of the highest set bit; 0 µs lands in bucket 0.
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let counts: Vec<u64> =
            self.latency.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            p50_us: percentile(&counts, 0.50),
            p99_us: percentile(&counts, 0.99),
        }
    }
}

/// The upper bound of the bucket where the cumulative count crosses `q`.
fn percentile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (bucket, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            // Bucket i holds [2^i, 2^(i+1)) µs; report the upper bound.
            return 1u64 << (bucket + 1);
        }
    }
    1u64 << BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_accumulate() {
        let stats = ServeStats::new();
        for _ in 0..5 {
            stats.record_enqueued();
        }
        for _ in 0..3 {
            stats.record_dequeued();
        }
        stats.record_batch();
        stats.record_rejected();
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn percentiles_bound_the_samples() {
        let stats = ServeStats::new();
        // 90 fast samples (~100 µs) and ten slow (~100 ms).
        for _ in 0..90 {
            stats.record_latency(Duration::from_micros(100));
        }
        for _ in 0..10 {
            stats.record_latency(Duration::from_millis(100));
        }
        let snap = stats.snapshot();
        assert!(snap.p50_us >= 100 && snap.p50_us <= 256, "p50={}", snap.p50_us);
        assert!(snap.p99_us >= 100_000 / 2, "p99={}", snap.p99_us);
        assert!(snap.p50_us <= snap.p99_us);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(ServeStats::new().snapshot().p50_us, 0);
    }
}
