//! Server counters on the shared `obs` metrics types, now sharded.
//!
//! The bespoke atomics this module used to hand-roll live in
//! [`obs::metrics`]: counters, queue-depth gauges, and log₂ latency
//! histograms whose p50/p99 *interpolate within the bucket*. Each server
//! instance owns its metrics — the STATS verb snapshots exactly this
//! server — and registers them in the process-wide
//! [`obs::metrics::registry`] under `serve.*` names.
//!
//! PR 7 shards the batcher, so the stats shard too: every inference
//! shard gets its own requests/batches/queue-depth/latency instruments
//! (registered as `serve.shard{i}.*`), while the top-level counters keep
//! their exact pre-shard meaning — `requests` is the total accepted
//! across all shards, `queue_depth` the sum of shard queues, `p50_us`/
//! `p99_us` the percentiles of the *merged* latency stream (recorded
//! into both the global and the shard histogram, so merging is exact,
//! not an approximation over shard percentiles). The STATS reply keeps
//! the original fields byte-compatible and appends `shed`, `conns`, and
//! the per-shard breakdown.

use obs::metrics::{registry, Counter, Gauge, Histogram, Metric};
use std::sync::Arc;

use crate::protocol::InferKind;

/// Per-shard instruments: everything the routing invariant makes
/// shard-local (DESIGN.md §2g).
#[derive(Debug)]
struct ShardStats {
    /// Requests routed to (and accepted by) this shard's queue.
    requests: Arc<Counter>,
    /// Forward-pass batches this shard executed.
    batches: Arc<Counter>,
    /// Current depth of this shard's queue.
    queue_depth: Arc<Gauge>,
    /// Enqueue → reply latency of this shard's requests, microseconds.
    latency: Arc<Histogram>,
}

/// Shared server counters. All methods are safe to call concurrently.
#[derive(Debug)]
pub struct ServeStats {
    /// Inference requests accepted into any shard queue.
    requests: Arc<Counter>,
    /// Forward-pass batches executed, all shards.
    batches: Arc<Counter>,
    /// Requests rejected with BUSY (a shard queue was full).
    rejected: Arc<Counter>,
    /// Work turned away by admission control (SHED): connections over
    /// `max_conns`, requests over the in-flight budget.
    shed: Arc<Counter>,
    /// Currently open connections.
    conns: Arc<Gauge>,
    /// Current total queue depth (enqueued, not yet batched).
    queue_depth: Arc<Gauge>,
    /// Latency histogram: enqueue → reply, microseconds, merged stream.
    latency: Arc<Histogram>,
    /// Requests per executed batch.
    batch_size: Arc<Histogram>,
    /// Per-op latency histograms, indexed embed/name/classify.
    per_op: [Arc<Histogram>; 3],
    /// One instrument set per inference shard.
    shards: Vec<ShardStats>,
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Requests routed to this shard.
    pub requests: u64,
    /// Batches this shard executed.
    pub batches: u64,
    /// This shard's queue depth at snapshot time.
    pub queue_depth: u64,
    /// Median latency of this shard's requests (interpolated), µs.
    pub p50_us: u64,
    /// 99th-percentile latency of this shard's requests, µs.
    pub p99_us: u64,
}

impl ShardSnapshot {
    /// Requests per batch on this shard (0 when no batch ran).
    pub fn batch_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Inference requests accepted into the queues.
    pub requests: u64,
    /// Forward-pass batches executed.
    pub batches: u64,
    /// Requests rejected with BUSY.
    pub rejected: u64,
    /// Connections/requests turned away by admission control.
    pub shed: u64,
    /// Open connections at snapshot time.
    pub conns: u64,
    /// Total queue depth at snapshot time.
    pub queue_depth: u64,
    /// Median request latency (interpolated), microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency (interpolated), microseconds.
    pub p99_us: u64,
    /// Per-shard breakdown, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new(1)
    }
}

fn op_index(kind: InferKind) -> usize {
    match kind {
        InferKind::Embed => 0,
        InferKind::Name => 1,
        InferKind::Classify => 2,
    }
}

impl ServeStats {
    /// A fresh zeroed counter set for `shards` inference shards,
    /// registered (replacing any previous server's) under `serve.*` in
    /// the global metrics registry.
    pub fn new(shards: usize) -> ServeStats {
        let stats = ServeStats {
            requests: Arc::new(Counter::new()),
            batches: Arc::new(Counter::new()),
            rejected: Arc::new(Counter::new()),
            shed: Arc::new(Counter::new()),
            conns: Arc::new(Gauge::new()),
            queue_depth: Arc::new(Gauge::new()),
            latency: Arc::new(Histogram::new()),
            batch_size: Arc::new(Histogram::new()),
            per_op: std::array::from_fn(|_| Arc::new(Histogram::new())),
            shards: (0..shards.max(1))
                .map(|_| ShardStats {
                    requests: Arc::new(Counter::new()),
                    batches: Arc::new(Counter::new()),
                    queue_depth: Arc::new(Gauge::new()),
                    latency: Arc::new(Histogram::new()),
                })
                .collect(),
        };
        let r = registry();
        r.register("serve.requests", Metric::Counter(Arc::clone(&stats.requests)));
        r.register("serve.batches", Metric::Counter(Arc::clone(&stats.batches)));
        r.register("serve.rejected", Metric::Counter(Arc::clone(&stats.rejected)));
        r.register("serve.shed", Metric::Counter(Arc::clone(&stats.shed)));
        r.register("serve.connections", Metric::Gauge(Arc::clone(&stats.conns)));
        r.register("serve.queue_depth", Metric::Gauge(Arc::clone(&stats.queue_depth)));
        r.register("serve.latency_us", Metric::Histogram(Arc::clone(&stats.latency)));
        r.register("serve.batch_size", Metric::Histogram(Arc::clone(&stats.batch_size)));
        for (kind, h) in ["embed", "name", "classify"].iter().zip(&stats.per_op) {
            r.register(&format!("serve.latency_us.{kind}"), Metric::Histogram(Arc::clone(h)));
        }
        for (i, shard) in stats.shards.iter().enumerate() {
            r.register(&format!("serve.shard{i}.requests"), Metric::Counter(Arc::clone(&shard.requests)));
            r.register(&format!("serve.shard{i}.batches"), Metric::Counter(Arc::clone(&shard.batches)));
            r.register(
                &format!("serve.shard{i}.queue_depth"),
                Metric::Gauge(Arc::clone(&shard.queue_depth)),
            );
            r.register(
                &format!("serve.shard{i}.latency_us"),
                Metric::Histogram(Arc::clone(&shard.latency)),
            );
        }
        stats
    }

    /// How many shards this instrument set covers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records a request entering `shard`'s queue.
    pub fn record_enqueued(&self, shard: usize) {
        self.requests.inc();
        self.queue_depth.inc();
        self.shards[shard].requests.inc();
        self.shards[shard].queue_depth.inc();
    }

    /// Records a request leaving `shard`'s queue (pulled into a batch).
    pub fn record_dequeued(&self, shard: usize) {
        self.queue_depth.dec();
        self.shards[shard].queue_depth.dec();
    }

    /// Records a lint job entering `shard`'s queue. Lint occupies queue
    /// space (the depth gauges must balance [`ServeStats::record_dequeued`])
    /// but is not an inference request, so the `requests` counters —
    /// whose pre-shard meaning the STATS reply preserves — stay put.
    pub fn record_lint_enqueued(&self, shard: usize) {
        self.queue_depth.inc();
        self.shards[shard].queue_depth.inc();
    }

    /// Undoes [`ServeStats::record_lint_enqueued`] for a lint job the
    /// queue refused.
    pub fn record_lint_reverted(&self, shard: usize) {
        self.queue_depth.dec();
        self.shards[shard].queue_depth.dec();
    }

    /// Undoes [`ServeStats::record_enqueued`] for a request the queue
    /// refused (recorded optimistically to keep the depth gauges from
    /// racing below zero).
    pub fn record_enqueue_reverted(&self, shard: usize) {
        self.requests.sub(1);
        self.queue_depth.dec();
        self.shards[shard].requests.sub(1);
        self.shards[shard].queue_depth.dec();
    }

    /// Records a BUSY rejection (a shard queue was full).
    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Records a SHED (admission control turned work away).
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    /// Records a connection opening.
    pub fn record_conn_opened(&self) {
        self.conns.inc();
    }

    /// Records a connection closing.
    pub fn record_conn_closed(&self) {
        self.conns.dec();
    }

    /// Records one executed batch of `size` coalesced requests on `shard`.
    pub fn record_batch(&self, shard: usize, size: usize) {
        self.batches.inc();
        self.batch_size.record(size as u64);
        self.shards[shard].batches.inc();
    }

    /// Records one request's enqueue→reply latency under its op and shard.
    pub fn record_latency(&self, shard: usize, kind: InferKind, elapsed: std::time::Duration) {
        self.latency.record_duration_us(elapsed);
        self.per_op[op_index(kind)].record_duration_us(elapsed);
        self.shards[shard].latency.record_duration_us(elapsed);
    }

    /// Snapshots every counter, including the per-shard breakdown.
    pub fn snapshot(&self) -> StatsSnapshot {
        let latency = self.latency.snapshot();
        StatsSnapshot {
            requests: self.requests.get(),
            batches: self.batches.get(),
            rejected: self.rejected.get(),
            shed: self.shed.get(),
            conns: self.conns.get().max(0) as u64,
            queue_depth: self.queue_depth.get().max(0) as u64,
            p50_us: latency.quantile(0.50),
            p99_us: latency.quantile(0.99),
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let lat = s.latency.snapshot();
                    ShardSnapshot {
                        requests: s.requests.get(),
                        batches: s.batches.get(),
                        queue_depth: s.queue_depth.get().max(0) as u64,
                        p50_us: lat.quantile(0.50),
                        p99_us: lat.quantile(0.99),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_accumulate() {
        let stats = ServeStats::new(1);
        for _ in 0..5 {
            stats.record_enqueued(0);
        }
        for _ in 0..3 {
            stats.record_dequeued(0);
        }
        stats.record_batch(0, 3);
        stats.record_rejected();
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.rejected, 1);
    }

    /// Percentiles interpolate inside the bucket: 90 fast samples
    /// (~100 µs, bucket [64, 128)) and ten slow (~100 ms).
    #[test]
    fn percentiles_interpolate_within_buckets() {
        let stats = ServeStats::new(1);
        for _ in 0..90 {
            stats.record_latency(0, InferKind::Embed, Duration::from_micros(100));
        }
        for _ in 0..10 {
            stats.record_latency(0, InferKind::Name, Duration::from_millis(100));
        }
        let snap = stats.snapshot();
        // Rank 50 of 100 is the 50th of 90 samples in [64, 128):
        // 64 + (50/90)·64 ≈ 100 — the old code reported 256 here.
        assert_eq!(snap.p50_us, 100);
        // Rank 99 is the 9th of 10 samples in [65536, 131072).
        assert_eq!(snap.p99_us, 124_518);
        assert!(snap.p50_us <= snap.p99_us);
    }

    /// Lint jobs ride the queues (depth gauges move and balance) but
    /// never count as inference requests.
    #[test]
    fn lint_jobs_move_queue_depth_but_not_requests() {
        let stats = ServeStats::new(2);
        stats.record_lint_enqueued(1);
        stats.record_lint_enqueued(1);
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.shards[1].queue_depth, 2);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.shards[1].requests, 0);
        // One dequeued into a batch, one refused and reverted.
        stats.record_dequeued(1);
        stats.record_lint_reverted(1);
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.requests, 0);
    }

    #[test]
    fn latency_is_recorded_per_op_too() {
        let stats = ServeStats::new(1);
        stats.record_latency(0, InferKind::Classify, Duration::from_micros(40));
        assert_eq!(stats.per_op[op_index(InferKind::Classify)].count(), 1);
        assert_eq!(stats.per_op[op_index(InferKind::Embed)].count(), 0);
        assert_eq!(stats.latency.count(), 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(ServeStats::new(1).snapshot().p50_us, 0);
    }

    /// The sharded breakdown must aggregate exactly: shard counters sum
    /// to the top-level ones (which keep their pre-shard meaning), and
    /// the global percentiles come from the merged latency stream, not
    /// from averaging shard percentiles.
    #[test]
    fn shard_breakdown_aggregates_to_the_top_level() {
        let stats = ServeStats::new(3);
        assert_eq!(stats.shard_count(), 3);
        // Shard 0: 4 fast requests in 2 batches; shard 2: 2 slow in 1.
        for _ in 0..4 {
            stats.record_enqueued(0);
            stats.record_dequeued(0);
            stats.record_latency(0, InferKind::Embed, Duration::from_micros(100));
        }
        stats.record_batch(0, 2);
        stats.record_batch(0, 2);
        for _ in 0..2 {
            stats.record_enqueued(2);
            stats.record_latency(2, InferKind::Embed, Duration::from_millis(50));
        }
        stats.record_batch(2, 2);

        let snap = stats.snapshot();
        assert_eq!(snap.requests, 6);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.shards.len(), 3);
        assert_eq!(snap.shards.iter().map(|s| s.requests).sum::<u64>(), snap.requests);
        assert_eq!(snap.shards.iter().map(|s| s.batches).sum::<u64>(), snap.batches);
        // Shard 2 never dequeued: its queue depth (and the total) show it.
        assert_eq!(snap.shards[2].queue_depth, 2);
        assert_eq!(snap.queue_depth, 2);
        assert!((snap.shards[0].batch_factor() - 2.0).abs() < 1e-9);
        assert_eq!(snap.shards[1].batches, 0);
        assert!((snap.shards[1].batch_factor() - 0.0).abs() < 1e-9);
        // Merged stream: global p50 sits in the fast bucket (4 of 6
        // samples), while shard 2's own p50 is in the slow bucket.
        assert!(snap.p50_us < 1000, "global p50 {} should be fast", snap.p50_us);
        assert!(snap.shards[2].p50_us > 10_000);
        // And the global p99 reflects the slow tail shard 0 alone lacks.
        assert!(snap.p99_us > 10_000);
        assert!(snap.shards[0].p99_us < 1000);
    }

    #[test]
    fn shed_and_conn_instruments_track() {
        let stats = ServeStats::new(2);
        stats.record_shed();
        stats.record_shed();
        stats.record_conn_opened();
        stats.record_conn_opened();
        stats.record_conn_closed();
        let snap = stats.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.conns, 1);
        assert_eq!(snap.rejected, 0, "shed is not busy");
    }

    #[test]
    fn stats_register_globally_and_newest_wins() {
        let first = ServeStats::new(2);
        first.record_enqueued(0);
        let second = ServeStats::new(2);
        second.record_enqueued(1);
        second.record_enqueued(1);
        let snap = obs::metrics::registry().snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(2));
        assert_eq!(snap.counter("serve.shard1.requests"), Some(2));
        // The first instance still snapshots its own counts.
        assert_eq!(first.snapshot().requests, 1);
    }
}
