//! Server counters on the shared `obs` metrics types.
//!
//! The bespoke atomics this module used to hand-roll now live in
//! [`obs::metrics`]: counters, a queue-depth gauge, and log₂ latency
//! histograms whose p50/p99 *interpolate within the bucket* instead of
//! reporting its upper bound (the old STATS behaviour over-reported
//! percentiles by up to 2×). Each server instance owns its metrics — the
//! STATS verb snapshots exactly this server — and registers them in the
//! process-wide [`obs::metrics::registry`] under `serve.*` names, so the
//! chrome-trace exporter and any driver-level metrics table see the live
//! server alongside encoder/symexec/datagen counters. The STATS protocol
//! reply itself is unchanged: same keys, same integer rendering.

use obs::metrics::{registry, Counter, Gauge, Histogram, Metric};
use std::sync::Arc;

use crate::protocol::InferKind;

/// Shared server counters. All methods are safe to call concurrently.
#[derive(Debug)]
pub struct ServeStats {
    /// Inference requests accepted into the queue.
    requests: Arc<Counter>,
    /// Forward-pass batches executed.
    batches: Arc<Counter>,
    /// Requests rejected with BUSY (queue full).
    rejected: Arc<Counter>,
    /// Current queue depth (enqueued, not yet batched).
    queue_depth: Arc<Gauge>,
    /// Latency histogram: enqueue → reply, microseconds.
    latency: Arc<Histogram>,
    /// Requests per executed batch.
    batch_size: Arc<Histogram>,
    /// Per-op latency histograms, indexed embed/name/classify.
    per_op: [Arc<Histogram>; 3],
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Inference requests accepted into the queue.
    pub requests: u64,
    /// Forward-pass batches executed.
    pub batches: u64,
    /// Requests rejected with BUSY.
    pub rejected: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Median request latency (interpolated), microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency (interpolated), microseconds.
    pub p99_us: u64,
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new()
    }
}

fn op_index(kind: InferKind) -> usize {
    match kind {
        InferKind::Embed => 0,
        InferKind::Name => 1,
        InferKind::Classify => 2,
    }
}

impl ServeStats {
    /// A fresh zeroed counter set, registered (replacing any previous
    /// server's) under `serve.*` in the global metrics registry.
    pub fn new() -> ServeStats {
        let stats = ServeStats {
            requests: Arc::new(Counter::new()),
            batches: Arc::new(Counter::new()),
            rejected: Arc::new(Counter::new()),
            queue_depth: Arc::new(Gauge::new()),
            latency: Arc::new(Histogram::new()),
            batch_size: Arc::new(Histogram::new()),
            per_op: std::array::from_fn(|_| Arc::new(Histogram::new())),
        };
        let r = registry();
        r.register("serve.requests", Metric::Counter(Arc::clone(&stats.requests)));
        r.register("serve.batches", Metric::Counter(Arc::clone(&stats.batches)));
        r.register("serve.rejected", Metric::Counter(Arc::clone(&stats.rejected)));
        r.register("serve.queue_depth", Metric::Gauge(Arc::clone(&stats.queue_depth)));
        r.register("serve.latency_us", Metric::Histogram(Arc::clone(&stats.latency)));
        r.register("serve.batch_size", Metric::Histogram(Arc::clone(&stats.batch_size)));
        for (kind, h) in ["embed", "name", "classify"].iter().zip(&stats.per_op) {
            r.register(&format!("serve.latency_us.{kind}"), Metric::Histogram(Arc::clone(h)));
        }
        stats
    }

    /// Records a request entering the queue.
    pub fn record_enqueued(&self) {
        self.requests.inc();
        self.queue_depth.inc();
    }

    /// Records a request leaving the queue (pulled into a batch).
    pub fn record_dequeued(&self) {
        self.queue_depth.dec();
    }

    /// Undoes [`ServeStats::record_enqueued`] for a request the queue
    /// refused (recorded optimistically to keep the depth gauge from
    /// racing below zero).
    pub fn record_enqueue_reverted(&self) {
        self.requests.sub(1);
        self.queue_depth.dec();
    }

    /// Records a BUSY rejection.
    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Records one executed batch of `size` coalesced requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.inc();
        self.batch_size.record(size as u64);
    }

    /// Records one request's enqueue→reply latency under its op.
    pub fn record_latency(&self, kind: InferKind, elapsed: std::time::Duration) {
        self.latency.record_duration_us(elapsed);
        self.per_op[op_index(kind)].record_duration_us(elapsed);
    }

    /// Snapshots every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let latency = self.latency.snapshot();
        StatsSnapshot {
            requests: self.requests.get(),
            batches: self.batches.get(),
            rejected: self.rejected.get(),
            queue_depth: self.queue_depth.get().max(0) as u64,
            p50_us: latency.quantile(0.50),
            p99_us: latency.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_accumulate() {
        let stats = ServeStats::new();
        for _ in 0..5 {
            stats.record_enqueued();
        }
        for _ in 0..3 {
            stats.record_dequeued();
        }
        stats.record_batch(3);
        stats.record_rejected();
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.rejected, 1);
    }

    /// Percentiles interpolate inside the bucket: 90 fast samples
    /// (~100 µs, bucket [64, 128)) and ten slow (~100 ms).
    #[test]
    fn percentiles_interpolate_within_buckets() {
        let stats = ServeStats::new();
        for _ in 0..90 {
            stats.record_latency(InferKind::Embed, Duration::from_micros(100));
        }
        for _ in 0..10 {
            stats.record_latency(InferKind::Name, Duration::from_millis(100));
        }
        let snap = stats.snapshot();
        // Rank 50 of 100 is the 50th of 90 samples in [64, 128):
        // 64 + (50/90)·64 ≈ 100 — the old code reported 256 here.
        assert_eq!(snap.p50_us, 100);
        // Rank 99 is the 9th of 10 samples in [65536, 131072).
        assert_eq!(snap.p99_us, 124_518);
        assert!(snap.p50_us <= snap.p99_us);
    }

    #[test]
    fn latency_is_recorded_per_op_too() {
        let stats = ServeStats::new();
        stats.record_latency(InferKind::Classify, Duration::from_micros(40));
        assert_eq!(stats.per_op[op_index(InferKind::Classify)].count(), 1);
        assert_eq!(stats.per_op[op_index(InferKind::Embed)].count(), 0);
        assert_eq!(stats.latency.count(), 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(ServeStats::new().snapshot().p50_us, 0);
    }

    #[test]
    fn stats_register_globally_and_newest_wins() {
        let first = ServeStats::new();
        first.record_enqueued();
        let second = ServeStats::new();
        second.record_enqueued();
        second.record_enqueued();
        let snap = obs::metrics::registry().snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(2));
        // The first instance still snapshots its own counts.
        assert_eq!(first.snapshot().requests, 1);
    }
}
