//! End-to-end tests for the embedding-index ops: `index`, `search`, and
//! the `similar` alias, served over real TCP loopback connections.
//!
//! Gated contracts:
//! - index-then-search returns the indexed program itself at rank 1 with
//!   cosine ≥ 0.999,
//! - search replies are **bitwise identical** across 1/2/4 shards and
//!   across a save → restart → load cycle (the determinism contract of
//!   DESIGN.md §2h),
//! - degenerate queries come back as *typed* errors (`kind` field), and
//! - a persisted index is refused by a different model (fingerprint).

use liger::{
    train_namer, EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram, LigerConfig,
    LigerNamer, ModelBundle, NameSample, OutVocab, TrainConfig, Vocab,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::json::Json;
use serve::protocol::{index_request, key_from_json, search_request, InferInput};
use serve::server::{content_hash, serve, Client, ServerConfig};
use index::{SearchMode, SearchOptions};

/// A small synthetic program whose content is parameterized by `t`.
fn prog(t: usize) -> EncodedProgram {
    EncodedProgram::from_traces(vec![EncBlended {
        steps: vec![
            EncStep {
                tree: EncTree {
                    token: t,
                    children: vec![EncTree { token: t + 1, children: vec![] }],
                },
                states: vec![
                    EncState { vars: vec![EncVar::Primitive(t + 2)] },
                    EncState { vars: vec![EncVar::Object(vec![t, t + 1])] },
                ],
            },
            EncStep {
                tree: EncTree { token: t + 1, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(t)] }],
            },
        ],
    }])
}

/// Trains a tiny namer over the synthetic programs and packs it.
fn trained_bundle(seed: u64) -> ModelBundle {
    let mut vocab = Vocab::new();
    for i in 0..12 {
        vocab.add(&format!("tok{i}"));
    }
    let mut out = OutVocab::new();
    for name in ["find", "max", "sum", "item"] {
        out.add(name);
    }
    let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
    let mut store = tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
    let samples: Vec<NameSample> = (1..4)
        .map(|t| NameSample { program: prog(t), target: vec![3 + (t - 1), liger::EOS] })
        .collect();
    train_namer(
        &namer,
        &mut store,
        &samples,
        &TrainConfig { epochs: 4, lr: 0.02, batch_size: 2 },
        &mut rng,
    );
    ModelBundle::for_namer(cfg, vocab, out, store)
}

fn encoded(p: &EncodedProgram) -> InferInput {
    InferInput::Encoded(Box::new(p.clone()))
}

#[test]
fn index_then_search_returns_self_at_rank_one() {
    let bundle = trained_bundle(21);
    let handle = serve(&bundle, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let programs: Vec<EncodedProgram> = (1..7).map(prog).collect();
    for (i, p) in programs.iter().enumerate() {
        let reply = client.call(&index_request(&encoded(p))).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
        assert_eq!(key_from_json(reply.get("key").unwrap()).unwrap(), content_hash(p));
        assert_eq!(reply.get("outcome").and_then(Json::as_str), Some("inserted"));
        assert_eq!(reply.get("entries").and_then(Json::as_usize), Some(i + 1));
    }

    // Re-indexing is dedup, not growth.
    let reply = client.call(&index_request(&encoded(&programs[0]))).unwrap();
    assert_eq!(reply.get("outcome").and_then(Json::as_str), Some("unchanged"));
    assert_eq!(reply.get("entries").and_then(Json::as_usize), Some(programs.len()));

    // Every indexed program finds itself first, essentially exactly.
    for p in &programs {
        let opts = SearchOptions { k: 3, ..SearchOptions::default() };
        let reply = client.call(&search_request(&encoded(p), &opts)).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
        let hits = reply.get("hits").and_then(Json::as_arr).unwrap();
        assert!(!hits.is_empty());
        assert_eq!(key_from_json(hits[0].get("key").unwrap()).unwrap(), content_hash(p));
        let cosine = hits[0].get("cosine").and_then(Json::as_f64).unwrap();
        assert!(cosine >= 0.999, "self-search cosine {cosine}");
        assert_eq!(reply.get("searched").and_then(Json::as_usize), Some(programs.len()));
    }

    // Hybrid mode works over the wire and still finds self first (the
    // query shares all its tokens with the stored entry).
    let opts = SearchOptions { k: 3, mode: SearchMode::Hybrid, ..SearchOptions::default() };
    let reply = client.call(&search_request(&encoded(&programs[2]), &opts)).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
    let hits = reply.get("hits").and_then(Json::as_arr).unwrap();
    assert_eq!(
        key_from_json(hits[0].get("key").unwrap()).unwrap(),
        content_hash(&programs[2])
    );

    // The `similar` alias answers with defaulted options.
    let reply = client
        .call(&Json::obj(vec![
            ("op", Json::str("similar")),
            ("program", serve::program_to_json(&programs[1])),
        ]))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");

    // The stats block reports the index.
    let stats = client.call(&Json::obj(vec![("op", Json::str("stats"))])).unwrap();
    let idx = stats.get("index").expect("stats must carry an index block");
    assert_eq!(idx.get("entries").and_then(Json::as_usize), Some(programs.len()));
    assert!(idx.get("bytes").and_then(Json::as_usize).unwrap() > 0);
    assert!(idx.get("searches").and_then(Json::as_usize).unwrap() >= programs.len());

    handle.shutdown();
    handle.join();
}

#[test]
fn degenerate_searches_are_typed_errors_never_panics() {
    let bundle = trained_bundle(21);
    let handle = serve(&bundle, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let p = prog(1);

    // Searching an empty index is a typed error, not a silent empty.
    let reply = client
        .call(&search_request(&encoded(&p), &SearchOptions::default()))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false), "reply: {reply}");
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("empty_index"));

    client.call(&index_request(&encoded(&p))).unwrap();

    let cases = [
        (SearchOptions { k: 0, ..SearchOptions::default() }, "bad_k"),
        (SearchOptions { min_sim: 2.0, ..SearchOptions::default() }, "bad_min_sim"),
        (SearchOptions { min_sim: -40.0, ..SearchOptions::default() }, "bad_min_sim"),
    ];
    for (opts, kind) in cases {
        let reply = client.call(&search_request(&encoded(&p), &opts)).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false), "reply: {reply}");
        assert_eq!(reply.get("kind").and_then(Json::as_str), Some(kind), "reply: {reply}");
        assert!(reply.get("error").and_then(Json::as_str).is_some());
    }

    // The connection survives every rejected query.
    let pong = client.call(&Json::obj(vec![("op", Json::str("ping"))])).unwrap();
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    handle.shutdown();
    handle.join();
}

#[test]
fn search_results_survive_save_restart_load_bitwise() {
    let bundle = trained_bundle(21);
    let dir = std::env::temp_dir().join(format!("lgri-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("loopback.lgri");
    let config = || ServerConfig { index_path: Some(path.clone()), ..ServerConfig::default() };

    let programs: Vec<EncodedProgram> = (1..7).map(prog).collect();
    let opts = SearchOptions { k: 4, ..SearchOptions::default() };

    // First life: index everything, record every search reply.
    let first: Vec<String> = {
        let handle = serve(&bundle, config()).unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        for p in &programs {
            let reply = client.call(&index_request(&encoded(p))).unwrap();
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
        }
        let replies = programs
            .iter()
            .map(|p| client.call(&search_request(&encoded(p), &opts)).unwrap().to_string())
            .collect();
        handle.shutdown();
        handle.join(); // persists the index
        replies
    };
    assert!(path.exists(), "join must write the index file");

    // Second life: same model, loaded index, identical replies.
    {
        let handle = serve(&bundle, config()).unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        let stats = client.call(&Json::obj(vec![("op", Json::str("stats"))])).unwrap();
        assert_eq!(
            stats.get("index").and_then(|i| i.get("entries")).and_then(Json::as_usize),
            Some(programs.len()),
            "loaded index lost entries"
        );
        for (p, expected) in programs.iter().zip(&first) {
            let reply = client.call(&search_request(&encoded(p), &opts)).unwrap();
            assert_eq!(&reply.to_string(), expected, "search diverged across restart");
        }
        handle.shutdown();
        handle.join();
    }

    // A different model refuses the persisted index outright.
    let other = trained_bundle(99);
    let err = match serve(&other, config()) {
        Err(e) => e,
        Ok(handle) => {
            handle.shutdown();
            handle.join();
            panic!("a mismatched model must refuse the persisted index");
        }
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("fingerprint_mismatch"), "err: {err}");

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    // Each case spins up three real servers; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The determinism contract: for a random corpus and random
    /// queries, the full search replies (hit keys, cosines, scores,
    /// bookkeeping) are byte-identical whether the server runs 1, 2, or
    /// 4 shards — insertion interleaving across shard threads must
    /// never leak into results.
    #[test]
    fn search_rankings_are_identical_across_shard_counts(
        token_sets in proptest::collection::vec(
            proptest::collection::vec(0usize..12, 1..=5),
            2..=8,
        ),
        query_tokens in proptest::collection::vec(0usize..12, 1..=5),
        hybrid in proptest::sample::select(vec![false, true]),
    ) {
        fn prog_from(tokens: &[usize]) -> EncodedProgram {
            EncodedProgram::from_traces(vec![EncBlended {
                steps: tokens
                    .iter()
                    .map(|&t| EncStep {
                        tree: EncTree { token: t, children: vec![] },
                        states: vec![EncState { vars: vec![EncVar::Primitive(t)] }],
                    })
                    .collect(),
            }])
        }
        let bundle = trained_bundle(21);
        let corpus: Vec<EncodedProgram> = token_sets.iter().map(|t| prog_from(t)).collect();
        let query = prog_from(&query_tokens);
        let opts = SearchOptions {
            k: 5,
            mode: if hybrid { SearchMode::Hybrid } else { SearchMode::Cosine },
            ..SearchOptions::default()
        };

        let mut views: Vec<String> = Vec::new();
        for shards in [1usize, 2, 4] {
            let handle = serve(
                &bundle,
                ServerConfig { shards, batch_max: 4, batch_timeout_ms: 2, ..ServerConfig::default() },
            )
            .unwrap();
            let mut client = Client::connect(handle.local_addr()).unwrap();
            // Pipeline every insert so multi-shard runs actually
            // interleave their index writes.
            for p in &corpus {
                client.send(&index_request(&encoded(p))).unwrap();
            }
            for _ in &corpus {
                let reply = client.recv().unwrap();
                prop_assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
            }
            let reply = client.call(&search_request(&encoded(&query), &opts)).unwrap();
            prop_assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
            views.push(reply.to_string());
            handle.shutdown();
            handle.join();
        }
        prop_assert_eq!(&views[0], &views[1], "1 vs 2 shards diverged");
        prop_assert_eq!(&views[0], &views[2], "1 vs 4 shards diverged");
    }
}
