//! End-to-end tests for `"canon": true` — the canonical-key tier of the
//! serving stack, over real TCP loopback connections.
//!
//! Gated contracts:
//! - syntactic variants of one routine collapse to one index key: the
//!   second variant's `index` op reports `unchanged` on the *same* key,
//! - `similar` surfaces the canonical-exact tier (`exact` = the stored
//!   key every variant collapses onto; `null` without canon),
//! - canon embeddings of variants are bitwise identical (one memo entry
//!   serves them all, reported by the stats `canon` block), and
//! - frontend failures surface as error replies, not hangs.

use liger::{LigerConfig, LigerNamer, ModelBundle, OutVocab};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::json::Json;
use serve::protocol::{index_request, infer_request, key_from_json, search_request, InferInput, InferKind};
use serve::server::{serve, Client, ServerConfig};
use index::SearchOptions;

/// A `for`-loop summation routine.
const FOR_SUM: &str = "fn sumTo(n: int) -> int {
    let s: int = 0;
    for (let i: int = 0; i < n; i += 1) { s += i; }
    return s;
}";

/// The same routine as a `while` loop with different names — a semantic
/// clone the canonicalizer must collapse onto `FOR_SUM`.
const WHILE_SUM: &str = "fn total(limit: int) -> int {
    let acc: int = 0;
    let j: int = 0;
    while (j < limit) { acc += j; j += 1; }
    return acc;
}";

/// A third variant: `for` loop again, fresh names.
const RENAMED_SUM: &str = "fn accumulate(bound: int) -> int {
    let running: int = 0;
    for (let k: int = 0; k < bound; k += 1) { running += k; }
    return running;
}";

/// A lookalike with different semantics (product, not sum) — must NOT
/// collapse.
const FOR_PRODUCT: &str = "fn prodTo(n: int) -> int {
    let s: int = 1;
    for (let i: int = 1; i < n; i += 1) { s *= i; }
    return s;
}";

/// An untrained (but deterministic) namer bundle whose vocabulary covers
/// the test corpus: identity and determinism contracts do not need
/// trained weights.
fn bundle() -> ModelBundle {
    let opts = liger::ExtractOptions::default();
    let vocab =
        liger::vocab_from_sources(&[FOR_SUM, WHILE_SUM, RENAMED_SUM, FOR_PRODUCT], &opts)
            .expect("corpus traces");
    let mut out = OutVocab::new();
    for t in ["sum", "to", "prod"] {
        out.add(t);
    }
    let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
    let mut store = tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(17);
    let _namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
    ModelBundle::for_namer(cfg, vocab, out, store)
}

fn canon(src: &str) -> InferInput {
    InferInput::CanonSource(src.to_string())
}

#[test]
fn canon_variants_collapse_to_one_index_entry() {
    let handle = serve(&bundle(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // First variant inserts.
    let reply = client.call(&index_request(&canon(FOR_SUM))).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
    assert_eq!(reply.get("outcome").and_then(Json::as_str), Some("inserted"));
    let key = key_from_json(reply.get("key").unwrap()).unwrap();

    // The while-variant is the same canonical program: same key, dedup.
    let reply = client.call(&index_request(&canon(WHILE_SUM))).unwrap();
    assert_eq!(reply.get("outcome").and_then(Json::as_str), Some("unchanged"), "reply: {reply}");
    assert_eq!(key_from_json(reply.get("key").unwrap()).unwrap(), key);
    assert_eq!(reply.get("entries").and_then(Json::as_usize), Some(1));

    // The lookalike mutant does not collapse.
    let reply = client.call(&index_request(&canon(FOR_PRODUCT))).unwrap();
    assert_eq!(reply.get("outcome").and_then(Json::as_str), Some("inserted"), "reply: {reply}");
    assert_ne!(key_from_json(reply.get("key").unwrap()).unwrap(), key);
    assert_eq!(reply.get("entries").and_then(Json::as_usize), Some(2));

    // `similar` with a third syntactic variant: the canonical-exact tier
    // finds the stored clone.
    let opts = SearchOptions { k: 2, ..SearchOptions::default() };
    let reply = client.call(&search_request(&canon(RENAMED_SUM), &opts)).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
    assert_eq!(key_from_json(reply.get("exact").unwrap()).unwrap(), key);
    let hits = reply.get("hits").and_then(Json::as_arr).unwrap();
    assert_eq!(key_from_json(hits[0].get("key").unwrap()).unwrap(), key);
    let cosine = hits[0].get("cosine").and_then(Json::as_f64).unwrap();
    assert!(cosine >= 0.999, "canonical self-search cosine {cosine}");

    // Without canon, the raw while-variant encodes differently: no
    // exact-tier hit.
    let reply = client
        .call(&search_request(&InferInput::Source(WHILE_SUM.to_string()), &opts))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
    assert_eq!(reply.get("exact"), Some(&Json::Null), "reply: {reply}");

    // The stats `canon` block saw 2 distinct forms and ≥ 2 collapses
    // (WHILE_SUM and RENAMED_SUM were memo hits).
    let stats = client.call(&Json::obj(vec![("op", Json::str("stats"))])).unwrap();
    let canon_block = stats.get("canon").expect("stats must carry a canon block");
    assert_eq!(canon_block.get("entries").and_then(Json::as_usize), Some(2));
    assert!(canon_block.get("hits").and_then(Json::as_usize).unwrap() >= 2);

    handle.shutdown();
    handle.join();
}

#[test]
fn canon_embeddings_of_variants_are_bitwise_identical() {
    let handle = serve(&bundle(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let embed = |client: &mut Client, input: &InferInput| {
        let reply = client.call(&infer_request(InferKind::Embed, input)).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
        serve::embedding_from_json(reply.get("embedding").unwrap()).unwrap()
    };
    let bits = |v: Vec<f32>| v.into_iter().map(f32::to_bits).collect::<Vec<u32>>();

    let a = bits(embed(&mut client, &canon(FOR_SUM)));
    let b = bits(embed(&mut client, &canon(WHILE_SUM)));
    let c = bits(embed(&mut client, &canon(RENAMED_SUM)));
    assert_eq!(a, b, "canon embeddings of variants must be bitwise identical");
    assert_eq!(a, c);

    let p = bits(embed(&mut client, &canon(FOR_PRODUCT)));
    assert_ne!(a, p, "the lookalike mutant must not collapse");

    // A broken source through the canon path errors cleanly.
    let reply = client
        .call(&infer_request(InferKind::Embed, &canon("fn broken(")))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false), "reply: {reply}");
    assert!(reply.get("error").and_then(Json::as_str).is_some());

    // The connection survives and the memo holds one entry per
    // canonical form.
    let stats = client.call(&Json::obj(vec![("op", Json::str("stats"))])).unwrap();
    let canon_block = stats.get("canon").expect("stats must carry a canon block");
    assert_eq!(canon_block.get("entries").and_then(Json::as_usize), Some(2));

    handle.shutdown();
    handle.join();
}
