//! Property tests for the serve layer.
//!
//! Two contracts are gated here:
//!
//! 1. **Framing codec under adversarial I/O.** The incremental
//!    [`FrameReader`] must decode any frame sequence no matter how the
//!    transport slices it: byte-by-byte partial reads, many frames
//!    coalesced into one read, oversized length headers (rejected from
//!    the header alone, before any payload buffers), and mid-frame
//!    disconnects (clean `Ok(0)` EOF with the partial frame detectable).
//! 2. **Sharded serving determinism.** For random programs and random
//!    shard counts, embeddings served through the event-loop front end
//!    are bitwise identical to the offline memoized encoder
//!    (`EncodeMode::Memoized` semantics: `Workspace::reset` + span
//!    replay) — routing and batch composition never leak into results.

use proptest::prelude::*;
use serve::json::Json;
use serve::protocol::{
    embedding_from_json, infer_request, write_frame_into, FrameReader, InferInput, InferKind,
    MAX_FRAME,
};
use serve::server::{serve, Client, ServerConfig};
use std::io::Read;
use std::sync::OnceLock;

use liger::{
    train_namer, EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram, LigerConfig,
    LigerNamer, ModelBundle, NameSample, OutVocab, TrainConfig, Vocab, Workspace,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Framing codec under adversarial splits
// ---------------------------------------------------------------------------

/// A reader that returns the stream in caller-chosen slices, emulating a
/// peer whose writes arrive arbitrarily fragmented or coalesced.
struct ChunkedReader {
    data: Vec<u8>,
    /// Exclusive end of each read's slice, ascending; the final read
    /// (past the last cut) drains the remainder, then EOF.
    cuts: Vec<usize>,
    pos: usize,
    next_cut: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, mut cuts: Vec<usize>) -> ChunkedReader {
        let len = data.len();
        for c in &mut cuts {
            *c = (*c).min(len);
        }
        cuts.sort_unstable();
        ChunkedReader { data, cuts, pos: 0, next_cut: 0 }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // Skip cuts at or before the current position (zero-length
        // slices would read as spurious EOFs).
        while self.next_cut < self.cuts.len() && self.cuts[self.next_cut] <= self.pos {
            self.next_cut += 1;
        }
        let end = if self.next_cut < self.cuts.len() {
            self.cuts[self.next_cut]
        } else {
            self.data.len()
        };
        let n = (end - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A frame payload whose content is parameterized by the drawn values.
fn frame_value(tag: usize, text_len: usize) -> Json {
    Json::obj(vec![
        ("tag", Json::num(tag)),
        ("text", Json::Str("x".repeat(text_len))),
        ("nested", Json::Arr((0..tag % 5).map(Json::num).collect())),
    ])
}

/// Decodes every frame available from `reader`, returning the frames and
/// whether EOF arrived mid-frame.
fn decode_all(reader: &mut FrameReader, from: &mut impl Read) -> (Vec<Json>, bool) {
    let mut frames = Vec::new();
    loop {
        match reader.next_frame().expect("valid stream must decode") {
            Some(frame) => frames.push(frame),
            None => {
                if reader.fill_from(from).expect("chunked reads never fail") == 0 {
                    return (frames, reader.has_buffered());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn framing_survives_adversarial_chunk_splits(
        tags in proptest::collection::vec(0usize..1000, 1..=8),
        text_lens in proptest::collection::vec(0usize..200, 1..=8),
        cuts in proptest::collection::vec(0usize..4096, 0..=64),
    ) {
        // Encode a run of frames back-to-back into one byte stream.
        let frames: Vec<Json> = tags
            .iter()
            .zip(&text_lens)
            .map(|(&tag, &len)| frame_value(tag, len))
            .collect();
        let mut stream = Vec::new();
        let mut scratch = String::new();
        for frame in &frames {
            write_frame_into(&mut stream, &mut scratch, frame);
        }

        // However the transport slices that stream — byte-by-byte, all
        // at once, or anything between — the reader yields exactly the
        // original frames, in order, with nothing left over.
        let mut reader = FrameReader::new();
        let mut from = ChunkedReader::new(stream, cuts);
        let (decoded, mid_frame) = decode_all(&mut reader, &mut from);
        prop_assert_eq!(decoded.len(), frames.len());
        for (got, want) in decoded.iter().zip(&frames) {
            prop_assert_eq!(got.to_string(), want.to_string());
        }
        prop_assert!(!mid_frame, "fully-consumed stream left buffered bytes");
    }

    #[test]
    fn oversized_length_header_is_rejected_from_the_header_alone(
        over in 1usize..=1 << 20,
        junk_len in 0usize..64,
    ) {
        // Only the length line arrives — no payload. The reader must
        // refuse it outright instead of waiting to buffer `len` bytes.
        let len = MAX_FRAME + over;
        let header = format!("{len}\n");
        let mut reader = FrameReader::new();
        let mut from = ChunkedReader::new(header.into_bytes(), vec![]);
        prop_assert!(reader.fill_from(&mut from).unwrap() > 0);
        let err = reader.next_frame().expect_err("oversized frame must be rejected");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Garbage headers (no parseable length) are rejected too.
        let junk = format!("{}x\n", "9".repeat(junk_len % 8 + 1));
        let mut reader = FrameReader::new();
        let mut from = ChunkedReader::new(junk.into_bytes(), vec![]);
        prop_assert!(reader.fill_from(&mut from).unwrap() > 0);
        prop_assert!(reader.next_frame().is_err(), "non-numeric header must be rejected");
    }

    #[test]
    fn mid_frame_disconnect_is_a_clean_partial_eof(
        tags in proptest::collection::vec(0usize..1000, 1..=5),
        cut_seed in 0usize..usize::MAX,
        cuts in proptest::collection::vec(0usize..2048, 0..=16),
    ) {
        let frames: Vec<Json> = tags.iter().map(|&t| frame_value(t, t % 40)).collect();
        let mut stream = Vec::new();
        let mut scratch = String::new();
        let mut last_start = 0;
        for frame in &frames {
            last_start = stream.len();
            write_frame_into(&mut stream, &mut scratch, frame);
        }

        // Truncate strictly inside the final frame: at least one of its
        // bytes arrives, but not all of them.
        let span = stream.len() - last_start;
        prop_assume!(span >= 2);
        let cut_at = last_start + 1 + cut_seed % (span - 1);
        stream.truncate(cut_at);

        let mut reader = FrameReader::new();
        let mut from = ChunkedReader::new(stream, cuts);
        let (decoded, mid_frame) = decode_all(&mut reader, &mut from);
        // Every complete frame decoded; the torn one is detectable.
        prop_assert_eq!(decoded.len(), frames.len() - 1);
        prop_assert!(mid_frame, "mid-frame EOF must leave the partial frame visible");
    }
}

// ---------------------------------------------------------------------------
// Sharded serving determinism
// ---------------------------------------------------------------------------

/// A synthetic program drawn from the 12-token vocabulary below.
fn prog_from(tokens: &[usize]) -> EncodedProgram {
    let tok = |i: usize| tokens[i % tokens.len()] % 12;
    EncodedProgram::from_traces(vec![EncBlended {
        steps: (0..1 + tokens.len() % 3)
            .map(|s| EncStep {
                tree: EncTree {
                    token: tok(s),
                    children: vec![EncTree { token: tok(s + 1), children: vec![] }],
                },
                states: vec![
                    EncState { vars: vec![EncVar::Primitive(tok(s + 2))] },
                    EncState { vars: vec![EncVar::Object(vec![tok(s), tok(s + 3)])] },
                ],
            })
            .collect(),
    }])
}

/// Trains the shared tiny bundle once for every case.
fn bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.add(&format!("tok{i}"));
        }
        let mut out = OutVocab::new();
        for name in ["find", "max", "sum", "item"] {
            out.add(name);
        }
        let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
        let mut store = tensor::ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
        let samples: Vec<NameSample> = (1..4)
            .map(|t| NameSample {
                program: prog_from(&[t, t + 1, t + 2]),
                target: vec![3 + (t - 1), liger::EOS],
            })
            .collect();
        train_namer(
            &namer,
            &mut store,
            &samples,
            &TrainConfig { epochs: 4, lr: 0.02, batch_size: 2 },
            &mut rng,
        );
        ModelBundle::for_namer(cfg, vocab, out, store)
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    // Each case spins up a real server, so keep the count modest; the
    // chunk-split properties above carry the high-volume fuzzing.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn sharded_serving_is_bitwise_identical_to_offline_memoized(
        token_sets in proptest::collection::vec(
            proptest::collection::vec(0usize..12, 1..=6),
            1..=10,
        ),
        shards in proptest::sample::select(vec![1usize, 2, 4]),
    ) {
        let bundle = bundle();
        let programs: Vec<EncodedProgram> =
            token_sets.iter().map(|t| prog_from(t)).collect();

        // Offline reference: the memoized encoder on a reset workspace.
        let (task, store) = bundle.instantiate().unwrap();
        let mut ws = Workspace::new();
        let reference: Vec<Vec<u32>> = programs
            .iter()
            .map(|p| bits(&task.embed_in(&mut ws, &store, p)))
            .collect();

        let handle = serve(
            bundle,
            ServerConfig { shards, batch_max: 4, batch_timeout_ms: 2, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        for p in &programs {
            client
                .send(&infer_request(InferKind::Embed, &InferInput::Encoded(Box::new(p.clone()))))
                .unwrap();
        }
        for (i, expected) in reference.iter().enumerate() {
            let reply = client.recv().unwrap();
            prop_assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
            let served = bits(&embedding_from_json(reply.get("embedding").unwrap()).unwrap());
            prop_assert_eq!(&served, expected, "shards={} program {} diverged", shards, i);
        }
        handle.shutdown();
        handle.join();
    }
}
