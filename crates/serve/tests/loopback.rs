//! End-to-end loopback tests: a real TCP server on an ephemeral port,
//! concurrent pipelining clients, and the two contracts the service
//! promises — served embeddings are **bitwise identical** to the offline
//! memoized path, and graceful shutdown drains every accepted request.

use liger::{
    train_namer, EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram, LigerConfig,
    LigerNamer, LigerTask, ModelBundle, NameSample, OutVocab, TrainConfig, Vocab, Workspace,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::json::Json;
use serve::protocol::{embedding_from_json, infer_request, lint_request, InferInput, InferKind};
use serve::server::{serve, Client, ServerConfig};

/// A small synthetic program whose content is parameterized by `t`.
fn prog(t: usize) -> EncodedProgram {
    EncodedProgram::from_traces(vec![EncBlended {
        steps: vec![
            EncStep {
                tree: EncTree {
                    token: t,
                    children: vec![EncTree { token: t + 1, children: vec![] }],
                },
                states: vec![
                    EncState { vars: vec![EncVar::Primitive(t + 2)] },
                    EncState { vars: vec![EncVar::Object(vec![t, t + 1])] },
                ],
            },
            EncStep {
                tree: EncTree { token: t + 1, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(t)] }],
            },
        ],
    }])
}

/// Trains a tiny namer over the synthetic programs and packs it.
fn trained_bundle() -> ModelBundle {
    let mut vocab = Vocab::new();
    for i in 0..12 {
        vocab.add(&format!("tok{i}"));
    }
    let mut out = OutVocab::new();
    for name in ["find", "max", "sum", "item"] {
        out.add(name);
    }
    let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
    let mut store = tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(21);
    let namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
    let samples: Vec<NameSample> = (1..4)
        .map(|t| NameSample { program: prog(t), target: vec![3 + (t - 1), liger::EOS] })
        .collect();
    train_namer(
        &namer,
        &mut store,
        &samples,
        &TrainConfig { epochs: 4, lr: 0.02, batch_size: 2 },
        &mut rng,
    );
    ModelBundle::for_namer(cfg, vocab, out, store)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn concurrent_clients_get_bitwise_identical_embeddings_and_batching_kicks_in() {
    let bundle = trained_bundle();

    // Offline reference: the memoized encoder on a reset workspace.
    let (task, store) = bundle.instantiate().unwrap();
    let mut ws = Workspace::new();
    let programs: Vec<EncodedProgram> = (1..6).map(prog).collect();
    let reference: Vec<Vec<u32>> = programs
        .iter()
        .map(|p| bits(&task.embed_in(&mut ws, &store, p)))
        .collect();
    let LigerTask::Namer { .. } = &task else { panic!("expected a namer bundle") };

    let handle = serve(
        &bundle,
        ServerConfig { batch_max: 8, batch_timeout_ms: 20, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = handle.local_addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 12;
    let served: Vec<Vec<Vec<u32>>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let programs = &programs;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Pipeline every request before reading any reply so
                    // the queue actually fills and batches form.
                    for i in 0..PER_CLIENT {
                        let p = &programs[(c + i) % programs.len()];
                        client
                            .send(&infer_request(
                                InferKind::Embed,
                                &InferInput::Encoded(Box::new(p.clone())),
                            ))
                            .unwrap();
                    }
                    (0..PER_CLIENT)
                        .map(|_| {
                            let reply = client.recv().unwrap();
                            assert_eq!(
                                reply.get("ok").and_then(Json::as_bool),
                                Some(true),
                                "reply: {}",
                                reply
                            );
                            bits(&embedding_from_json(reply.get("embedding").unwrap()).unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    for (c, embeddings) in served.iter().enumerate() {
        for (i, embedding) in embeddings.iter().enumerate() {
            let expected = &reference[(c + i) % programs.len()];
            assert_eq!(embedding, expected, "client {c} request {i} diverged");
        }
    }

    // Under concurrent load the batcher must have coalesced: strictly
    // fewer batches than requests, and nothing rejected or stuck.
    let mut admin = Client::connect(addr).unwrap();
    let stats = admin.call(&Json::obj(vec![("op", Json::str("stats"))])).unwrap();
    let requests = stats.get("requests").and_then(Json::as_usize).unwrap();
    let batches = stats.get("batches").and_then(Json::as_usize).unwrap();
    assert_eq!(requests, CLIENTS * PER_CLIENT);
    assert!(batches >= 1, "at least one batch must have run");
    assert!(batches < requests, "batching never coalesced: {batches} batches for {requests}");
    assert_eq!(stats.get("queue_depth").and_then(Json::as_usize), Some(0));

    // Name prediction is served too, and agrees with the offline task.
    let mut ws2 = Workspace::new();
    let offline_name = task.name_in(&mut ws2, &store, &programs[0]).unwrap();
    let reply = admin
        .call(&infer_request(InferKind::Name, &InferInput::Encoded(Box::new(programs[0].clone()))))
        .unwrap();
    let served_name: Vec<String> = reply
        .get("name")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|t| t.as_str().unwrap().to_string())
        .collect();
    assert_eq!(served_name, offline_name);

    // Classify on a namer bundle is a clean error, not a crash.
    let reply = admin
        .call(&infer_request(InferKind::Classify, &InferInput::Encoded(Box::new(programs[0].clone()))))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));

    handle.shutdown();
    handle.join();
}

#[test]
fn quantized_bundle_is_served_through_the_int8_engine() {
    let bundle = trained_bundle();
    let qbundle = ModelBundle::from_bytes(&bundle.to_quantized_bytes()).unwrap();
    assert!(qbundle.qstore.is_some(), "qparams bundle must carry its int8 store");

    // Offline references: the f32 embedding (for closeness) and the
    // int8 engine's own outputs (for exact agreement with serving).
    let (task, store) = bundle.instantiate().unwrap();
    let mut ws = Workspace::new();
    let program = prog(2);
    let f32_embedding = task.embed_in(&mut ws, &store, &program);
    let mut offline = liger::Inferencer::from_bundle(&qbundle).unwrap();
    assert!(offline.engine.is_some());
    let engine_embedding = offline.embed(&program);
    let engine_name = offline.name(&program).unwrap();

    let handle = serve(&qbundle, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let reply = client
        .call(&infer_request(InferKind::Embed, &InferInput::Encoded(Box::new(program.clone()))))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
    let served = embedding_from_json(reply.get("embedding").unwrap()).unwrap();
    // Exactly the int8 engine's output (integer accumulation is exact)…
    assert_eq!(bits(&served), bits(&engine_embedding));
    // …and close to the f32 reference per the quantization error model.
    assert!(
        liger::cosine(&served, &f32_embedding) >= 0.99,
        "served int8 embedding drifted from f32: cosine {}",
        liger::cosine(&served, &f32_embedding)
    );

    let reply = client
        .call(&infer_request(InferKind::Name, &InferInput::Encoded(Box::new(program.clone()))))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let served_name: Vec<String> = reply
        .get("name")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|t| t.as_str().unwrap().to_string())
        .collect();
    assert_eq!(served_name, engine_name);

    handle.shutdown();
    handle.join();
}

#[test]
fn lint_op_is_served_with_structured_diagnostics() {
    let bundle = trained_bundle();
    let handle = serve(&bundle, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // A clean program: ok, clean, no diagnostics.
    let reply = client.call(&lint_request("fn f(x: int) -> int { return x + 1; }")).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
    assert_eq!(reply.get("clean").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("fatal").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("diagnostics").and_then(Json::as_arr).map(<[_]>::len), Some(0));

    // A provably crashing program: structured fatal diagnostics with spans.
    let reply = client
        .call(&lint_request("fn f(x: int) -> int {\n    return x / 0;\n}"))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("fatal").and_then(Json::as_bool), Some(true));
    let diags = reply.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert!(diags
        .iter()
        .any(|d| d.get("kind").and_then(Json::as_str) == Some("division-by-zero")
            && d.get("severity").and_then(Json::as_str) == Some("fatal")
            && d.get("line").and_then(Json::as_usize) == Some(2)));

    // Malformed sources get a clean protocol error, not a crash.
    let reply = client.call(&lint_request("fn f( {")).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert!(reply.get("error").and_then(Json::as_str).unwrap().contains("parse error"));

    handle.shutdown();
    handle.join();
}

#[test]
fn sharded_serving_is_bitwise_identical_to_single_shard_and_offline() {
    let bundle = trained_bundle();

    // Offline reference: the memoized encoder on a reset workspace.
    let (task, store) = bundle.instantiate().unwrap();
    let mut ws = Workspace::new();
    let programs: Vec<EncodedProgram> = (1..9).map(prog).collect();
    let reference: Vec<Vec<u32>> = programs
        .iter()
        .map(|p| bits(&task.embed_in(&mut ws, &store, p)))
        .collect();

    // Serve the same programs under 1 shard and 4 shards; all three
    // views must agree bitwise (the determinism contract: results are a
    // pure function of the program, independent of routing and batch
    // composition).
    for shards in [1usize, 4] {
        let handle = serve(
            &bundle,
            ServerConfig {
                shards,
                batch_max: 4,
                batch_timeout_ms: 5,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        for p in &programs {
            client
                .send(&infer_request(InferKind::Embed, &InferInput::Encoded(Box::new(p.clone()))))
                .unwrap();
        }
        for (i, expected) in reference.iter().enumerate() {
            let reply = client.recv().unwrap();
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
            let served = bits(&embedding_from_json(reply.get("embedding").unwrap()).unwrap());
            assert_eq!(&served, expected, "shards={shards} program {i} diverged from offline");
        }

        // The per-shard STATS breakdown must aggregate exactly to the
        // (byte-compatible) top-level fields.
        let stats = client.call(&Json::obj(vec![("op", Json::str("stats"))])).unwrap();
        assert_eq!(stats.get("requests").and_then(Json::as_usize), Some(programs.len()));
        let breakdown = stats.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(breakdown.len(), shards);
        let per_shard_requests: usize = breakdown
            .iter()
            .map(|s| s.get("requests").and_then(Json::as_usize).unwrap())
            .sum();
        let per_shard_batches: usize = breakdown
            .iter()
            .map(|s| s.get("batches").and_then(Json::as_usize).unwrap())
            .sum();
        assert_eq!(per_shard_requests, programs.len());
        assert_eq!(Some(per_shard_batches), stats.get("batches").and_then(Json::as_usize));
        if shards == 4 {
            // The synthetic programs differ in content, so the hash
            // router must actually spread them (no shard hogs all).
            let busiest = breakdown
                .iter()
                .map(|s| s.get("requests").and_then(Json::as_usize).unwrap())
                .max()
                .unwrap();
            assert!(busiest < programs.len(), "hash routing sent every program to one shard");
        }

        handle.shutdown();
        handle.join();
    }
}

#[test]
fn over_capacity_connections_get_a_shed_frame_and_close() {
    let bundle = trained_bundle();
    let handle = serve(
        &bundle,
        ServerConfig { max_conns: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Two connections fill the admission budget (ping proves each is
    // fully accepted before the next connects)…
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    let ping = Json::obj(vec![("op", Json::str("ping"))]);
    assert_eq!(a.call(&ping).unwrap().get("pong").and_then(Json::as_bool), Some(true));
    assert_eq!(b.call(&ping).unwrap().get("pong").and_then(Json::as_bool), Some(true));

    // …so the third is shed at the door: one SHED frame, then close —
    // distinct from the queue-full BUSY reply.
    let mut c = Client::connect(addr).unwrap();
    let reply = c.recv().unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false), "reply: {reply}");
    assert_eq!(reply.get("shed").and_then(Json::as_bool), Some(true));
    assert!(reply.get("busy").is_none());
    assert!(c.recv().is_err(), "shed connection must be closed");

    // Closing an accepted connection frees its admission slot.
    drop(a);
    let stats_op = Json::obj(vec![("op", Json::str("stats"))]);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = b.call(&stats_op).unwrap();
        if stats.get("conns").and_then(Json::as_usize) == Some(1) {
            assert!(stats.get("shed").and_then(Json::as_usize).unwrap() >= 1);
            break;
        }
        assert!(std::time::Instant::now() < deadline, "closed connection never reaped");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut d = Client::connect(addr).unwrap();
    assert_eq!(d.call(&ping).unwrap().get("pong").and_then(Json::as_bool), Some(true));

    handle.shutdown();
    handle.join();
}

#[test]
fn multi_shard_shutdown_drains_every_shard() {
    let bundle = trained_bundle();
    let handle = serve(
        &bundle,
        ServerConfig {
            shards: 4,
            batch_max: 2,
            batch_timeout_ms: 10,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Two pipelining connections spray work across all four shards,
    // then shutdown lands before any reply is read.
    const PER_CONN: usize = 8;
    let mut workers: Vec<Client> = (0..2).map(|_| Client::connect(addr).unwrap()).collect();
    for (c, worker) in workers.iter_mut().enumerate() {
        for t in 0..PER_CONN {
            worker
                .send(&infer_request(
                    InferKind::Embed,
                    &InferInput::Encoded(Box::new(prog(1 + (c * PER_CONN + t) % 8))),
                ))
                .unwrap();
        }
    }
    let mut admin = Client::connect(addr).unwrap();
    let ack = admin.call(&Json::obj(vec![("op", Json::str("shutdown"))])).unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));

    // Every accepted request on every connection still gets its reply,
    // in order, from whichever shard it hashed to.
    for (c, worker) in workers.iter_mut().enumerate() {
        for i in 0..PER_CONN {
            let reply = worker.recv().unwrap_or_else(|e| panic!("conn {c} reply {i} lost: {e}"));
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(true),
                "conn {c} reply {i}: {reply}"
            );
            assert!(reply.get("embedding").is_some());
        }
    }
    drop(workers);
    drop(admin);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(std::time::Instant::now() < deadline, "server failed to stop");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let stats = handle.stats();
    assert_eq!(stats.requests as usize, 2 * PER_CONN);
    assert_eq!(stats.queue_depth, 0, "shutdown dropped queued work");
    assert_eq!(stats.shards.len(), 4);
    let drained: u64 = stats.shards.iter().map(|s| s.requests).sum();
    assert_eq!(drained as usize, 2 * PER_CONN);
    handle.join();
}

#[test]
fn drain_deadline_force_closes_stalled_peers() {
    let bundle = trained_bundle();
    let handle = serve(
        &bundle,
        ServerConfig { drain_deadline_ms: 300, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = handle.local_addr();

    // A stalled peer: pipelines requests and never reads a reply. Each
    // unknown-op request echoes its ~64 KiB op name back in the error
    // reply, so the owed replies (~64 MiB) far exceed what the kernel
    // socket buffers can absorb (tcp_wmem/tcp_rmem caps) — the
    // connection owes undeliverable replies indefinitely, which without
    // a drain deadline would hang `join` forever.
    let mut stalled = Client::connect(addr).unwrap();
    let unknown = Json::obj(vec![("op", Json::str("x".repeat(64 * 1024)))]);
    for _ in 0..1024 {
        stalled.send(&unknown).unwrap();
    }

    let mut admin = Client::connect(addr).unwrap();
    let ack = admin.call(&Json::obj(vec![("op", Json::str("shutdown"))])).unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    drop(admin);

    // The server must still come down: past the deadline the stalled
    // connection is force-closed and every thread exits.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "drain deadline never fired; a stalled peer hung shutdown"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.join();
    drop(stalled);
}

#[test]
fn graceful_shutdown_drains_pipelined_in_flight_requests() {
    let bundle = trained_bundle();
    let handle = serve(
        &bundle,
        ServerConfig { batch_max: 4, batch_timeout_ms: 10, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Pipeline a burst of work, then trigger shutdown from a second
    // connection *before* reading any replies.
    const IN_FLIGHT: usize = 6;
    let mut worker = Client::connect(addr).unwrap();
    for t in 0..IN_FLIGHT {
        worker
            .send(&infer_request(
                InferKind::Embed,
                &InferInput::Encoded(Box::new(prog(1 + t % 4))),
            ))
            .unwrap();
    }

    let mut admin = Client::connect(addr).unwrap();
    let ack = admin.call(&Json::obj(vec![("op", Json::str("shutdown"))])).unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));

    // Every accepted request still gets a real reply.
    for i in 0..IN_FLIGHT {
        let reply = worker.recv().unwrap_or_else(|e| panic!("reply {i} lost: {e}"));
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "reply {i}: {}",
            reply
        );
        assert!(reply.get("embedding").is_some());
    }
    drop(worker);
    drop(admin);

    // And the server actually stops: both threads exit and join returns.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(std::time::Instant::now() < deadline, "server failed to stop");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let stats = handle.stats();
    assert_eq!(stats.requests as usize, IN_FLIGHT);
    assert_eq!(stats.queue_depth, 0, "shutdown dropped queued work");
    handle.join();
}
