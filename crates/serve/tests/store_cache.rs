//! End-to-end tests for `--store-path`: shard workers resolve embedding
//! requests through the content-addressed artifact store.
//!
//! Gated contracts:
//! - a server restart over the same store serves the cached embedding
//!   bitwise identically, with zero misses (red-green warm restart),
//! - a different checkpoint (different fingerprint) misses instead of
//!   replaying the other model's embedding.

use liger::{LigerConfig, LigerNamer, ModelBundle, OutVocab};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::json::Json;
use serve::protocol::{infer_request, InferInput, InferKind};
use serve::server::{serve, Client, ServerConfig};

const SOURCE: &str = "fn sumTo(n: int) -> int {
    let s: int = 0;
    for (let i: int = 0; i < n; i += 1) { s += i; }
    return s;
}";

fn bundle(seed: u64) -> ModelBundle {
    let opts = liger::ExtractOptions::default();
    let vocab = liger::vocab_from_sources(&[SOURCE], &opts).expect("corpus traces");
    let mut out = OutVocab::new();
    for t in ["sum", "to"] {
        out.add(t);
    }
    let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
    let mut pstore = tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let _namer = LigerNamer::new(&mut pstore, vocab.len(), out.len(), cfg, &mut rng);
    ModelBundle::for_namer(cfg, vocab, out, pstore)
}

fn config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig { store_path: Some(dir.to_path_buf()), ..ServerConfig::default() }
}

fn embed_bits(addr: std::net::SocketAddr) -> Vec<u32> {
    let mut client = Client::connect(addr).unwrap();
    let input = InferInput::Source(SOURCE.to_string());
    let reply = client.call(&infer_request(InferKind::Embed, &input)).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "reply: {reply}");
    serve::embedding_from_json(reply.get("embedding").unwrap())
        .unwrap()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

#[test]
fn warm_restart_replays_cached_embeddings_bitwise() {
    let dir = std::env::temp_dir().join(format!("lgrs-serve-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Cold server: computes and persists the embedding.
    let handle = serve(&bundle(17), config(&dir)).unwrap();
    let cold = embed_bits(handle.local_addr());
    handle.shutdown();
    handle.join();
    let st = store::Store::open(&dir).unwrap();
    assert_eq!(st.len(store::ArtifactKind::Embedding).unwrap(), 1);

    // Warm restart, same checkpoint: bitwise identical reply, zero
    // misses — the forward pass never ran.
    let before = store::StoreStats::snapshot();
    let handle = serve(&bundle(17), config(&dir)).unwrap();
    let warm = embed_bits(handle.local_addr());
    handle.shutdown();
    handle.join();
    assert_eq!(cold, warm, "warm embedding must be bitwise identical");
    let delta = store::StoreStats::snapshot().since(&before);
    assert!(delta.hits >= 1, "warm request must hit the store: {delta}");
    assert_eq!(delta.misses, 0, "warm request must not miss: {delta}");

    // A different checkpoint has a different fingerprint: its request
    // misses and recomputes instead of replaying the wrong model's
    // embedding.
    let before = store::StoreStats::snapshot();
    let handle = serve(&bundle(99), config(&dir)).unwrap();
    let other = embed_bits(handle.local_addr());
    handle.shutdown();
    handle.join();
    let delta = store::StoreStats::snapshot().since(&before);
    assert!(delta.misses >= 1, "swapped checkpoint must miss: {delta}");
    assert_ne!(cold, other, "different weights must produce a different embedding");

    std::fs::remove_dir_all(&dir).ok();
}
