//! Exporters: aggregate recorded spans into a [`Profile`] and render it
//! as a human-readable tree, machine-readable JSON, or a
//! chrome://tracing "Trace Event Format" file.
//!
//! The chrome-trace output is plain JSON built with the in-tree
//! [`crate::json`] codec — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev> for a flamegraph of a whole training run or
//! serve session. Every complete event (`"ph":"X"`) carries
//! microsecond `ts`/`dur` relative to the profile epoch, and the file's
//! `otherData` block embeds the metrics-registry snapshot plus the wall
//! time, so one artifact answers both "where did the time go" and "how
//! many cache hits / solver calls / batches happened".

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::trace::{self, PathId, TraceData, ROOT_PATH};
use std::collections::HashMap;

/// One aggregated span chain.
#[derive(Debug, Clone)]
pub struct ProfNode {
    /// The interned chain id.
    pub path: PathId,
    /// Parent chain ([`ROOT_PATH`] for top-level spans).
    pub parent: PathId,
    /// The span name (last segment of the chain).
    pub name: &'static str,
    /// Occurrences.
    pub count: u64,
    /// Total inclusive time, nanoseconds.
    pub total_ns: u64,
    /// Total inclusive time of direct children, nanoseconds.
    pub child_ns: u64,
}

impl ProfNode {
    /// Inclusive time minus direct children's inclusive time.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// Aggregated spans plus the raw events they came from.
#[derive(Debug, Default, Clone)]
pub struct Profile {
    /// The drained trace data (raw events feed the chrome exporter).
    pub data: TraceData,
    /// Aggregated nodes, one per distinct span chain, in path-id order.
    pub nodes: Vec<ProfNode>,
    index: HashMap<PathId, usize>,
}

impl Profile {
    /// Drains everything recorded so far and aggregates it.
    pub fn collect() -> Profile {
        Profile::from_data(trace::drain())
    }

    /// Aggregates already-drained trace data.
    pub fn from_data(data: TraceData) -> Profile {
        let mut agg: HashMap<PathId, (u64, u64)> = HashMap::new();
        for e in &data.events {
            let slot = agg.entry(e.path).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += e.dur_ns;
        }
        for &(path, count, ns) in &data.overflow {
            let slot = agg.entry(path).or_insert((0, 0));
            slot.0 += count;
            slot.1 += ns;
        }
        let mut child_ns: HashMap<PathId, u64> = HashMap::new();
        for (&path, &(_, ns)) in &agg {
            let (parent, _) = data.paths[path as usize];
            if parent != ROOT_PATH {
                *child_ns.entry(parent).or_insert(0) += ns;
            }
        }
        let mut nodes: Vec<ProfNode> = agg
            .into_iter()
            .map(|(path, (count, total_ns))| {
                let (parent, name) = data.paths[path as usize];
                ProfNode {
                    path,
                    parent,
                    name,
                    count,
                    total_ns,
                    child_ns: child_ns.get(&path).copied().unwrap_or(0),
                }
            })
            .collect();
        nodes.sort_by_key(|n| n.path);
        let index = nodes.iter().enumerate().map(|(i, n)| (n.path, i)).collect();
        Profile { data, nodes, index }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The aggregated node of one chain id.
    pub fn node(&self, path: PathId) -> Option<&ProfNode> {
        self.index.get(&path).map(|&i| &self.nodes[i])
    }

    /// Resolves a name chain (`["train.epoch", "train.batch"]`, rooted at
    /// the top) to its aggregated node.
    pub fn node_by_names(&self, chain: &[&str]) -> Option<&ProfNode> {
        let mut parent = ROOT_PATH;
        let mut found: Option<&ProfNode> = None;
        for name in chain {
            found = self.nodes.iter().find(|n| n.parent == parent && n.name == *name);
            parent = found?.path;
        }
        found
    }

    /// Direct children of `path`, by descending inclusive time.
    pub fn children(&self, path: PathId) -> Vec<&ProfNode> {
        let mut out: Vec<&ProfNode> =
            self.nodes.iter().filter(|n| n.parent == path).collect();
        out.sort_by_key(|n| std::cmp::Reverse(n.total_ns));
        out
    }

    /// Top-level aggregated spans, by descending inclusive time.
    pub fn roots(&self) -> Vec<&ProfNode> {
        self.children(ROOT_PATH)
    }

    /// Renders the aggregation as an indented tree:
    ///
    /// ```text
    /// train.epoch                 count 2    incl 812.4ms  self 1.3ms
    ///   train.batch               count 6    incl 811.1ms  self 2.0ms
    ///     encode.program          count 36   incl 790.2ms  self 12.9ms
    /// ```
    pub fn summary_tree(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_node(root, 0, &mut out);
        }
        if self.data.dropped > 0 {
            out.push_str(&format!(
                "({} events beyond the retention cap were folded into the totals)\n",
                self.data.dropped
            ));
        }
        out
    }

    fn render_node(&self, node: &ProfNode, depth: usize, out: &mut String) {
        let label = format!("{:indent$}{}", "", node.name, indent = 2 * depth);
        out.push_str(&format!(
            "{label:<40} count {:<8} incl {:>10} self {:>10}\n",
            node.count,
            fmt_ns(node.total_ns),
            fmt_ns(node.self_ns()),
        ));
        for child in self.children(node.path) {
            self.render_node(child, depth + 1, out);
        }
    }

    /// The aggregation as a JSON array of
    /// `{chain, count, incl_ns, self_ns}` rows (machine-readable form of
    /// [`Profile::summary_tree`]).
    pub fn summary_json(&self) -> Json {
        let mut rows = Vec::new();
        for root in self.roots() {
            self.summary_rows(root, &mut Vec::new(), &mut rows);
        }
        Json::Arr(rows)
    }

    fn summary_rows<'a>(
        &'a self,
        node: &'a ProfNode,
        chain: &mut Vec<&'a str>,
        rows: &mut Vec<Json>,
    ) {
        chain.push(node.name);
        rows.push(Json::obj(vec![
            ("chain", Json::str(chain.join("/"))),
            ("count", Json::Num(node.count as f64)),
            ("incl_ns", Json::Num(node.total_ns as f64)),
            ("self_ns", Json::Num(node.self_ns() as f64)),
        ]));
        for child in self.children(node.path) {
            self.summary_rows(child, chain, rows);
        }
        chain.pop();
    }

    /// The raw events as a chrome://tracing "Trace Event Format"
    /// document. `metrics`, when given, is embedded under
    /// `otherData.metrics`.
    pub fn chrome_trace(&self, metrics: Option<&MetricsSnapshot>) -> Json {
        let events: Vec<Json> = self
            .data
            .events
            .iter()
            .map(|e| {
                let (_, name) = self.data.paths[e.path as usize];
                Json::obj(vec![
                    ("name", Json::str(name)),
                    ("cat", Json::str("liger")),
                    ("ph", Json::str("X")),
                    ("ts", Json::Num(e.start_ns as f64 / 1_000.0)),
                    ("dur", Json::Num(e.dur_ns as f64 / 1_000.0)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(f64::from(e.tid))),
                ])
            })
            .collect();
        let mut other = vec![
            ("wall_us", Json::Num(trace::now_ns() as f64 / 1_000.0)),
            ("dropped_events", Json::Num(self.data.dropped as f64)),
            ("summary", self.summary_json()),
        ];
        if let Some(m) = metrics {
            other.push(("metrics", m.to_json()));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
            ("otherData", Json::obj(other)),
        ])
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Collects the profile, embeds the current metrics snapshot, and writes
/// a chrome-trace JSON file. Returns the profile for callers that also
/// want the stderr tree.
///
/// # Errors
///
/// Returns the file-write error.
pub fn write_chrome_trace(path: impl AsRef<std::path::Path>) -> std::io::Result<Profile> {
    let profile = Profile::collect();
    let doc = profile.chrome_trace(Some(&crate::metrics::registry().snapshot()));
    std::fs::write(path, doc.to_string())?;
    Ok(profile)
}

/// Prints the span tree and the metrics table to stderr under a header —
/// the uniform end-of-run report the drivers share. Call after workers
/// have joined; does nothing when tracing never recorded anything and no
/// metric was touched.
///
/// Draining note: this *consumes* the recorded events. A driver that also
/// wants a trace file should collect once — e.g. via
/// [`write_chrome_trace`], which returns the [`Profile`] — and print with
/// [`report_profile`].
pub fn report(label: &str) {
    report_profile(label, &Profile::collect());
}

/// [`report`] on an already-collected profile (non-draining).
pub fn report_profile(label: &str, profile: &Profile) {
    let metrics = crate::metrics::registry().snapshot();
    if profile.is_empty() && metrics.0.is_empty() {
        return;
    }
    eprintln!("== {label}: spans ==");
    eprint!("{}", profile.summary_tree());
    if !metrics.0.is_empty() {
        eprintln!("== {label}: metrics ==");
        eprint!("{}", metrics.render_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{set_enabled, TRACE_TEST_LOCK};

    fn spin_for(us: u64) {
        let start = std::time::Instant::now();
        while start.elapsed().as_micros() < u128::from(us) {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn profile_aggregates_and_exports() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap();
        set_enabled(Some(true));
        trace::reset();
        for _ in 0..3 {
            let _a = crate::span!("test.export.outer");
            spin_for(40);
            let _b = crate::span!("test.export.inner");
            spin_for(40);
        }
        let profile = Profile::collect();
        set_enabled(None);

        let outer = profile.node_by_names(&["test.export.outer"]).expect("outer node");
        let inner = profile
            .node_by_names(&["test.export.outer", "test.export.inner"])
            .expect("inner node");
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns() <= outer.total_ns);
        assert_eq!(outer.child_ns, inner.total_ns);

        let tree = profile.summary_tree();
        assert!(tree.contains("test.export.outer"));
        assert!(tree.contains("  test.export.inner"), "children are indented: {tree}");

        // The chrome trace parses back through the same codec and keeps
        // every event.
        let doc = profile.chrome_trace(Some(&crate::metrics::registry().snapshot()));
        let text = doc.to_string();
        let back = crate::json::parse(&text).expect("chrome trace is valid JSON");
        let events = back.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        assert_eq!(events.len(), 6);
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert!(e.get("ts").and_then(Json::as_f64).is_some());
            assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            assert!(e.get("name").and_then(Json::as_str).is_some());
        }
        assert!(back.get("otherData").and_then(|o| o.get("wall_us")).is_some());
    }

    #[test]
    fn write_chrome_trace_roundtrips_through_a_file() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap();
        set_enabled(Some(true));
        trace::reset();
        {
            let _s = crate::span!("test.export.file");
            spin_for(10);
        }
        let path = std::env::temp_dir().join("obs_export_test.trace.json");
        let profile = write_chrome_trace(&path).expect("write");
        set_enabled(None);
        assert!(profile.node_by_names(&["test.export.file"]).is_some());
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc = crate::json::parse(&text).expect("parses");
        assert!(!doc.get("traceEvents").and_then(Json::as_arr).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
