//! A minimal JSON value, parser, and writer.
//!
//! The workspace is offline (no serde), and the wire protocol only needs
//! a small, predictable subset: objects, arrays, strings, numbers, bools,
//! null. Numbers are held as `f64` and written with Rust's
//! shortest-roundtrip formatting, so every finite `f64` — in particular
//! every `f32` widened to `f64`, which is exact — survives
//! write-then-parse bitwise. That property is what lets the server
//! promise bitwise-identical embeddings over the wire.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the subset we speak has no duplicate
    /// keys, and order-preservation keeps writes deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..9.0e15).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| < 2⁵³).
    pub fn num(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Serializes compactly into `out` without any heap allocation of
    /// its own (strings and numbers render in place): the hot-path form
    /// of `to_string()` used by the serve framing layer's reusable
    /// buffers.
    pub fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` is shortest-roundtrip; strip the trailing
                    // `.0` Rust adds to integral floats. Rendered into a
                    // stack buffer: serialization must not heap-allocate
                    // (the serve framing hot path asserts zero allocs).
                    let mut buf = StackBuf { bytes: [0u8; 32], len: 0 };
                    use std::fmt::Write as _;
                    let text = match write!(buf, "{n:?}") {
                        Ok(()) => buf.as_str(),
                        Err(_) => unreachable!("f64 shortest repr fits 32 bytes"),
                    };
                    out.push_str(text.strip_suffix(".0").unwrap_or(text));
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN.
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

/// Fixed-capacity `fmt::Write` sink for number rendering: f64's
/// shortest-roundtrip `{:?}` form is at most 24 bytes, so 32 never
/// overflows in practice (overflow surfaces as a `fmt::Error`).
struct StackBuf {
    bytes: [u8; 32],
    len: usize,
}

impl StackBuf {
    fn as_str(&self) -> &str {
        // Only ever filled through `write_str` with valid UTF-8.
        std::str::from_utf8(&self.bytes[..self.len]).expect("StackBuf holds UTF-8")
    }
}

impl std::fmt::Write for StackBuf {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let bytes = s.as_bytes();
        if self.len + bytes.len() > self.bytes.len() {
            return Err(std::fmt::Error);
        }
        self.bytes[self.len..self.len + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
        Ok(())
    }
}

/// Compact JSON text (`value.to_string()` serializes).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_to(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value; the whole input must be consumed (modulo
/// whitespace).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates are not paired — the protocol
                            // never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
                Some(_) => unreachable!("scan loop stops only at a quote or backslash"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let value = Json::obj(vec![
            ("op", Json::str("embed")),
            ("n", Json::num(42)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::num(1), Json::str("two\n\"x\"")])),
        ]);
        let text = value.to_string();
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for f in [0.1f32, -3.25e-12, f32::MIN_POSITIVE, 1.0e30, 0.0, -0.0] {
            let wide = f64::from(f);
            let text = Json::Num(wide).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), wide.to_bits(), "{f} via {text}");
            assert_eq!((back as f32).to_bits(), f.to_bits());
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str().unwrap(), "A\n");
    }
}
