//! # obs — zero-dependency observability for the LIGER pipeline
//!
//! One uniform way to answer "where does a training step or a served
//! request spend its time" (DESIGN.md §2e):
//!
//! - [`metrics`] — a process-wide registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and log₂ [`metrics::Histogram`]s with
//!   interpolated exact-count quantiles. Recording is lock-free; the
//!   [`counter!`]/[`gauge!`]/[`histogram!`] macros resolve the name once
//!   per call site.
//! - [`trace`] — hierarchical span tracing: `let _s = obs::span!("x");`
//!   opens an RAII region under the thread's current span. Enabled by
//!   `LIGER_PROFILE=1` (or [`trace::set_enabled`]); when disabled a span
//!   is one relaxed atomic load, asserted `<2%` of workload throughput in
//!   the `throughput_obs` bench.
//! - [`export`] — a stderr tree summary, a JSON summary, and
//!   chrome://tracing "Trace Event Format" output (open a training run in
//!   a flamegraph viewer), all via the in-tree [`json`] codec.
//! - [`json`] — the minimal JSON value/parser/writer the whole workspace
//!   shares (the serve wire protocol re-exports it).
//!
//! ```
//! let _root = obs::span!("request");
//! obs::counter!("requests").inc();
//! {
//!     let _child = obs::span!("encode");
//!     obs::histogram!("encode.size").record(42);
//! }
//! ```
//!
//! The crate is std-only and sits below every other crate in the
//! workspace graph, so any layer — tensor kernels, the symbolic
//! executor, the serve batcher — can record without dependency cycles.

pub mod export;
pub mod json;
pub mod metrics;
pub mod trace;

pub use export::{write_chrome_trace, Profile};
pub use json::Json;
pub use trace::SpanGuard;

/// Opens an RAII span: `let _span = obs::span!("encode.tree");`. The
/// name must be a `&'static str`. No-op (one atomic load) when profiling
/// is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name)
    };
}

/// The process-wide counter named `$name`, resolved once per call site:
/// `obs::counter!("symexec.solver_calls").inc();`
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// The process-wide gauge named `$name`, resolved once per call site:
/// `obs::gauge!("serve.queue_depth").inc();`
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// The process-wide histogram named `$name`, resolved once per call
/// site: `obs::histogram!("serve.batch_size").record(n);`
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_resolve_and_record() {
        super::counter!("test.lib.counter").add(2);
        super::counter!("test.lib.counter").inc();
        super::gauge!("test.lib.gauge").set(5);
        super::histogram!("test.lib.hist").record(9);
        let snap = crate::metrics::registry().snapshot();
        assert_eq!(snap.counter("test.lib.counter"), Some(3));
    }
}
