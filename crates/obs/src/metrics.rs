//! The global metrics registry: named counters, gauges, and log₂
//! histograms.
//!
//! ## Design
//!
//! Recording must be cheap enough for hot paths (the `par` dispatch loop,
//! the serve batcher, per-guard solver calls), so every metric is a fixed
//! set of atomics and every record is one or two relaxed RMW operations —
//! no locks, no allocation. The only mutex in the subsystem guards the
//! *name → metric* map, and it is touched once per call site: the
//! [`counter!`](crate::counter)/[`gauge!`](crate::gauge)/
//! [`histogram!`](crate::histogram) macros cache the resolved [`Arc`] in a
//! per-call-site `OnceLock`.
//!
//! ## Histograms
//!
//! A [`Histogram`] buckets samples by ⌊log₂ v⌋ (bucket *i* holds
//! `[2^i, 2^(i+1))`; bucket 0 holds `[0, 2)`) and additionally tracks the
//! exact count and sum. Quantiles interpolate linearly *within* the
//! bucket where the requested rank falls, assuming samples spread
//! uniformly across it — so a histogram with every sample in one bucket
//! reports quantiles inside that bucket instead of pessimistically
//! returning its upper bound (the bug the serve STATS block shipped
//! with; see the pinned-distribution tests below).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ buckets: 2⁴⁰ µs ≈ 12 days, effectively unbounded for
/// every duration this system measures.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing named count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts `n` (for optimistic bookkeeping that must be reverted).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (benches and tests).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A named value that can go up and down (queue depths, pool sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram with exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index of sample `v`: position of its highest set bit
/// (0 for values 0 and 1), clamped to the last bucket.
fn bucket_of(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The interpolated `q`-quantile of the recorded samples (0 when
    /// empty). See [`quantile_from_counts`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the buckets, count, and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (log₂ buckets).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The interpolated `q`-quantile (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(&self.buckets, q)
    }

    /// The mean of the recorded samples (exact, from count and sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The `q`-quantile of a log₂-bucketed count vector, linearly
/// interpolated within the bucket where the rank falls.
///
/// Bucket *i* spans `[lo, hi)` = `[2^i, 2^(i+1))` (bucket 0 spans
/// `[0, 2)`). If the ⌈q·total⌉-th sample is the *k*-th of *c* samples in
/// its bucket, the estimate is `lo + (k / c) · (hi − lo)` — samples are
/// assumed to spread uniformly across the bucket, and `k = c` recovers
/// the bucket upper bound, so the estimate never leaves the bucket and
/// `q = 1.0` degrades to the old conservative bound.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil().clamp(1.0, total as f64) as u64;
    let mut seen = 0u64;
    for (bucket, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if seen + count >= rank {
            let lo = if bucket == 0 { 0 } else { 1u64 << bucket };
            let hi = 1u64 << (bucket + 1);
            let into = (rank - seen) as f64 / count as f64; // (0, 1]
            return lo + ((hi - lo) as f64 * into).round() as u64;
        }
        seen += count;
    }
    1u64 << counts.len().min(63)
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// The process-wide name → metric map. Obtain it via [`registry`]; hot
/// paths should resolve metrics through the
/// [`counter!`](crate::counter)-family macros, which hit this map once
/// per call site.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind — metric
    /// names are a process-wide namespace, so a kind clash is a bug at
    /// the call site.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a counter"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// Registers (or replaces) `metric` under `name`. Components that own
    /// per-instance metrics (one [`crate::metrics::Histogram`] per server,
    /// say) register them here so exporters see the live instance; the
    /// newest registration wins.
    pub fn register(&self, name: &str, metric: Metric) {
        self.metrics.lock().unwrap().insert(name.to_string(), metric);
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().unwrap();
        MetricsSnapshot(
            map.iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        )
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot(pub BTreeMap<String, MetricValue>);

impl MetricsSnapshot {
    /// The counter value under `name`, if registered as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.0.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Renders one aligned `name value` line per metric (histograms show
    /// count, mean, p50, p99) — the uniform stats block drivers print.
    pub fn render_table(&self) -> String {
        let width = self.0.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.0 {
            let rendered = match value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v}"),
                MetricValue::Histogram(h) => format!(
                    "count {} mean {:.1} p50 {} p99 {}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99)
                ),
            };
            out.push_str(&format!("{name:width$}  {rendered}\n"));
        }
        out
    }

    /// The snapshot as a JSON object (histograms become
    /// `{count, sum, mean, p50, p90, p99}`).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::Obj(
            self.0
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        MetricValue::Counter(v) => Json::Num(*v as f64),
                        MetricValue::Gauge(v) => Json::Num(*v as f64),
                        MetricValue::Histogram(h) => Json::obj(vec![
                            ("count", Json::Num(h.count as f64)),
                            ("sum", Json::Num(h.sum as f64)),
                            ("mean", Json::Num(h.mean())),
                            ("p50", Json::Num(h.quantile(0.50) as f64)),
                            ("p90", Json::Num(h.quantile(0.90) as f64)),
                            ("p99", Json::Num(h.quantile(0.99) as f64)),
                        ]),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = Counter::new();
        c.add(5);
        c.inc();
        c.sub(2);
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.add(3);
        g.dec();
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    /// The satellite fix, pinned: a point mass in one bucket interpolates
    /// to positions inside the bucket instead of its upper bound.
    #[test]
    fn quantiles_interpolate_within_the_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(100); // bucket 6 = [64, 128)
        }
        // Rank 50 of 100 → half-way through the bucket: 64 + 0.5·64 = 96.
        assert_eq!(h.quantile(0.50), 96);
        // Rank 99 → 64 + 0.99·64 ≈ 127, still inside the bucket (the old
        // code reported 128, the upper bound, for every quantile).
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(1.0), 128); // full rank degrades to the bound
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 10_000);
        assert!((h.snapshot().mean() - 100.0).abs() < f64::EPSILON);
    }

    /// A known bimodal distribution: 90 fast + 10 slow samples.
    #[test]
    fn quantiles_pin_a_bimodal_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 6 = [64, 128)
        }
        for _ in 0..10 {
            h.record(100_000); // bucket 16 = [65536, 131072)
        }
        // p50: rank 50 of 100, the 50th of 90 samples in bucket 6:
        // 64 + (50/90)·64 ≈ 99.6 → 100.
        assert_eq!(h.quantile(0.50), 100);
        // p90: rank 90 — the last fast sample: 64 + (90/90)·64 = 128.
        assert_eq!(h.quantile(0.90), 128);
        // p99: rank 99, the 9th of 10 slow samples:
        // 65536 + 0.9·65536 ≈ 124518.
        assert_eq!(h.quantile(0.99), 124_518);
    }

    /// Uniformly spread samples: interpolation lands within one bucket
    /// width of the exact quantile everywhere.
    #[test]
    fn quantiles_track_a_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=1024u64 {
            h.record(v);
        }
        for q in [0.10f64, 0.25, 0.50, 0.75, 0.90, 0.99] {
            let exact = (q * 1024.0).ceil();
            let got = h.quantile(q) as f64;
            assert!(
                (got - exact).abs() <= exact,
                "q={q}: interpolated {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
        assert_eq!(HistogramSnapshot { buckets: vec![], count: 0, sum: 0 }.mean(), 0.0);
    }

    #[test]
    fn registry_resolves_and_snapshots() {
        let r = registry();
        let c = r.counter("test.metrics.hits");
        c.add(3);
        assert!(Arc::ptr_eq(&c, &r.counter("test.metrics.hits")));
        let g = r.gauge("test.metrics.depth");
        g.set(2);
        let h = r.histogram("test.metrics.lat");
        h.record(10);

        let snap = r.snapshot();
        assert!(snap.counter("test.metrics.hits").unwrap() >= 3);
        assert_eq!(snap.0.get("test.metrics.depth"), Some(&MetricValue::Gauge(2)));
        let table = snap.render_table();
        assert!(table.contains("test.metrics.hits"));
        assert!(table.contains("test.metrics.lat"));
        let json = snap.to_json().to_string();
        assert!(json.contains("\"test.metrics.depth\":2"));
        assert!(crate::json::parse(&json).is_ok());
    }

    #[test]
    fn register_replaces_the_live_instance() {
        let r = registry();
        let first = Arc::new(Counter::new());
        first.add(1);
        r.register("test.metrics.replace", Metric::Counter(Arc::clone(&first)));
        let second = Arc::new(Counter::new());
        second.add(7);
        r.register("test.metrics.replace", Metric::Counter(Arc::clone(&second)));
        assert_eq!(r.snapshot().counter("test.metrics.replace"), Some(7));
    }
}
