//! `trace-validate` — checks that an emitted chrome-trace file is
//! well-formed and that its spans actually cover the profiled run.
//!
//! CI runs a profiled quickstart, then this tool over the emitted
//! `quickstart.trace.json`:
//!
//! - the file must parse with the in-tree JSON codec,
//! - `traceEvents` must be a non-empty array of complete events
//!   (`"ph":"X"`) with `name`/`ts`/`dur`/`pid`/`tid` fields,
//! - the longest top-level span must cover at least `--min-coverage`
//!   (default 0.9) of the recorded wall time (`otherData.wall_us`, or
//!   the event extent when absent) — i.e. the instrumentation actually
//!   brackets the run instead of sampling slivers of it.
//!
//! Exit status: 0 valid, 1 validation failure, 2 usage/IO error.

use obs::json::{parse, Json};
use std::process::ExitCode;

const USAGE: &str = "usage: trace-validate [--min-coverage F] FILE.trace.json";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace-validate: {msg}");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut min_coverage = 0.9f64;
    let mut file = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-coverage" => {
                min_coverage = match args.next().and_then(|v| v.parse().ok()) {
                    Some(f) => f,
                    None => {
                        eprintln!("--min-coverage needs a number\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => file = Some(f.to_string()),
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-validate: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{file} is not valid JSON: {e}")),
    };

    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return fail("missing traceEvents array");
    };
    if events.is_empty() {
        return fail("traceEvents is empty — nothing was profiled");
    }

    let mut max_end = 0f64;
    let mut min_start = f64::INFINITY;
    let mut longest = 0f64;
    for (i, e) in events.iter().enumerate() {
        let name = e.get("name").and_then(Json::as_str);
        let ph = e.get("ph").and_then(Json::as_str);
        let ts = e.get("ts").and_then(Json::as_f64);
        let dur = e.get("dur").and_then(Json::as_f64);
        let has_ids = e.get("pid").is_some() && e.get("tid").is_some();
        let (Some(_), Some("X"), Some(ts), Some(dur), true) = (name, ph, ts, dur, has_ids)
        else {
            return fail(&format!("event {i} is not a complete span event: {e}"));
        };
        if ts < 0.0 || dur < 0.0 {
            return fail(&format!("event {i} has a negative ts/dur: {e}"));
        }
        min_start = min_start.min(ts);
        max_end = max_end.max(ts + dur);
        longest = longest.max(dur);
    }

    let wall_us = doc
        .get("otherData")
        .and_then(|o| o.get("wall_us"))
        .and_then(Json::as_f64)
        .unwrap_or(max_end - min_start)
        .max(1.0);
    let coverage = longest / wall_us;
    println!(
        "trace-validate: {file}: {} events, wall {:.1}ms, longest span {:.1}ms ({:.1}% coverage)",
        events.len(),
        wall_us / 1_000.0,
        longest / 1_000.0,
        coverage * 100.0
    );
    if coverage < min_coverage {
        return fail(&format!(
            "longest span covers {:.1}% of wall time, need ≥ {:.1}%",
            coverage * 100.0,
            min_coverage * 100.0
        ));
    }
    ExitCode::SUCCESS
}
