//! Hierarchical span tracing with per-thread buffers.
//!
//! A span is an RAII region: [`SpanGuard::enter`] (usually via the
//! [`span!`](crate::span) macro) stamps the start, and dropping the guard
//! records one [`Event`] into the current thread's buffer. Nesting is
//! tracked by a per-thread *current path*: each distinct chain of span
//! names (`train.epoch → train.batch → encode.program`) is interned once
//! into a process-wide [`PathId`], so aggregation and export never
//! compare strings.
//!
//! ## Enablement and overhead
//!
//! Tracing is off unless `LIGER_PROFILE=1` is set in the environment (or
//! a bench/test forces it with [`set_enabled`]). The off state is cached
//! in one atomic: a disabled [`SpanGuard::enter`] is a single relaxed
//! load plus a trivially-constructed guard whose `Drop` checks one bool —
//! a few nanoseconds per call site, asserted `<2%` of workload throughput
//! in `throughput_obs` (see DESIGN.md §2e for the budget).
//!
//! ## Buffering
//!
//! Each thread appends events to a local `Vec` and flushes it into the
//! process-wide collector when it reaches [`FLUSH_EVERY`] events or the
//! thread exits (thread-local destructor). The collector retains up to
//! [`MAX_RETAINED_EVENTS`] raw events for chrome-trace export; beyond
//! that, events fold into per-path aggregates (count + total time) so
//! summaries stay exact while memory stays bounded on long runs.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Events buffered per thread before flushing into the collector.
pub const FLUSH_EVERY: usize = 8 * 1024;

/// Raw events the collector retains for export; beyond this, events are
/// folded into per-path aggregates.
pub const MAX_RETAINED_EVENTS: usize = 1 << 20;

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Whether spans record. First call resolves `LIGER_PROFILE` and caches
/// the answer; after that this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("LIGER_PROFILE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    if on {
        let _ = epoch(); // pin the time base before the first span
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Overrides enablement: `Some(true)`/`Some(false)` pin it (drivers'
/// `--profile` flag, benches, the determinism tests), `None` reverts to
/// `LIGER_PROFILE` resolution on the next [`enabled`] call.
pub fn set_enabled(on: Option<bool>) {
    let state = match on {
        Some(true) => {
            let _ = epoch();
            STATE_ON
        }
        Some(false) => STATE_OFF,
        None => STATE_UNSET,
    };
    STATE.store(state, Ordering::Relaxed);
}

/// The process-wide time base all event timestamps are relative to
/// (pinned when tracing is first enabled).
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since [`epoch`].
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Index of an interned span-name chain. The root (no open span) is
/// [`ROOT_PATH`]; every other id resolves to `(parent, name)` via
/// [`path_nodes`].
pub type PathId = u32;

/// The parent of top-level spans.
pub const ROOT_PATH: PathId = u32::MAX;

#[derive(Default)]
struct PathTable {
    /// `nodes[id] = (parent, name)`.
    nodes: Vec<(PathId, &'static str)>,
    ids: HashMap<(PathId, &'static str), PathId>,
}

fn paths() -> &'static Mutex<PathTable> {
    static PATHS: OnceLock<Mutex<PathTable>> = OnceLock::new();
    PATHS.get_or_init(Mutex::default)
}

/// Interns `(parent, name)` in the global table (thread caches miss here
/// once per distinct chain per thread).
fn intern_path_global(parent: PathId, name: &'static str) -> PathId {
    let mut table = paths().lock().unwrap();
    if let Some(&id) = table.ids.get(&(parent, name)) {
        return id;
    }
    let id = table.nodes.len() as PathId;
    assert!(id != ROOT_PATH, "span path table overflow");
    table.nodes.push((parent, name));
    table.ids.insert((parent, name), id);
    id
}

/// A snapshot of the interned path table: `nodes[id] = (parent, name)`.
pub fn path_nodes() -> Vec<(PathId, &'static str)> {
    paths().lock().unwrap().nodes.clone()
}

/// One recorded span occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The interned span-name chain.
    pub path: PathId,
    /// Recording thread (dense ids in spawn order, main thread first).
    pub tid: u32,
    /// Start, nanoseconds since [`epoch`].
    pub start_ns: u64,
    /// Inclusive duration, nanoseconds.
    pub dur_ns: u64,
}

#[derive(Default)]
struct Collector {
    events: Vec<Event>,
    /// Events beyond [`MAX_RETAINED_EVENTS`], folded to
    /// `path → (count, total_ns)`.
    overflow: HashMap<PathId, (u64, u64)>,
    dropped: u64,
}

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    COLLECTOR.get_or_init(Mutex::default)
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

struct ThreadBuf {
    tid: u32,
    current: PathId,
    /// Per-thread `(parent, name) → path` cache in front of the global
    /// interner.
    cache: HashMap<(PathId, &'static str), PathId>,
    events: Vec<Event>,
}

impl ThreadBuf {
    fn new() -> ThreadBuf {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            current: ROOT_PATH,
            cache: HashMap::new(),
            events: Vec::new(),
        }
    }

    fn path_of(&mut self, parent: PathId, name: &'static str) -> PathId {
        *self
            .cache
            .entry((parent, name))
            .or_insert_with(|| intern_path_global(parent, name))
    }

    fn push(&mut self, event: Event) {
        self.events.push(event);
        if self.events.len() >= FLUSH_EVERY {
            flush_events(&mut self.events);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        flush_events(&mut self.events);
    }
}

fn flush_events(events: &mut Vec<Event>) {
    if events.is_empty() {
        return;
    }
    let mut c = collector().lock().unwrap();
    for e in events.drain(..) {
        if c.events.len() < MAX_RETAINED_EVENTS {
            c.events.push(e);
        } else {
            let slot = c.overflow.entry(e.path).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += e.dur_ns;
            c.dropped += 1;
        }
    }
}

thread_local! {
    static THREAD_BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// An RAII span: created by [`SpanGuard::enter`] / the
/// [`span!`](crate::span) macro, records one [`Event`] on drop. Not
/// `Send` — a guard must be dropped on the thread that entered it, which
/// scoping to a `let` binding guarantees.
#[must_use = "binding the guard to `_` drops it immediately; use `let _span = …`"]
pub struct SpanGuard {
    path: PathId,
    prev: PathId,
    start_ns: u64,
    armed: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span named `name` under the thread's current span. When
    /// tracing is disabled this is a no-op guard.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard {
                path: ROOT_PATH,
                prev: ROOT_PATH,
                start_ns: 0,
                armed: false,
                _not_send: PhantomData,
            };
        }
        Self::enter_enabled(name)
    }

    #[cold]
    fn enter_enabled(name: &'static str) -> SpanGuard {
        THREAD_BUF.with(|tl| {
            let mut buf = tl.borrow_mut();
            let prev = buf.current;
            let path = buf.path_of(prev, name);
            buf.current = path;
            SpanGuard { path, prev, start_ns: now_ns(), armed: true, _not_send: PhantomData }
        })
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        THREAD_BUF.with(|tl| {
            let mut buf = tl.borrow_mut();
            buf.current = self.prev;
            let tid = buf.tid;
            buf.push(Event {
                path: self.path,
                tid,
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
            });
        });
    }
}

/// Flushes the calling thread's buffered events into the collector
/// (worker threads flush automatically on exit; the exporting thread
/// calls this via [`drain`]).
pub fn flush_thread() {
    THREAD_BUF.with(|tl| flush_events(&mut tl.borrow_mut().events));
}

/// Everything recorded so far: raw events, overflow aggregates, and the
/// path table needed to resolve them.
#[derive(Debug, Default, Clone)]
pub struct TraceData {
    /// Retained raw events.
    pub events: Vec<Event>,
    /// `(path, count, total_ns)` for events beyond the retention cap.
    pub overflow: Vec<(PathId, u64, u64)>,
    /// Events folded into `overflow` instead of retained raw.
    pub dropped: u64,
    /// `paths[id] = (parent, name)`.
    pub paths: Vec<(PathId, &'static str)>,
}

/// Takes every recorded event out of the collector (flushing the calling
/// thread first). Other threads' *unflushed* buffers are not visible —
/// drain after joining workers, which the scoped-thread `par` engine and
/// the serve shutdown path both guarantee.
pub fn drain() -> TraceData {
    flush_thread();
    let mut c = collector().lock().unwrap();
    let events = std::mem::take(&mut c.events);
    let overflow = c.overflow.drain().map(|(p, (n, ns))| (p, n, ns)).collect();
    let dropped = std::mem::replace(&mut c.dropped, 0);
    drop(c);
    TraceData { events, overflow, dropped, paths: path_nodes() }
}

/// Discards everything recorded so far (benches and tests).
pub fn reset() {
    let _ = drain();
}

/// Serializes tests that force enablement / drain the collector.
#[cfg(test)]
pub(crate) static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn name_of(data: &TraceData, path: PathId) -> &'static str {
        data.paths[path as usize].1
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap();
        set_enabled(Some(false));
        {
            let _s = crate::span!("test.disabled");
        }
        set_enabled(Some(true));
        let data = drain();
        assert!(data.events.iter().all(|e| name_of(&data, e.path) != "test.disabled"));
        set_enabled(None);
    }

    #[test]
    fn nested_spans_build_parent_chains() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap();
        set_enabled(Some(true));
        reset();
        {
            let _a = crate::span!("test.outer");
            {
                let _b = crate::span!("test.inner");
                let _c = crate::span!("test.leaf");
            }
            {
                let _b2 = crate::span!("test.inner");
            }
        }
        let data = drain();
        set_enabled(None);

        let find = |name: &str| {
            data.events
                .iter()
                .filter(|e| name_of(&data, e.path) == name)
                .collect::<Vec<_>>()
        };
        let outer = find("test.outer");
        let inner = find("test.inner");
        let leaf = find("test.leaf");
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 2, "re-entering a name reuses its path id");
        assert_eq!(leaf.len(), 1);
        // Both inner occurrences intern to the same path, parented on outer.
        assert_eq!(inner[0].path, inner[1].path);
        assert_eq!(data.paths[inner[0].path as usize].0, outer[0].path);
        // The leaf chains through inner.
        assert_eq!(data.paths[leaf[0].path as usize].0, inner[0].path);
        // And outer is a root span.
        assert_eq!(data.paths[outer[0].path as usize].0, ROOT_PATH);
        // Children close before parents, and lie within them in time.
        assert!(outer[0].dur_ns >= inner[0].dur_ns + inner[1].dur_ns);
        assert!(inner[0].start_ns >= outer[0].start_ns);
    }

    #[test]
    fn reentrant_same_name_nests_under_itself() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap();
        set_enabled(Some(true));
        reset();
        fn recurse(depth: usize) {
            let _s = crate::span!("test.recursive");
            if depth > 0 {
                recurse(depth - 1);
            }
        }
        recurse(2);
        let data = drain();
        set_enabled(None);

        let events: Vec<_> = data
            .events
            .iter()
            .filter(|e| name_of(&data, e.path) == "test.recursive")
            .collect();
        assert_eq!(events.len(), 3);
        // Three distinct paths: self, self→self, self→self→self.
        let mut paths: Vec<PathId> = events.iter().map(|e| e.path).collect();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), 3, "each recursion depth is its own chain");
    }

    #[test]
    fn worker_thread_buffers_flush_on_exit() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap();
        set_enabled(Some(true));
        reset();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = crate::span!("test.worker");
            });
        });
        let data = drain();
        set_enabled(None);
        assert!(data.events.iter().any(|e| name_of(&data, e.path) == "test.worker"));
    }
}
