//! # rand — offline stand-in for the `rand` crate
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of the subset of the
//! `rand` API the reproduction uses: [`rngs::StdRng`] (xoshiro256**
//! seeded with SplitMix64), the [`Rng`]/[`RngExt`] traits with
//! `random`/`random_range`/`random_bool`, [`SeedableRng::seed_from_u64`],
//! and the [`seq`] helpers `shuffle`/`choose`.
//!
//! The generator is fully deterministic: the same seed produces the same
//! stream on every platform, which the experiment drivers and the
//! data-parallel determinism contract (DESIGN.md) rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`Rng`] (the `rand` crate's
/// `Rng` extension surface).
pub trait RngExt: Rng {
    /// A uniformly random value of a primitive type.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// A generator seeded from a single `u64` (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    // 24 high bits → [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Multiply-high bounded sampling: uniform in `[0, span)`.
fn bounded(rng_word: u64, span: u64) -> u64 {
    ((u128::from(rng_word) * u128::from(span)) >> 64) as u64
}

/// Types with a natural uniform distribution over their whole domain.
pub trait Random {
    /// A uniformly random value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        unit_f32(rng.next_u64())
    }
}

/// Types that can be sampled uniformly from a sub-range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "random_range on empty range");
                let v = bounded(rng.next_u64(), span as u64) as i128;
                (lo + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($t:ty, $unit:ident) => {
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(low <= high, "random_range on empty range");
                low + (high - low) * $unit(rng.next_u64())
            }
        }
    };
}

impl_sample_uniform_float!(f32, unit_f32);
impl_sample_uniform_float!(f64, unit_f64);

/// Ranges that [`RngExt::random_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngExt};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform choice from indexable sequences.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Random, Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-4..=4);
            assert!((-4..=4).contains(&v));
            let u: usize = rng.random_range(0..7);
            assert!(u < 7);
            let f: f32 = rng.random_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_primitives_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(7);
        let _: bool = rng.random();
        let _: u64 = Random::random(&mut rng);
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}
