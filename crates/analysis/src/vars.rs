//! The variable universe of a program and syntactic def/use extraction.
//!
//! Variables are keyed by name, params first, then `let`s in statement
//! order — the same slotting as `interp::VarLayout`, where shadowed names
//! share a slot. Because a shared slot conflates distinct variables, the
//! value analyses (`constprop`, `interval`) pin every *shadowed* slot to ⊤:
//! a claim about a merged slot could otherwise survive a scope exit that
//! concretely restores the outer variable's value.

use minilang::{Expr, ExprKind, LValue, Program, Stmt, StmtKind};
use std::collections::HashMap;

/// The variables of one program, each with a stable slot.
#[derive(Debug, Clone)]
pub struct VarUniverse {
    names: Vec<String>,
    types: Vec<minilang::Type>,
    decls: Vec<u32>,
    slot_of: HashMap<String, usize>,
    params: usize,
}

impl VarUniverse {
    /// Builds the universe of `program`: params, then `let`s in pre-order.
    pub fn of(program: &Program) -> VarUniverse {
        let mut u = VarUniverse {
            names: Vec::new(),
            types: Vec::new(),
            decls: Vec::new(),
            slot_of: HashMap::new(),
            params: 0,
        };
        for p in &program.function.params {
            u.declare(&p.name, p.ty);
        }
        u.params = u.names.len();
        for stmt in program.statements() {
            if let StmtKind::Let { name, ty, .. } = &stmt.kind {
                u.declare(name, *ty);
            }
        }
        u
    }

    fn declare(&mut self, name: &str, ty: minilang::Type) {
        if let Some(&slot) = self.slot_of.get(name) {
            self.decls[slot] += 1;
        } else {
            self.slot_of.insert(name.to_string(), self.names.len());
            self.names.push(name.to_string());
            self.types.push(ty);
            self.decls.push(1);
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the program has no variables at all.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The slot of `name`, if declared anywhere.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.slot_of.get(name).copied()
    }

    /// The name occupying `slot`.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Declared type of the slot's (first) declaration.
    pub fn ty(&self, slot: usize) -> minilang::Type {
        self.types[slot]
    }

    /// True if the slot is a function parameter.
    pub fn is_param(&self, slot: usize) -> bool {
        slot < self.params
    }

    /// True if more than one declaration maps to this slot (shadowing).
    /// Value analyses must keep such slots at ⊤.
    pub fn is_shadowed(&self, slot: usize) -> bool {
        self.decls[slot] > 1
    }
}

/// How a statement writes its target variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefKind {
    /// The whole value is replaced (`let`, `x = e`, `x += e`).
    Strong,
    /// Only part is replaced (`a[i] = e`): earlier definitions still
    /// contribute to the value.
    Weak,
}

/// The variable a statement defines, if any.
pub fn stmt_def(stmt: &Stmt) -> Option<(&str, DefKind)> {
    match &stmt.kind {
        StmtKind::Let { name, .. } => Some((name, DefKind::Strong)),
        StmtKind::Assign { target: LValue::Var(name), .. } => Some((name, DefKind::Strong)),
        StmtKind::Assign { target: LValue::Index(name, _), .. } => Some((name, DefKind::Weak)),
        _ => None,
    }
}

/// Collects every variable `expr` reads into `out`.
pub fn expr_vars<'e>(expr: &'e Expr, out: &mut Vec<&'e str>) {
    match &expr.kind {
        ExprKind::Var(name) => out.push(name),
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) => {}
        ExprKind::Unary(_, inner) => expr_vars(inner, out),
        ExprKind::Binary(_, l, r) => {
            expr_vars(l, out);
            expr_vars(r, out);
        }
        ExprKind::Index(base, idx) => {
            expr_vars(base, out);
            expr_vars(idx, out);
        }
        ExprKind::Call(_, args) | ExprKind::ArrayLit(args) => {
            for a in args {
                expr_vars(a, out);
            }
        }
    }
}

/// Collects every variable the statement itself reads (excluding nested
/// blocks; for `if`/`while`/`for` this is the guard condition).
pub fn stmt_uses<'s>(stmt: &'s Stmt, out: &mut Vec<&'s str>) {
    match &stmt.kind {
        StmtKind::Let { init, .. } => expr_vars(init, out),
        StmtKind::Assign { target, op, value } => {
            expr_vars(value, out);
            match target {
                LValue::Var(name) => {
                    // Compound assignment reads the previous value.
                    if *op != minilang::AssignOp::Set {
                        out.push(name);
                    }
                }
                LValue::Index(name, idx) => {
                    // Element update reads the array and the index.
                    out.push(name);
                    expr_vars(idx, out);
                }
            }
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } | StmtKind::For { cond, .. } => {
            expr_vars(cond, out)
        }
        StmtKind::Return(Some(e)) => expr_vars(e, out),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_orders_params_then_lets_and_detects_shadowing() {
        let p = minilang::parse(
            "fn f(x: int, b: bool) -> int {
                let y: int = 0;
                if (b) { let y: int = 1; y += x; }
                return y;
            }",
        )
        .unwrap();
        let u = VarUniverse::of(&p);
        assert_eq!(u.len(), 3);
        assert_eq!(u.slot("x"), Some(0));
        assert_eq!(u.slot("b"), Some(1));
        assert_eq!(u.slot("y"), Some(2));
        assert!(u.is_param(0) && !u.is_param(2));
        assert!(u.is_shadowed(2), "y is declared twice");
        assert!(!u.is_shadowed(0));
    }

    #[test]
    fn uses_and_defs_of_assignments() {
        let p = minilang::parse(
            "fn f(a: array<int>, i: int) -> int {
                a[i] = a[i + 1];
                let s: int = 0;
                s += i;
                return s;
            }",
        )
        .unwrap();
        let stmts = p.statements();
        // a[i] = a[i+1]: weak def of a; uses a (rhs), a (target), i.
        assert_eq!(stmt_def(stmts[0]), Some(("a", DefKind::Weak)));
        let mut uses = Vec::new();
        stmt_uses(stmts[0], &mut uses);
        assert!(uses.contains(&"a") && uses.contains(&"i"));
        // s += i: strong def of s; uses s and i.
        assert_eq!(stmt_def(stmts[2]), Some(("s", DefKind::Strong)));
        uses.clear();
        stmt_uses(stmts[2], &mut uses);
        assert!(uses.contains(&"s") && uses.contains(&"i"));
    }
}
