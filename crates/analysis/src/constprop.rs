//! Constant propagation over the flat lattice ⊥ ⊑ Const(v) ⊑ ⊤ per slot.
//!
//! Expression evaluation mirrors the tracing interpreter's *checked*
//! semantics: any operation the interpreter would fault on (overflow,
//! division by zero, out-of-bounds, type confusion) evaluates to ⊤ —
//! a faulting execution records no further events, so every claim about
//! the unreached result is vacuous. Two sound non-constant folds are kept
//! because the symbolic executor cannot see them: multiplication by a
//! constant zero absorbs an unknown operand, and short-circuit operators
//! fold on a deciding constant side.
//!
//! Shadowed slots (see [`VarUniverse::is_shadowed`]) are pinned to ⊤.

use crate::dataflow::{Dataflow, Direction};
use crate::vars::VarUniverse;
use interp::Value;
use minilang::{AssignOp, BinOp, Builtin, Expr, ExprKind, LValue, Stmt, StmtKind, UnOp};

/// Largest array/string a constant fold is allowed to materialize.
const MAX_CONST_LEN: usize = 64;

/// One slot's abstract constant.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsConst {
    /// No value reaches this point (unreachable / never defined).
    Bot,
    /// Every execution reaching this point observes exactly this value.
    Const(Value),
    /// Unknown.
    Top,
}

impl AbsConst {
    /// Least upper bound.
    pub fn join(&mut self, other: &AbsConst) -> bool {
        let merged = match (&*self, other) {
            (AbsConst::Bot, x) => x.clone(),
            (x, AbsConst::Bot) => x.clone(),
            (AbsConst::Const(a), AbsConst::Const(b)) if a == b => return false,
            _ => AbsConst::Top,
        };
        let changed = *self != merged;
        *self = merged;
        changed
    }

    /// The constant value, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            AbsConst::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// A constant environment: one [`AbsConst`] per slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstEnv {
    /// Slot-indexed abstract constants.
    pub vals: Vec<AbsConst>,
}

impl ConstEnv {
    fn bottom(n: usize) -> ConstEnv {
        ConstEnv { vals: vec![AbsConst::Bot; n] }
    }

    /// The abstract constant of `name` under `universe`.
    pub fn of(&self, universe: &VarUniverse, name: &str) -> AbsConst {
        universe.slot(name).map_or(AbsConst::Top, |s| self.vals[s].clone())
    }
}

/// The constant-propagation problem.
pub struct ConstProp<'a> {
    universe: &'a VarUniverse,
}

impl<'a> ConstProp<'a> {
    /// A constant-propagation instance over `universe`.
    pub fn new(universe: &'a VarUniverse) -> ConstProp<'a> {
        ConstProp { universe }
    }

    fn set(&self, env: &mut ConstEnv, name: &str, v: AbsConst) {
        if let Some(slot) = self.universe.slot(name) {
            env.vals[slot] =
                if self.universe.is_shadowed(slot) { AbsConst::Top } else { v };
        }
    }

    /// Evaluates `expr` in `env`.
    pub fn eval(&self, expr: &Expr, env: &ConstEnv) -> AbsConst {
        eval(expr, env, self.universe)
    }
}

impl Dataflow for ConstProp<'_> {
    type Fact = ConstEnv;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> ConstEnv {
        let mut env = ConstEnv::bottom(self.universe.len());
        for slot in 0..self.universe.len() {
            if self.universe.is_param(slot) || self.universe.is_shadowed(slot) {
                env.vals[slot] = AbsConst::Top;
            }
        }
        env
    }

    fn init(&self) -> ConstEnv {
        ConstEnv::bottom(self.universe.len())
    }

    fn join(&self, into: &mut ConstEnv, from: &ConstEnv) -> bool {
        let mut changed = false;
        for (a, b) in into.vals.iter_mut().zip(&from.vals) {
            changed |= a.join(b);
        }
        changed
    }

    fn transfer_stmt(&self, stmt: &Stmt, env: &mut ConstEnv) {
        match &stmt.kind {
            StmtKind::Let { name, init, .. } => {
                let v = self.eval(init, env);
                self.set(env, name, v);
            }
            StmtKind::Assign { target: LValue::Var(name), op, value } => {
                let rhs = self.eval(value, env);
                let v = match op {
                    AssignOp::Set => rhs,
                    _ => {
                        let cur = env.of(self.universe, name);
                        apply_binop(compound_op(*op), &cur, &rhs)
                    }
                };
                self.set(env, name, v);
            }
            StmtKind::Assign { target: LValue::Index(name, idx), op, value } => {
                let cur = env.of(self.universe, name);
                let idx_v = self.eval(idx, env);
                let rhs = self.eval(value, env);
                let folded = match (&cur, &idx_v, &rhs) {
                    (
                        AbsConst::Const(Value::Array(arr)),
                        AbsConst::Const(Value::Int(i)),
                        AbsConst::Const(Value::Int(v)),
                    ) if *i >= 0 && (*i as usize) < arr.len() => {
                        let mut arr = arr.clone();
                        let elem = match op {
                            AssignOp::Set => Some(*v),
                            AssignOp::Add => arr[*i as usize].checked_add(*v),
                            AssignOp::Sub => arr[*i as usize].checked_sub(*v),
                            AssignOp::Mul => arr[*i as usize].checked_mul(*v),
                        };
                        match elem {
                            Some(e) => {
                                arr[*i as usize] = e;
                                AbsConst::Const(Value::Array(arr))
                            }
                            None => AbsConst::Top,
                        }
                    }
                    _ => AbsConst::Top,
                };
                self.set(env, name, folded);
            }
            StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue => {}
            // Guards carry no state change; control statements never appear
            // as block atoms.
            StmtKind::If { .. } | StmtKind::While { .. } | StmtKind::For { .. } => {}
        }
    }

    fn refine_edge(&self, cond: &Expr, taken: bool, env: &mut ConstEnv) {
        refine(self, cond, taken, env);
    }
}

fn compound_op(op: AssignOp) -> BinOp {
    match op {
        AssignOp::Set => unreachable!("Set handled by caller"),
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
    }
}

/// Narrows `env` with the knowledge `cond == taken`.
fn refine(cp: &ConstProp<'_>, cond: &Expr, taken: bool, env: &mut ConstEnv) {
    match &cond.kind {
        ExprKind::Var(name) => cp.set(env, name, AbsConst::Const(Value::Bool(taken))),
        ExprKind::Unary(UnOp::Not, inner) => refine(cp, inner, !taken, env),
        // `a && b` true means both evaluated to true; `a || b` false means
        // both evaluated to false (short-circuit reached b).
        ExprKind::Binary(BinOp::And, a, b) if taken => {
            refine(cp, a, true, env);
            refine(cp, b, true, env);
        }
        ExprKind::Binary(BinOp::Or, a, b) if !taken => {
            refine(cp, a, false, env);
            refine(cp, b, false, env);
        }
        ExprKind::Binary(op @ (BinOp::Eq | BinOp::Ne), a, b) => {
            // x == e (taken) or x != e (not taken) pins x to e's constant.
            let equal = (*op == BinOp::Eq) == taken;
            if equal {
                for (var_side, other) in [(a, b), (b, a)] {
                    if let ExprKind::Var(name) = &var_side.kind {
                        if let AbsConst::Const(v) = cp.eval(other, env) {
                            cp.set(env, name, AbsConst::Const(v));
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

/// Abstract expression evaluation. ⊥ operands propagate (unreachable);
/// anything the interpreter would fault on yields ⊤.
fn eval(expr: &Expr, env: &ConstEnv, universe: &VarUniverse) -> AbsConst {
    match &expr.kind {
        ExprKind::IntLit(v) => AbsConst::Const(Value::Int(*v)),
        ExprKind::BoolLit(b) => AbsConst::Const(Value::Bool(*b)),
        ExprKind::StrLit(s) => AbsConst::Const(Value::Str(s.clone())),
        ExprKind::Var(name) => env.of(universe, name),
        ExprKind::Unary(UnOp::Neg, inner) => match eval(inner, env, universe) {
            AbsConst::Const(Value::Int(v)) => {
                v.checked_neg().map_or(AbsConst::Top, |n| AbsConst::Const(Value::Int(n)))
            }
            AbsConst::Bot => AbsConst::Bot,
            _ => AbsConst::Top,
        },
        ExprKind::Unary(UnOp::Not, inner) => match eval(inner, env, universe) {
            AbsConst::Const(Value::Bool(b)) => AbsConst::Const(Value::Bool(!b)),
            AbsConst::Bot => AbsConst::Bot,
            _ => AbsConst::Top,
        },
        ExprKind::Binary(BinOp::And, l, r) => match eval(l, env, universe) {
            AbsConst::Const(Value::Bool(false)) => AbsConst::Const(Value::Bool(false)),
            AbsConst::Const(Value::Bool(true)) => eval_bool_operand(r, env, universe),
            AbsConst::Bot => AbsConst::Bot,
            _ => match eval(r, env, universe) {
                // Unknown && false is false on every non-faulting path.
                AbsConst::Const(Value::Bool(false)) => AbsConst::Const(Value::Bool(false)),
                AbsConst::Bot => AbsConst::Bot,
                _ => AbsConst::Top,
            },
        },
        ExprKind::Binary(BinOp::Or, l, r) => match eval(l, env, universe) {
            AbsConst::Const(Value::Bool(true)) => AbsConst::Const(Value::Bool(true)),
            AbsConst::Const(Value::Bool(false)) => eval_bool_operand(r, env, universe),
            AbsConst::Bot => AbsConst::Bot,
            _ => match eval(r, env, universe) {
                AbsConst::Const(Value::Bool(true)) => AbsConst::Const(Value::Bool(true)),
                AbsConst::Bot => AbsConst::Bot,
                _ => AbsConst::Top,
            },
        },
        ExprKind::Binary(op, l, r) => {
            let a = eval(l, env, universe);
            let b = eval(r, env, universe);
            apply_binop(*op, &a, &b)
        }
        ExprKind::Index(base, idx) => {
            match (eval(base, env, universe), eval(idx, env, universe)) {
                (AbsConst::Bot, _) | (_, AbsConst::Bot) => AbsConst::Bot,
                (AbsConst::Const(Value::Array(arr)), AbsConst::Const(Value::Int(i)))
                    if i >= 0 && (i as usize) < arr.len() =>
                {
                    AbsConst::Const(Value::Int(arr[i as usize]))
                }
                (AbsConst::Const(Value::Str(s)), AbsConst::Const(Value::Int(i)))
                    if i >= 0 && (i as usize) < s.len() =>
                {
                    AbsConst::Const(Value::Int(i64::from(s.as_bytes()[i as usize])))
                }
                _ => AbsConst::Top,
            }
        }
        ExprKind::Call(builtin, args) => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                match eval(a, env, universe) {
                    AbsConst::Const(v) => values.push(v),
                    AbsConst::Bot => return AbsConst::Bot,
                    AbsConst::Top => return AbsConst::Top,
                }
            }
            apply_builtin(*builtin, &values)
        }
        ExprKind::ArrayLit(elems) => {
            let mut out = Vec::with_capacity(elems.len());
            for e in elems {
                match eval(e, env, universe) {
                    AbsConst::Const(Value::Int(v)) => out.push(v),
                    AbsConst::Bot => return AbsConst::Bot,
                    _ => return AbsConst::Top,
                }
            }
            AbsConst::Const(Value::Array(out))
        }
    }
}

/// Evaluates the second operand of a short-circuit operator, coercing
/// non-bool constants (a type fault at runtime) to ⊤.
fn eval_bool_operand(expr: &Expr, env: &ConstEnv, universe: &VarUniverse) -> AbsConst {
    match eval(expr, env, universe) {
        v @ (AbsConst::Const(Value::Bool(_)) | AbsConst::Bot) => v,
        _ => AbsConst::Top,
    }
}

/// Non-short-circuit binary operators, mirroring `interp::eval_binop`.
fn apply_binop(op: BinOp, a: &AbsConst, b: &AbsConst) -> AbsConst {
    use AbsConst::{Bot, Const, Top};
    // Multiplication by a constant zero absorbs an unknown int operand:
    // every non-faulting evaluation of the other side is an int (else the
    // statement faults), and 0 * x never overflows.
    if op == BinOp::Mul {
        if let (Const(Value::Int(0)), _) | (_, Const(Value::Int(0))) = (a, b) {
            if !matches!((a, b), (Bot, _) | (_, Bot)) {
                return Const(Value::Int(0));
            }
        }
    }
    match (a, b) {
        (Bot, _) | (_, Bot) => Bot,
        (Const(x), Const(y)) => fold_binop(op, x, y).map_or(Top, Const),
        _ => Top,
    }
}

/// Concrete fold; `None` on anything the interpreter faults on.
fn fold_binop(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    use Value::{Bool, Int, Str};
    match op {
        BinOp::Add => match (l, r) {
            (Int(a), Int(b)) => a.checked_add(*b).map(Int),
            (Str(a), Str(b)) => {
                (a.len() + b.len() <= MAX_CONST_LEN * 16).then(|| Str(format!("{a}{b}")))
            }
            _ => None,
        },
        BinOp::Sub => match (l, r) {
            (Int(a), Int(b)) => a.checked_sub(*b).map(Int),
            _ => None,
        },
        BinOp::Mul => match (l, r) {
            (Int(a), Int(b)) => a.checked_mul(*b).map(Int),
            _ => None,
        },
        BinOp::Div => match (l, r) {
            (Int(_), Int(0)) => None,
            (Int(a), Int(b)) => a.checked_div(*b).map(Int),
            _ => None,
        },
        BinOp::Mod => match (l, r) {
            (Int(_), Int(0)) => None,
            (Int(a), Int(b)) => a.checked_rem(*b).map(Int),
            _ => None,
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (l, r) {
            (Int(a), Int(b)) => Some(Bool(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                _ => a >= b,
            })),
            _ => None,
        },
        BinOp::Eq => Some(Bool(l == r)),
        BinOp::Ne => Some(Bool(l != r)),
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops handled by caller"),
    }
}

/// Builtin folds mirroring `interp::eval_builtin`; `None`-like faults → ⊤.
fn apply_builtin(builtin: Builtin, args: &[Value]) -> AbsConst {
    use Value::{Int, Str};
    let folded: Option<Value> = match builtin {
        Builtin::Len => match &args[0] {
            Value::Array(a) => Some(Int(a.len() as i64)),
            Str(s) => Some(Int(s.len() as i64)),
            _ => None,
        },
        Builtin::Substring => match (&args[0], &args[1], &args[2]) {
            (Str(s), Int(i), Int(j)) if *i >= 0 && j >= i && (*j as usize) <= s.len() => {
                Some(Str(s[*i as usize..*j as usize].to_string()))
            }
            _ => None,
        },
        Builtin::Abs => match &args[0] {
            Int(v) => v.checked_abs().map(Int),
            _ => None,
        },
        Builtin::Min | Builtin::Max => match (&args[0], &args[1]) {
            (Int(a), Int(b)) => {
                Some(Int(if builtin == Builtin::Min { *a.min(b) } else { *a.max(b) }))
            }
            _ => None,
        },
        Builtin::NewArray => match (&args[0], &args[1]) {
            (Int(n), Int(v)) if *n >= 0 && (*n as usize) <= MAX_CONST_LEN => {
                Some(Value::Array(vec![*v; *n as usize]))
            }
            _ => None,
        },
        Builtin::Push => match (&args[0], &args[1]) {
            (Value::Array(a), Int(v)) if a.len() < MAX_CONST_LEN => {
                let mut a = a.clone();
                a.push(*v);
                Some(Value::Array(a))
            }
            _ => None,
        },
        Builtin::CharToStr => match &args[0] {
            Int(c) => {
                let c = u8::try_from(*c & 0x7f).unwrap_or(b'?');
                Some(Str((c as char).to_string()))
            }
            _ => None,
        },
    };
    folded.map_or(AbsConst::Top, AbsConst::Const)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::{solve, stmt_facts};
    use minilang::Program;

    fn analyzed(src: &str) -> (Program, VarUniverse) {
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        (p, u)
    }

    fn const_at_return(src: &str, name: &str) -> AbsConst {
        let (p, u) = analyzed(src);
        let cfg = Cfg::build(&p);
        let cp = ConstProp::new(&u);
        let sol = solve(&cfg, &cp);
        let facts = stmt_facts(&cfg, &cp, &sol);
        let ret = p
            .statements()
            .into_iter()
            .find(|s| matches!(s.kind, StmtKind::Return(_)))
            .expect("program has a return");
        facts[&ret.id].0.of(&u, name)
    }

    #[test]
    fn straight_line_folding() {
        let v = const_at_return(
            "fn f() -> int { let x: int = 2 * 3 + 1; let y: int = x - 2; return y; }",
            "y",
        );
        assert_eq!(v, AbsConst::Const(Value::Int(5)));
    }

    #[test]
    fn join_of_different_branch_values_is_top() {
        let v = const_at_return(
            "fn f(b: bool) -> int {
                let y: int = 0;
                if (b) { y = 1; } else { y = 2; }
                return y;
            }",
            "y",
        );
        assert_eq!(v, AbsConst::Top);
    }

    #[test]
    fn same_value_on_both_branches_stays_const() {
        let v = const_at_return(
            "fn f(b: bool) -> int {
                let y: int = 0;
                if (b) { y = 3; } else { y = 3; }
                return y;
            }",
            "y",
        );
        assert_eq!(v, AbsConst::Const(Value::Int(3)));
    }

    #[test]
    fn loop_invariant_constant_survives_the_loop() {
        let v = const_at_return(
            "fn f(n: int) -> int {
                let z: int = 0;
                let i: int = 0;
                while (i < n) { z *= 1; i += 1; }
                return z;
            }",
            "z",
        );
        // z = 0, and 0 * 1 = 0 on the back edge: still constant.
        assert_eq!(v, AbsConst::Const(Value::Int(0)));
    }

    #[test]
    fn multiply_by_zero_absorbs_unknowns() {
        let v = const_at_return("fn f(x: int) -> int { let y: int = x * 0; return y; }", "y");
        assert_eq!(v, AbsConst::Const(Value::Int(0)));
    }

    #[test]
    fn shadowed_slot_is_pinned_to_top() {
        let v = const_at_return(
            "fn f(b: bool) -> int {
                let y: int = 2;
                if (b) { let y: int = 3; } else { let y: int = 3; }
                return y;
            }",
            "y",
        );
        // Both inner lets write 3 but the returned y is the outer 2: the
        // shared slot must not claim Const(3).
        assert_eq!(v, AbsConst::Top);
    }

    #[test]
    fn overflow_does_not_fold() {
        let v = const_at_return(
            &format!("fn f() -> int {{ let y: int = {} + 1; return y; }}", i64::MAX),
            "y",
        );
        assert_eq!(v, AbsConst::Top);
    }

    #[test]
    fn refinement_learns_equality_on_taken_edge() {
        let (p, u) = analyzed(
            "fn f(x: int) -> int {
                if (x == 7) { return x; }
                return 0;
            }",
        );
        let cfg = Cfg::build(&p);
        let cp = ConstProp::new(&u);
        let sol = solve(&cfg, &cp);
        let facts = stmt_facts(&cfg, &cp, &sol);
        // First return sits in the then-branch: x is pinned to 7 there.
        let then_ret = p.statements()[1].id;
        assert_eq!(facts[&then_ret].0.of(&u, "x"), AbsConst::Const(Value::Int(7)));
    }

    #[test]
    fn builtin_folds() {
        let v = const_at_return(
            "fn f() -> int {
                let a: array<int> = newArray(3, 9);
                let s: str = \"ab\" + \"c\";
                return len(a) + len(s) + abs(0 - 2) + min(4, 1);
            }",
            "a",
        );
        assert_eq!(v, AbsConst::Const(Value::Array(vec![9, 9, 9])));
    }
}
