//! A fixed-width bitset used as the fact type of the set-based analyses
//! (reaching definitions, liveness). Word-parallel union keeps the worklist
//! solver cheap even on programs with many definition sites.

/// A set over `0..len` backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set over a universe of `len` elements.
    pub fn new(len: usize) -> BitSet {
        BitSet { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Number of elements in the universe (not the population count).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns true if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | *b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// `self \= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// True if `self ∩ other` is empty.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True if no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut bits = *w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        b.insert(65);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(65));
    }

    #[test]
    fn subtract_and_disjoint() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(3);
        a.insert(4);
        b.insert(4);
        a.subtract(&b);
        assert!(a.contains(3) && !a.contains(4));
        assert!(a.is_disjoint(&b));
    }
}
