//! `LGRS1` payload codecs for analysis artifacts, plus store-aware
//! wrappers the rest of the stack calls.
//!
//! Two artifact families live here: distilled dataflow facts
//! ([`ProgramFacts`], consumed by symexec's pruning and the corpus
//! static screen) and lint reports ([`LintReport`], consumed by
//! `liger-lint` and the corpus filter). Both codecs emit their
//! unordered containers in sorted order so an artifact's bytes are a
//! pure function of its value — the warm-rerun bitwise-identity gate
//! depends on that.
//!
//! The wrappers ([`facts_with_store`], [`lint_with_store`]) implement
//! the red-green contract: key = content hash of the source, so an
//! edited program misses automatically; fingerprint = codec version,
//! so a codec change invalidates every cached artifact at once rather
//! than misparsing old bytes.

use crate::facts::{program_facts, ProgramFacts};
use crate::lint::{self, Diagnostic, LintKind, LintReport};
use minilang::Program;
use store::{ArtifactKind, ByteReader, ByteWriter, Store, StoreError};

/// Fingerprint stamped on cached facts artifacts. Bump when the codec
/// or the analysis stack's observable output changes.
pub const FACTS_FINGERPRINT: &str = "facts@1";
/// Fingerprint stamped on cached lint artifacts.
pub const LINT_FINGERPRINT: &str = "lint@1";

/// Every lint kind, in its stable wire order. The wire tag is the
/// index; appending new kinds is compatible, reordering is not.
const LINT_KINDS: [LintKind; 11] = [
    LintKind::DeadCode,
    LintKind::UnusedDef,
    LintKind::GuardAlwaysTrue,
    LintKind::GuardAlwaysFalse,
    LintKind::PossiblyUninitRead,
    LintKind::DivergentLoop,
    LintKind::MaybeDivergentLoop,
    LintKind::DivisionByZero,
    LintKind::SelfAssignment,
    LintKind::AlwaysTakenGuard,
    LintKind::WriteNeverRead,
];

fn kind_tag(kind: LintKind) -> u8 {
    LINT_KINDS.iter().position(|&k| k == kind).expect("kind in wire table") as u8
}

/// Serializes program facts. Map/set entries are written in ascending
/// statement-id order, so equal facts always produce equal bytes.
#[must_use]
pub fn facts_to_bytes(facts: &ProgramFacts) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let mut decided: Vec<_> = facts.decided.iter().map(|(&s, &b)| (s, b)).collect();
    decided.sort_unstable();
    w.u32(decided.len() as u32);
    for (stmt, taken) in decided {
        w.stmt(stmt);
        w.u8(u8::from(taken));
    }
    let mut reachable: Vec<_> = facts.reachable.iter().copied().collect();
    reachable.sort_unstable();
    w.u32(reachable.len() as u32);
    for stmt in reachable {
        w.stmt(stmt);
    }
    w.u64(facts.num_blocks as u64);
    w.u64(facts.num_loops as u64);
    w.into_bytes()
}

/// Parses a facts payload written by [`facts_to_bytes`].
///
/// # Errors
///
/// Typed [`StoreError`] on truncation, trailing bytes, or an invalid
/// boolean tag.
pub fn facts_from_bytes(buf: &[u8]) -> Result<ProgramFacts, StoreError> {
    let mut r = ByteReader::new(buf);
    let ndecided = r.u32()? as usize;
    let mut decided = std::collections::HashMap::with_capacity(ndecided.min(1 << 20));
    for _ in 0..ndecided {
        let stmt = r.stmt()?;
        let taken = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(StoreError::BadRecord),
        };
        decided.insert(stmt, taken);
    }
    let nreach = r.u32()? as usize;
    let mut reachable = std::collections::HashSet::with_capacity(nreach.min(1 << 20));
    for _ in 0..nreach {
        reachable.insert(r.stmt()?);
    }
    let num_blocks = usize::try_from(r.u64()?).map_err(|_| StoreError::BadRecord)?;
    let num_loops = usize::try_from(r.u64()?).map_err(|_| StoreError::BadRecord)?;
    r.finish()?;
    Ok(ProgramFacts { decided, reachable, num_blocks, num_loops })
}

/// Serializes a lint report. Severity is derived from the kind, so only
/// the kind tag travels.
#[must_use]
pub fn lint_to_bytes(report: &LintReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(report.diagnostics.len() as u32);
    for d in &report.diagnostics {
        w.u8(kind_tag(d.kind));
        w.stmt(d.stmt);
        w.u32(d.line);
        w.str(&d.message);
    }
    w.into_bytes()
}

/// Parses a lint payload written by [`lint_to_bytes`].
///
/// # Errors
///
/// Typed [`StoreError`] on truncation, trailing bytes, an unknown kind
/// tag, or a non-UTF-8 message.
pub fn lint_from_bytes(buf: &[u8]) -> Result<LintReport, StoreError> {
    let mut r = ByteReader::new(buf);
    let n = r.u32()? as usize;
    let mut diagnostics = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = r.u8()? as usize;
        let kind = *LINT_KINDS.get(tag).ok_or(StoreError::BadRecord)?;
        let stmt = r.stmt()?;
        let line = r.u32()?;
        let message = r.str()?;
        diagnostics.push(Diagnostic { kind, severity: kind.severity(), stmt, line, message });
    }
    r.finish()?;
    Ok(LintReport { diagnostics })
}

/// Computes (or loads) the distilled facts for `program`, keyed by
/// `key` — the FNV-1a hash of the source the program was parsed from.
/// With no store this is exactly [`program_facts`].
///
/// # Errors
///
/// Typed [`StoreError`] when the store itself is corrupt; a absent or
/// stale entry silently recomputes instead.
pub fn facts_with_store(
    program: &Program,
    key: u64,
    store: Option<&Store>,
) -> Result<ProgramFacts, StoreError> {
    if let Some(store) = store {
        if let Some(payload) = store.get(ArtifactKind::Facts, key, FACTS_FINGERPRINT)? {
            return facts_from_bytes(&payload);
        }
        let facts = program_facts(program);
        store.put(ArtifactKind::Facts, key, FACTS_FINGERPRINT, &facts_to_bytes(&facts))?;
        Ok(facts)
    } else {
        Ok(program_facts(program))
    }
}

/// Runs (or loads) the lint pass for `program`, keyed by `key` — the
/// FNV-1a hash of the source. With no store this is exactly
/// [`lint::run`].
///
/// # Errors
///
/// Typed [`StoreError`] when the store itself is corrupt.
pub fn lint_with_store(
    program: &Program,
    key: u64,
    store: Option<&Store>,
) -> Result<LintReport, StoreError> {
    if let Some(store) = store {
        if let Some(payload) = store.get(ArtifactKind::Lint, key, LINT_FINGERPRINT)? {
            return lint_from_bytes(&payload);
        }
        let report = lint::run(program);
        store.put(ArtifactKind::Lint, key, LINT_FINGERPRINT, &lint_to_bytes(&report))?;
        Ok(report)
    } else {
        Ok(lint::run(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::StmtId;

    fn sample_program() -> Program {
        let src = "fn f(n: int) -> int {\n\
                   let s: int = 0;\n\
                   if (true) { s = s + n; }\n\
                   while (false) { s = s - 1; }\n\
                   return s;\n\
                   }";
        let mut p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        p.assign_ids();
        p
    }

    #[test]
    fn facts_roundtrip_is_lossless_and_deterministic() {
        let p = sample_program();
        let facts = program_facts(&p);
        assert!(!facts.decided.is_empty(), "sample must decide a guard");
        let bytes = facts_to_bytes(&facts);
        let back = facts_from_bytes(&bytes).unwrap();
        assert_eq!(back.decided, facts.decided);
        assert_eq!(back.reachable, facts.reachable);
        assert_eq!(back.num_blocks, facts.num_blocks);
        assert_eq!(back.num_loops, facts.num_loops);
        // Bitwise determinism despite HashMap/HashSet iteration order:
        // re-encoding the decoded value gives identical bytes, across
        // fresh containers with different hash seeds.
        assert_eq!(facts_to_bytes(&back), bytes);
    }

    #[test]
    fn lint_roundtrip_preserves_diagnostics() {
        let p = sample_program();
        let report = lint::run(&p);
        assert!(!report.diagnostics.is_empty(), "sample must lint dirty");
        let bytes = lint_to_bytes(&report);
        let back = lint_from_bytes(&bytes).unwrap();
        assert_eq!(back.diagnostics, report.diagnostics);
    }

    #[test]
    fn corrupt_payloads_are_typed() {
        let p = sample_program();
        let bytes = facts_to_bytes(&program_facts(&p));
        for cut in 0..bytes.len() {
            assert!(facts_from_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut long = bytes;
        long.push(0);
        assert_eq!(facts_from_bytes(&long).unwrap_err(), StoreError::TrailingBytes);

        let mut lint_bytes = lint_to_bytes(&lint::run(&p));
        lint_bytes[4] = 200; // first kind tag -> unknown
        assert_eq!(lint_from_bytes(&lint_bytes).unwrap_err(), StoreError::BadRecord);
    }

    #[test]
    fn store_wrappers_hit_on_second_call() {
        let dir =
            std::env::temp_dir().join(format!("lgrs-analysis-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        let p = sample_program();
        let key = store::hash::fnv1a_str("sample-src");

        let cold = facts_with_store(&p, key, Some(&store)).unwrap();
        let warm = facts_with_store(&p, key, Some(&store)).unwrap();
        assert_eq!(cold.decided, warm.decided);
        assert_eq!(cold.reachable, warm.reachable);
        assert!(!store.is_empty(ArtifactKind::Facts).unwrap());

        let cold = lint_with_store(&p, key, Some(&store)).unwrap();
        let warm = lint_with_store(&p, key, Some(&store)).unwrap();
        assert_eq!(cold.diagnostics, warm.diagnostics);
        assert!(!store.is_empty(ArtifactKind::Lint).unwrap());

        // A different key (an edited program) does not see the entry.
        assert_eq!(
            store.get(ArtifactKind::Facts, key ^ 1, FACTS_FINGERPRINT).unwrap(),
            None
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_kind_tag_roundtrips() {
        for (i, &kind) in LINT_KINDS.iter().enumerate() {
            assert_eq!(kind_tag(kind) as usize, i);
            let report = LintReport {
                diagnostics: vec![Diagnostic {
                    kind,
                    severity: kind.severity(),
                    stmt: StmtId(3),
                    line: 7,
                    message: kind.name().to_string(),
                }],
            };
            let back = lint_from_bytes(&lint_to_bytes(&report)).unwrap();
            assert_eq!(back.diagnostics, report.diagnostics);
        }
    }
}
