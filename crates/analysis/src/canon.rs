//! The analysis-driven program canonicalizer.
//!
//! [`canonicalize`] rewrites a (typechecked, id-assigned) MiniLang
//! program into a canonical form that is observationally equivalent on
//! the concrete interpreter — same return value or same runtime error
//! for every input — while collapsing the syntactic degrees of freedom
//! the datagen variation engine exercises: loop style (`for` vs
//! `while`), compound-assignment sugar, `i < n` vs `i <= n - 1`
//! comparisons, `x += x` vs `x *= 2`, identifier choice, dead
//! distractor code, and statically decided guards. Two programs that
//! are syntactic variants of one another therefore share a
//! [`CanonProgram::hash`], which the memo cache, the serve router, and
//! the embedding index use as a *semantic* key tier.
//!
//! # The rewrite catalogue
//!
//! Pass 0 alpha-uniquifies every binding (scope-aware), so later passes
//! can hoist and merge scopes without capture. The fixpoint loop then
//! re-runs the full dataflow stack ([`Analyzed::of`]) each round and
//! applies, innermost-first:
//!
//! 1. **Compound-assign desugaring** — `x op= e` → `x = x op e`
//!    (always for variable targets; for array targets `a[i] op= e`
//!    only when `i` and `e` are [`total`], since the desugared form
//!    evaluates `i` twice and reads `a[i]` before `e`, which must not
//!    change which fault surfaces).
//! 2. **Constant folding** — an expression whose [`ConstProp`] value is
//!    a known int/bool/str constant *and* which is [`total`]
//!    (syntactically incapable of faulting) folds to the literal. The
//!    totality side-condition is what keeps folding sound: constprop
//!    facts are conditioned on the expression producing a value, so a
//!    possibly-faulting expression must stay.
//! 3. **Decided-guard elimination** — a guard the interval/constprop
//!    stack decides (and whose condition is total) disappears: an `if`
//!    inlines its taken branch, a false `while` vanishes, a false `for`
//!    leaves only its initializer.
//! 4. **Dead-statement elimination** — liveness-dead assignments with
//!    total right-hand sides, self-assignments, statements after a
//!    `return`/`break`/`continue`, and empty `if`/`else` arms.
//! 5. **Comparison normalization** — `a > b` → `b < a`, `a >= b` →
//!    `b <= a` (both operands total, so the operand-order swap cannot
//!    reorder faults), and `a <= b - 1` → `a < b` when the interval of
//!    `b` proves `b - 1` cannot underflow.
//! 6. **Commutative normalization** — operands of `*`, `==`, `!=`, and
//!    integer `+` are sorted by a total structural order when both are
//!    total; `x + x` → `x * 2` (identical overflow behavior).
//! 7. **For→while desugaring** — `for (init; c; u) B` →
//!    `init; while (c) { B; u }` when `B` has no direct `continue`
//!    (which would skip `u`).
//!
//! Every rewrite either shrinks the AST or strictly reduces a bounded
//! measure (compound assigns, `>`/`>=` operators, unsorted commutative
//! pairs, `for` loops), so the fixpoint terminates; `MAX_ROUNDS` is a
//! belt-and-braces cap. A final pass renames bindings in definition
//! order (`p0..` for params, `v0..` for locals), erases the function
//! name and line numbers, and reassigns statement ids — after which
//! [`canon_hash`] is a pure function of program semantics-relevant
//! structure. Idempotence (`canon(canon(p)) == canon(p)`) and
//! differential equivalence are property-tested in
//! `tests/analysis_properties.rs` and gated over the full template
//! corpus in CI.

use crate::facts::Analyzed;
use interp::Value;
use minilang::{
    AssignOp, BinOp, Block, Builtin, Expr, ExprKind, LValue, Program, Stmt, StmtId, StmtKind, Type,
    UnOp,
};
use std::collections::HashMap;

/// Upper bound on fixpoint rounds; each round re-runs the dataflow
/// stack, and every enabled rewrite strictly decreases a bounded
/// measure, so real programs converge in a handful of rounds.
const MAX_ROUNDS: usize = 16;

/// A canonicalized program plus its stable semantic key.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonProgram {
    /// The canonical form: ids assigned, lines zeroed, bindings renamed
    /// in definition order, function name erased to `f`.
    pub program: Program,
    /// FNV-1a structural hash of the canonical form — the semantic key
    /// tier used by the memo cache, serve router, and embedding index.
    pub hash: u64,
    /// How many individual rewrites fired (also on `canon.rewrites`).
    pub rewrites: u64,
    /// How many fixpoint rounds ran before convergence.
    pub rounds: u32,
}

/// Canonicalizes `program` (which must be typechecked with ids
/// assigned) and hashes the result. The input is not modified.
pub fn canonicalize(program: &Program) -> CanonProgram {
    let _span = obs::span!("analysis.canon");
    obs::counter!("canon.programs").inc();
    let mut p = program.clone();
    let mut rewrites = 0u64;

    alpha_uniquify(&mut p);
    p.assign_ids();

    let mut rounds = 0u32;
    for _ in 0..MAX_ROUNDS {
        rounds += 1;
        let fired = run_round(&mut p);
        rewrites += fired;
        if fired == 0 {
            break;
        }
        p.assign_ids();
    }

    rename_def_order(&mut p);
    p.function.name = "f".to_string();
    zero_lines(&mut p.function.body);
    p.assign_ids();

    obs::counter!("canon.rewrites").add(rewrites);
    let hash = canon_hash(&p);
    CanonProgram { program: p, hash, rewrites, rounds }
}

/// One fixpoint round: analyze, then apply every enabled rewrite once.
/// Returns the number of rewrites that fired.
fn run_round(p: &mut Program) -> u64 {
    let analyzed = Analyzed::of(p);
    let mut rw = Rewriter::new(&analyzed);
    let mut body = p.function.body.clone();
    rw.rewrite_block(&mut body);
    let fired = rw.fired;
    if fired > 0 {
        p.function.body = body;
    }
    fired
}

// ---------------------------------------------------------------------------
// Totality: syntactic proof that an expression cannot fault.
// ---------------------------------------------------------------------------

/// True when evaluating `e` can never produce a runtime error, for any
/// well-typed environment: no checked arithmetic, no indexing, no
/// partial builtins. Total expressions may be folded to their constant
/// value, reordered, or deleted without changing observable behavior.
pub fn total(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Var(_) => true,
        ExprKind::Unary(UnOp::Not, a) => total(a),
        // `-e` overflows only at i64::MIN; a literal proves the range.
        ExprKind::Unary(UnOp::Neg, a) => matches!(a.kind, ExprKind::IntLit(v) if v != i64::MIN),
        ExprKind::Binary(op, a, b) => match op {
            // Comparisons and short-circuit logic never fault; checked
            // arithmetic can overflow (or concat — which is total, but
            // indistinguishable from int `+` without types).
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                total(a) && total(b)
            }
            BinOp::And | BinOp::Or => total(a) && total(b),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => false,
        },
        ExprKind::Index(..) => false,
        ExprKind::Call(b, args) => match b {
            Builtin::Len | Builtin::Min | Builtin::Max | Builtin::Push => args.iter().all(total),
            // `abs(i64::MIN)` overflows; substring/newArray/charToStr
            // have partial domains.
            Builtin::Abs | Builtin::Substring | Builtin::NewArray | Builtin::CharToStr => false,
        },
        ExprKind::ArrayLit(elems) => elems.iter().all(total),
    }
}

// ---------------------------------------------------------------------------
// Total structural order on expressions (commutative normalization).
// ---------------------------------------------------------------------------

fn expr_rank(e: &ExprKind) -> u8 {
    match e {
        ExprKind::IntLit(_) => 0,
        ExprKind::BoolLit(_) => 1,
        ExprKind::StrLit(_) => 2,
        ExprKind::Var(_) => 3,
        ExprKind::Unary(..) => 4,
        ExprKind::Binary(..) => 5,
        ExprKind::Index(..) => 6,
        ExprKind::Call(..) => 7,
        ExprKind::ArrayLit(_) => 8,
    }
}

/// A total, deterministic order on expressions: rank first, then
/// contents lexicographically. Used to sort commutative operands.
pub fn cmp_expr(a: &Expr, b: &Expr) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let r = expr_rank(&a.kind).cmp(&expr_rank(&b.kind));
    if r != Ordering::Equal {
        return r;
    }
    match (&a.kind, &b.kind) {
        (ExprKind::IntLit(x), ExprKind::IntLit(y)) => x.cmp(y),
        (ExprKind::BoolLit(x), ExprKind::BoolLit(y)) => x.cmp(y),
        (ExprKind::StrLit(x), ExprKind::StrLit(y)) => x.cmp(y),
        (ExprKind::Var(x), ExprKind::Var(y)) => x.cmp(y),
        (ExprKind::Unary(xo, xa), ExprKind::Unary(yo, ya)) => {
            (*xo as u8).cmp(&(*yo as u8)).then_with(|| cmp_expr(xa, ya))
        }
        (ExprKind::Binary(xo, xa, xb), ExprKind::Binary(yo, ya, yb)) => (*xo as u8)
            .cmp(&(*yo as u8))
            .then_with(|| cmp_expr(xa, ya))
            .then_with(|| cmp_expr(xb, yb)),
        (ExprKind::Index(xa, xb), ExprKind::Index(ya, yb)) => {
            cmp_expr(xa, ya).then_with(|| cmp_expr(xb, yb))
        }
        (ExprKind::Call(xb, xs), ExprKind::Call(yb, ys)) => (*xb as u8)
            .cmp(&(*yb as u8))
            .then_with(|| cmp_expr_list(xs, ys)),
        (ExprKind::ArrayLit(xs), ExprKind::ArrayLit(ys)) => cmp_expr_list(xs, ys),
        _ => Ordering::Equal,
    }
}

fn cmp_expr_list(xs: &[Expr], ys: &[Expr]) -> std::cmp::Ordering {
    xs.len()
        .cmp(&ys.len())
        .then_with(|| xs.iter().zip(ys).map(|(x, y)| cmp_expr(x, y)).find(|o| o.is_ne()).unwrap_or(std::cmp::Ordering::Equal))
}

/// Syntactic evidence that an expression is `int`-typed regardless of
/// the environment — needed before reordering `+`, whose string
/// overload (concatenation) is not commutative.
fn definitely_int(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_) => true,
        ExprKind::Unary(UnOp::Neg, _) => true,
        ExprKind::Binary(op, ..) => matches!(
            op,
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        ),
        ExprKind::Call(b, _) => matches!(
            b,
            Builtin::Len | Builtin::Abs | Builtin::Min | Builtin::Max
        ),
        // `a[i]` yields int for both arrays and strings.
        ExprKind::Index(..) => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Pass 0: scope-aware alpha-uniquification.
// ---------------------------------------------------------------------------

/// Renames every binding to a globally unique `__u{k}` placeholder,
/// honoring MiniLang's nested-scope shadowing rules (for-headers open
/// their own scope). After this, hoisting a `for` initializer or
/// inlining a branch can never capture a name.
fn alpha_uniquify(p: &mut Program) {
    let mut next = 0usize;
    let mut scopes: Vec<HashMap<String, String>> = vec![HashMap::new()];
    for q in &mut p.function.params {
        let new = format!("__u{next}");
        next += 1;
        scopes[0].insert(std::mem::replace(&mut q.name, new.clone()), new);
    }
    uniq_block(&mut p.function.body, &mut scopes, &mut next);
}

fn resolve(name: &str, scopes: &[HashMap<String, String>]) -> String {
    for scope in scopes.iter().rev() {
        if let Some(n) = scope.get(name) {
            return n.clone();
        }
    }
    name.to_string()
}

fn uniq_block(b: &mut Block, scopes: &mut Vec<HashMap<String, String>>, next: &mut usize) {
    scopes.push(HashMap::new());
    for s in &mut b.stmts {
        uniq_stmt(s, scopes, next);
    }
    scopes.pop();
}

fn uniq_stmt(s: &mut Stmt, scopes: &mut Vec<HashMap<String, String>>, next: &mut usize) {
    match &mut s.kind {
        StmtKind::Let { name, init, .. } => {
            uniq_expr(init, scopes);
            let new = format!("__u{next}");
            *next += 1;
            scopes
                .last_mut()
                .expect("scope stack never empty")
                .insert(std::mem::take(name), new.clone());
            *name = new;
        }
        StmtKind::Assign { target, value, .. } => {
            uniq_expr(value, scopes);
            match target {
                LValue::Var(n) => *n = resolve(n, scopes),
                LValue::Index(n, idx) => {
                    uniq_expr(idx, scopes);
                    *n = resolve(n, scopes);
                }
            }
        }
        StmtKind::If { cond, then_block, else_block } => {
            uniq_expr(cond, scopes);
            uniq_block(then_block, scopes, next);
            if let Some(e) = else_block {
                uniq_block(e, scopes, next);
            }
        }
        StmtKind::While { cond, body } => {
            uniq_expr(cond, scopes);
            uniq_block(body, scopes, next);
        }
        StmtKind::For { init, cond, update, body } => {
            // The for-header is its own scope wrapping init/cond/update
            // and the body.
            scopes.push(HashMap::new());
            uniq_stmt(init, scopes, next);
            uniq_expr(cond, scopes);
            uniq_stmt(update, scopes, next);
            uniq_block(body, scopes, next);
            scopes.pop();
        }
        StmtKind::Return(Some(e)) => uniq_expr(e, scopes),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

fn uniq_expr(e: &mut Expr, scopes: &[HashMap<String, String>]) {
    match &mut e.kind {
        ExprKind::Var(n) => *n = resolve(n, scopes),
        ExprKind::Unary(_, a) => uniq_expr(a, scopes),
        ExprKind::Binary(_, a, b) => {
            uniq_expr(a, scopes);
            uniq_expr(b, scopes);
        }
        ExprKind::Index(a, b) => {
            uniq_expr(a, scopes);
            uniq_expr(b, scopes);
        }
        ExprKind::Call(_, args) => args.iter_mut().for_each(|a| uniq_expr(a, scopes)),
        ExprKind::ArrayLit(elems) => elems.iter_mut().for_each(|a| uniq_expr(a, scopes)),
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) => {}
    }
}

// ---------------------------------------------------------------------------
// The per-round rewriter.
// ---------------------------------------------------------------------------

struct Rewriter<'a, 'p> {
    a: &'a Analyzed<'p>,
    /// Count of assignments per name across the whole program — a `let`
    /// is only removable when nothing writes the name later.
    writes: HashMap<String, usize>,
    fired: u64,
}

impl<'a, 'p> Rewriter<'a, 'p> {
    fn new(a: &'a Analyzed<'p>) -> Rewriter<'a, 'p> {
        let mut writes: HashMap<String, usize> = HashMap::new();
        for s in a.program.statements() {
            if let StmtKind::Assign { target: LValue::Var(n) | LValue::Index(n, _), .. } = &s.kind {
                *writes.entry(n.clone()).or_insert(0) += 1;
            }
        }
        Rewriter { a, writes, fired: 0 }
    }

    fn hit(&mut self) {
        self.fired += 1;
    }

    /// Whether `name` is live after `id` (conservatively live when the
    /// statement has no liveness fact, e.g. freshly synthesized nodes).
    fn live_after(&self, id: StmtId, name: &str) -> bool {
        match (self.a.live_facts.get(&id), self.a.universe.slot(name)) {
            (Some((_, after)), Some(slot)) => after.contains(slot),
            _ => true,
        }
    }

    /// Folds `e` to a literal when constprop pins its value *and* the
    /// expression is total; otherwise recurses into subexpressions.
    fn fold_expr(&mut self, e: &mut Expr, id: StmtId) {
        if let Some((before, _)) = self.a.const_facts.get(&id) {
            if total(e) && !matches!(e.kind, ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_)) {
                let cp = crate::constprop::ConstProp::new(&self.a.universe);
                if let Some(v) = cp.eval(e, before).as_const() {
                    let lit = match v {
                        Value::Int(n) => Some(ExprKind::IntLit(*n)),
                        Value::Bool(b) => Some(ExprKind::BoolLit(*b)),
                        Value::Str(s) => Some(ExprKind::StrLit(s.clone())),
                        _ => None,
                    };
                    if let Some(kind) = lit {
                        e.kind = kind;
                        self.hit();
                        return;
                    }
                }
            }
        }
        match &mut e.kind {
            ExprKind::Unary(_, a) => self.fold_expr(a, id),
            ExprKind::Binary(_, a, b) => {
                self.fold_expr(a, id);
                self.fold_expr(b, id);
            }
            ExprKind::Index(a, b) => {
                self.fold_expr(a, id);
                self.fold_expr(b, id);
            }
            ExprKind::Call(_, args) => args.iter_mut().for_each(|a| self.fold_expr(a, id)),
            ExprKind::ArrayLit(elems) => elems.iter_mut().for_each(|a| self.fold_expr(a, id)),
            _ => {}
        }
    }

    /// Structural expression normalization: comparison direction,
    /// commutative operand order, `x + x` → `x * 2`, `!!e` → `e`, and
    /// `a <= b - 1` → `a < b` under interval evidence (via `id`).
    fn normalize_expr(&mut self, e: &mut Expr, id: StmtId) {
        // Children first, so parent-level normalization sees canonical
        // operands.
        match &mut e.kind {
            ExprKind::Unary(_, a) => self.normalize_expr(a, id),
            ExprKind::Binary(_, a, b) => {
                self.normalize_expr(a, id);
                self.normalize_expr(b, id);
            }
            ExprKind::Index(a, b) => {
                self.normalize_expr(a, id);
                self.normalize_expr(b, id);
            }
            ExprKind::Call(_, args) => args.iter_mut().for_each(|a| self.normalize_expr(a, id)),
            ExprKind::ArrayLit(elems) => elems.iter_mut().for_each(|a| self.normalize_expr(a, id)),
            _ => {}
        }

        // `!!e` → `e`.
        if let ExprKind::Unary(UnOp::Not, inner) = &e.kind {
            if let ExprKind::Unary(UnOp::Not, innermost) = &inner.kind {
                e.kind = innermost.kind.clone();
                self.hit();
            }
        }

        if let ExprKind::Binary(op, a, b) = &mut e.kind {
            // `a > b` → `b < a`, `a >= b` → `b <= a`: the swap reorders
            // operand evaluation, so both sides must be fault-free.
            if matches!(op, BinOp::Gt | BinOp::Ge) && total(a) && total(b) {
                *op = if *op == BinOp::Gt { BinOp::Lt } else { BinOp::Le };
                std::mem::swap(a, b);
                self.hit();
            }

            // `a <= b - 1` → `a < b` when the interval of `b` proves
            // `b - 1` cannot overflow (soundness: if `b` produces a
            // value at all, it exceeds i64::MIN, so the subtraction in
            // the original always succeeds and both forms agree).
            if *op == BinOp::Le {
                let cannot_underflow = match &b.kind {
                    ExprKind::Binary(BinOp::Sub, bb, one)
                        if matches!(one.kind, ExprKind::IntLit(1)) =>
                    {
                        self.a.interval_facts.get(&id).is_some_and(|(before, _)| {
                            let ia = crate::interval::IntervalAnalysis::new(&self.a.universe);
                            ia.eval(bb, before)
                                .as_int()
                                .is_some_and(|iv| iv.lo > i64::MIN)
                        })
                    }
                    _ => false,
                };
                if cannot_underflow {
                    let ExprKind::Binary(BinOp::Sub, bb, _) = &b.kind else { unreachable!() };
                    *op = BinOp::Lt;
                    *b = bb.clone();
                    self.hit();
                }
            }

            // `x + x` → `x * 2` (same overflow set: 2x overflows iff
            // x + x does).
            if *op == BinOp::Add {
                if let (ExprKind::Var(x), ExprKind::Var(y)) = (&a.kind, &b.kind) {
                    if x == y && definitely_int_var(self.a, x) {
                        *op = BinOp::Mul;
                        b.kind = ExprKind::IntLit(2);
                        self.hit();
                    }
                }
            }

            // Commutative operand ordering. `+` only with syntactic
            // int evidence (string `+` is concatenation); the swap
            // reorders evaluation, so both operands must be total.
            let commutative = match op {
                BinOp::Mul | BinOp::Eq | BinOp::Ne => true,
                BinOp::Add => definitely_int(a) || definitely_int(b),
                _ => false,
            };
            if commutative
                && total(a)
                && total(b)
                && cmp_expr(a, b) == std::cmp::Ordering::Greater
            {
                std::mem::swap(a, b);
                self.hit();
            }
        }
    }

    fn rewrite_block(&mut self, b: &mut Block) {
        let mut out: Vec<Stmt> = Vec::with_capacity(b.stmts.len());
        let stmts = std::mem::take(&mut b.stmts);
        for mut s in stmts {
            // Unreachable after a jump: drop the tail.
            if let Some(last) = out.last() {
                if matches!(
                    last.kind,
                    StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue
                ) {
                    self.hit();
                    continue;
                }
            }
            match self.rewrite_stmt(&mut s) {
                StmtAction::Keep => out.push(s),
                StmtAction::Drop => self.hit(),
                StmtAction::Replace(stmts) => {
                    self.hit();
                    out.extend(stmts);
                }
            }
        }
        b.stmts = out;
    }

    fn rewrite_stmt(&mut self, s: &mut Stmt) -> StmtAction {
        let id = s.id;
        match &mut s.kind {
            StmtKind::Let { name, init, .. } => {
                self.fold_expr(init, id);
                self.normalize_expr(init, id);
                // Removable only when the value is dead *and* nothing
                // ever writes the name again (an orphaned assign would
                // no longer typecheck).
                if total(init)
                    && !self.live_after(id, name)
                    && self.writes.get(name.as_str()).copied().unwrap_or(0) == 0
                {
                    return StmtAction::Drop;
                }
                StmtAction::Keep
            }
            StmtKind::Assign { target, op, value } => {
                self.fold_expr(value, id);
                self.normalize_expr(value, id);
                if let LValue::Index(_, idx) = target {
                    self.fold_expr(idx, id);
                    self.normalize_expr(idx, id);
                }
                // `x op= e` → `x = x op e`. Always sound for variable
                // targets (the lookup cannot fault, so the evaluation
                // order of the sugar and the desugaring agree fault for
                // fault). An array target `a[i] op= e` desugars to
                // `a[i] = a[i] op e` only when `i` and `e` are total:
                // the interpreter evaluates the RHS before the index,
                // so a faulting `e` or `i` would change *which* error
                // surfaces; with both total the only fault sources left
                // are the bounds check and the operator, which fire in
                // the same order in both forms.
                if *op != AssignOp::Set {
                    let desugar = match target {
                        LValue::Var(_) => true,
                        LValue::Index(_, idx) => total(idx) && total(value),
                    };
                    if desugar {
                        let bin = match op {
                            AssignOp::Add => BinOp::Add,
                            AssignOp::Sub => BinOp::Sub,
                            AssignOp::Mul => BinOp::Mul,
                            AssignOp::Set => unreachable!(),
                        };
                        let read = match target {
                            LValue::Var(n) => Expr::var(n.clone()),
                            LValue::Index(n, idx) => Expr::new(ExprKind::Index(
                                Box::new(Expr::var(n.clone())),
                                Box::new(idx.clone()),
                            )),
                        };
                        let rhs =
                            Expr::binary(bin, read, std::mem::replace(value, Expr::int(0)));
                        *op = AssignOp::Set;
                        *value = rhs;
                        self.hit();
                        // Re-normalize the fresh RHS (e.g. `x + x`).
                        self.normalize_expr(value, id);
                        return StmtAction::Keep;
                    }
                }
                // Self-assignment `x = x;` is a no-op.
                if let (LValue::Var(n), AssignOp::Set, ExprKind::Var(v)) =
                    (&*target, *op, &value.kind)
                {
                    if n == v {
                        return StmtAction::Drop;
                    }
                }
                // Dead store to a variable with a total RHS.
                if let LValue::Var(n) = target {
                    if total(value) && !self.live_after(id, n) {
                        return StmtAction::Drop;
                    }
                }
                StmtAction::Keep
            }
            StmtKind::If { cond, then_block, else_block } => {
                self.fold_expr(cond, id);
                self.normalize_expr(cond, id);
                if let Some(taken) = self.decided(id, cond) {
                    let block = if taken {
                        std::mem::take(then_block)
                    } else {
                        else_block.take().unwrap_or_default()
                    };
                    let mut block = block;
                    self.rewrite_block(&mut block);
                    return StmtAction::Replace(block.stmts);
                }
                self.rewrite_block(then_block);
                if let Some(e) = else_block {
                    self.rewrite_block(e);
                    if e.stmts.is_empty() {
                        *else_block = None;
                        self.hit();
                    }
                }
                if then_block.stmts.is_empty() && else_block.is_none() && total(cond) {
                    return StmtAction::Drop;
                }
                StmtAction::Keep
            }
            StmtKind::While { cond, body } => {
                self.fold_expr(cond, id);
                self.normalize_expr(cond, id);
                if self.decided(id, cond) == Some(false) {
                    return StmtAction::Drop;
                }
                self.rewrite_block(body);
                StmtAction::Keep
            }
            StmtKind::For { init, cond, update, body } => {
                self.fold_expr(cond, id);
                self.normalize_expr(cond, id);
                if self.decided(id, cond) == Some(false) {
                    // The initializer still runs (alpha-uniquification
                    // makes hoisting it capture-free).
                    let mut init = (**init).clone();
                    return match self.rewrite_stmt(&mut init) {
                        StmtAction::Keep => StmtAction::Replace(vec![init]),
                        other => other,
                    };
                }
                let mut init_s = (**init).clone();
                let keep_init = !matches!(self.rewrite_stmt(&mut init_s), StmtAction::Drop);
                **init = init_s;
                let mut update_s = (**update).clone();
                // The update must stay even if "dead" — dropping it
                // would change the loop; only expression rewrites apply.
                if !matches!(self.rewrite_stmt(&mut update_s), StmtAction::Drop) {
                    **update = update_s;
                }
                self.rewrite_block(body);
                // For→while desugaring, unless a direct `continue`
                // would skip the update.
                if keep_init && !has_direct_continue(body) {
                    let mut wbody = std::mem::take(body);
                    wbody.stmts.push((**update).clone());
                    let line = s.line;
                    let init_stmt = (**init).clone();
                    let while_stmt = Stmt {
                        id: StmtId(0),
                        line,
                        kind: StmtKind::While { cond: cond.clone(), body: wbody },
                    };
                    return StmtAction::Replace(vec![init_stmt, while_stmt]);
                }
                StmtAction::Keep
            }
            StmtKind::Return(Some(e)) => {
                self.fold_expr(e, id);
                self.normalize_expr(e, id);
                StmtAction::Keep
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => StmtAction::Keep,
        }
    }

    /// The statically decided outcome of the guard at `id`, requiring a
    /// total condition (eliminating a possibly-faulting guard would
    /// erase its fault).
    fn decided(&self, id: StmtId, cond: &Expr) -> Option<bool> {
        if !total(cond) {
            return None;
        }
        self.a.decided.get(&id).copied().or(match cond.kind {
            ExprKind::BoolLit(b) => Some(b),
            _ => None,
        })
    }
}

enum StmtAction {
    Keep,
    Drop,
    Replace(Vec<Stmt>),
}

/// Whether `x` is an int-typed variable per the universe (needed for
/// the `x + x` → `x * 2` rewrite: string `+` is concatenation).
fn definitely_int_var(a: &Analyzed<'_>, name: &str) -> bool {
    a.universe.slot(name).is_some_and(|s| a.universe.ty(s) == Type::Int)
}

/// True when the block contains a `continue` not nested inside an
/// inner loop (which would re-target to the desugared while's head and
/// skip the hoisted update).
fn has_direct_continue(b: &Block) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::Continue => true,
        StmtKind::If { then_block, else_block, .. } => {
            has_direct_continue(then_block)
                || else_block.as_ref().is_some_and(has_direct_continue)
        }
        // An inner loop captures its own continues.
        StmtKind::While { .. } | StmtKind::For { .. } => false,
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Final renaming + line erasure.
// ---------------------------------------------------------------------------

/// Renames parameters to `p0, p1, ..` and locals to `v0, v1, ..` in
/// definition (pre-order) order. Names are globally unique after pass
/// 0, so a flat map suffices.
fn rename_def_order(p: &mut Program) {
    let mut map: HashMap<String, String> = HashMap::new();
    for (i, q) in p.function.params.iter_mut().enumerate() {
        let new = format!("p{i}");
        map.insert(std::mem::replace(&mut q.name, new.clone()), new);
    }
    let mut next_local = 0usize;
    collect_lets(&p.function.body, &mut map, &mut next_local);
    apply_renames_block(&mut p.function.body, &map);
}

fn collect_lets(b: &Block, map: &mut HashMap<String, String>, next: &mut usize) {
    for s in &b.stmts {
        collect_lets_stmt(s, map, next);
    }
}

fn collect_lets_stmt(s: &Stmt, map: &mut HashMap<String, String>, next: &mut usize) {
    match &s.kind {
        StmtKind::Let { name, .. } => {
            map.insert(name.clone(), format!("v{next}"));
            *next += 1;
        }
        StmtKind::If { then_block, else_block, .. } => {
            collect_lets(then_block, map, next);
            if let Some(e) = else_block {
                collect_lets(e, map, next);
            }
        }
        StmtKind::While { body, .. } => collect_lets(body, map, next),
        StmtKind::For { init, update, body, .. } => {
            collect_lets_stmt(init, map, next);
            collect_lets_stmt(update, map, next);
            collect_lets(body, map, next);
        }
        _ => {}
    }
}

fn apply_renames_block(b: &mut Block, map: &HashMap<String, String>) {
    for s in &mut b.stmts {
        apply_renames_stmt(s, map);
    }
}

fn apply_renames_stmt(s: &mut Stmt, map: &HashMap<String, String>) {
    let ren = |n: &mut String| {
        if let Some(new) = map.get(n.as_str()) {
            *n = new.clone();
        }
    };
    match &mut s.kind {
        StmtKind::Let { name, init, .. } => {
            ren(name);
            apply_renames_expr(init, map);
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                LValue::Var(n) => ren(n),
                LValue::Index(n, idx) => {
                    ren(n);
                    apply_renames_expr(idx, map);
                }
            }
            apply_renames_expr(value, map);
        }
        StmtKind::If { cond, then_block, else_block } => {
            apply_renames_expr(cond, map);
            apply_renames_block(then_block, map);
            if let Some(e) = else_block {
                apply_renames_block(e, map);
            }
        }
        StmtKind::While { cond, body } => {
            apply_renames_expr(cond, map);
            apply_renames_block(body, map);
        }
        StmtKind::For { init, cond, update, body } => {
            apply_renames_stmt(init, map);
            apply_renames_expr(cond, map);
            apply_renames_stmt(update, map);
            apply_renames_block(body, map);
        }
        StmtKind::Return(Some(e)) => apply_renames_expr(e, map),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

fn apply_renames_expr(e: &mut Expr, map: &HashMap<String, String>) {
    match &mut e.kind {
        ExprKind::Var(n) => {
            if let Some(new) = map.get(n.as_str()) {
                *n = new.clone();
            }
        }
        ExprKind::Unary(_, a) => apply_renames_expr(a, map),
        ExprKind::Binary(_, a, b) => {
            apply_renames_expr(a, map);
            apply_renames_expr(b, map);
        }
        ExprKind::Index(a, b) => {
            apply_renames_expr(a, map);
            apply_renames_expr(b, map);
        }
        ExprKind::Call(_, args) => args.iter_mut().for_each(|a| apply_renames_expr(a, map)),
        ExprKind::ArrayLit(elems) => elems.iter_mut().for_each(|a| apply_renames_expr(a, map)),
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) => {}
    }
}

fn zero_lines(b: &mut Block) {
    for s in &mut b.stmts {
        s.line = 0;
        match &mut s.kind {
            StmtKind::If { then_block, else_block, .. } => {
                zero_lines(then_block);
                if let Some(e) = else_block {
                    zero_lines(e);
                }
            }
            StmtKind::While { body, .. } => zero_lines(body),
            StmtKind::For { init, update, body, .. } => {
                init.line = 0;
                update.line = 0;
                zero_lines(body);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// The structural hash.
// ---------------------------------------------------------------------------

// The hasher itself is the workspace-shared FNV-1a from `store::hash`
// — the same implementation behind the serve router, the index key,
// and the store's artifact addressing, so the semantic memo can never
// drift from the other key spaces. `num`/`str` feed the exact byte
// schedule the private hasher here historically used; adopting the
// shared type changed no key.
use store::hash::Fnv64 as Fnv;

/// Stable FNV-1a hash of a program's semantic structure: signature
/// types, statement shapes, operators, literals, and (canonical)
/// names — never lines, ids, or the function name. Call on the output
/// of [`canonicalize`] to obtain the semantic key; on arbitrary
/// programs it is merely a structural hash.
pub fn canon_hash(p: &Program) -> u64 {
    let mut h = Fnv::new();
    h.num(p.function.params.len() as u64);
    for q in &p.function.params {
        h.num(ty_tag(q.ty));
        h.str(&q.name);
    }
    h.num(ty_tag(p.function.ret));
    hash_block(&mut h, &p.function.body);
    h.finish()
}

fn ty_tag(t: Type) -> u64 {
    match t {
        Type::Int => 0,
        Type::Bool => 1,
        Type::Str => 2,
        Type::IntArray => 3,
    }
}

fn hash_block(h: &mut Fnv, b: &Block) {
    h.num(0x10);
    h.num(b.stmts.len() as u64);
    for s in &b.stmts {
        hash_stmt(h, s);
    }
}

fn hash_stmt(h: &mut Fnv, s: &Stmt) {
    match &s.kind {
        StmtKind::Let { name, ty, init } => {
            h.num(0x20);
            h.str(name);
            h.num(ty_tag(*ty));
            hash_expr(h, init);
        }
        StmtKind::Assign { target, op, value } => {
            h.num(0x21);
            match target {
                LValue::Var(n) => {
                    h.num(0);
                    h.str(n);
                }
                LValue::Index(n, idx) => {
                    h.num(1);
                    h.str(n);
                    hash_expr(h, idx);
                }
            }
            h.num(*op as u64);
            hash_expr(h, value);
        }
        StmtKind::If { cond, then_block, else_block } => {
            h.num(0x22);
            hash_expr(h, cond);
            hash_block(h, then_block);
            match else_block {
                Some(e) => {
                    h.num(1);
                    hash_block(h, e);
                }
                None => h.num(0),
            }
        }
        StmtKind::While { cond, body } => {
            h.num(0x23);
            hash_expr(h, cond);
            hash_block(h, body);
        }
        StmtKind::For { init, cond, update, body } => {
            h.num(0x24);
            hash_stmt(h, init);
            hash_expr(h, cond);
            hash_stmt(h, update);
            hash_block(h, body);
        }
        StmtKind::Return(e) => {
            h.num(0x25);
            match e {
                Some(e) => {
                    h.num(1);
                    hash_expr(h, e);
                }
                None => h.num(0),
            }
        }
        StmtKind::Break => h.num(0x26),
        StmtKind::Continue => h.num(0x27),
    }
}

fn hash_expr(h: &mut Fnv, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(v) => {
            h.num(0x30);
            h.num(*v as u64);
        }
        ExprKind::BoolLit(b) => {
            h.num(0x31);
            h.num(u64::from(*b));
        }
        ExprKind::StrLit(s) => {
            h.num(0x32);
            h.str(s);
        }
        ExprKind::Var(n) => {
            h.num(0x33);
            h.str(n);
        }
        ExprKind::Unary(op, a) => {
            h.num(0x34);
            h.num(*op as u64);
            hash_expr(h, a);
        }
        ExprKind::Binary(op, a, b) => {
            h.num(0x35);
            h.num(*op as u64);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        ExprKind::Index(a, b) => {
            h.num(0x36);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        ExprKind::Call(b, args) => {
            h.num(0x37);
            h.num(*b as u64);
            h.num(args.len() as u64);
            for a in args {
                hash_expr(h, a);
            }
        }
        ExprKind::ArrayLit(elems) => {
            h.num(0x38);
            h.num(elems.len() as u64);
            for a in elems {
                hash_expr(h, a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon_src(src: &str) -> CanonProgram {
        let p = minilang::parse(src).expect("parse");
        minilang::typecheck(&p).expect("typecheck");
        canonicalize(&p)
    }

    /// Pins `canon_hash` on the store's shared pin program. Canonical
    /// hashes are baked into persistent artifacts (memo entries, index
    /// keys), so an accidental change to the hash walk or the rewrite
    /// pipeline must fail loudly here, not corrupt caches silently.
    #[test]
    fn canon_hash_of_pin_program_is_stable() {
        let p = minilang::parse(store::hash::PIN_PROGRAM).expect("pin parses");
        minilang::typecheck(&p).expect("pin typechecks");
        assert_eq!(canon_hash(&p), 0xa572_81a7_55e5_03a6);
    }

    #[test]
    fn for_and_while_variants_collapse() {
        let a = canon_src(
            "fn sum(a: array<int>) -> int {
                let s: int = 0;
                for (let i: int = 0; i < len(a); i += 1) { s += a[i]; }
                return s;
            }",
        );
        let b = canon_src(
            "fn total(xs: array<int>) -> int {
                let acc: int = 0;
                let j: int = 0;
                while (j < len(xs)) { acc += xs[j]; j = j + 1; }
                return acc;
            }",
        );
        assert_eq!(a.hash, b.hash, "loop-style variants must share a canon hash");
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn le_minus_one_collapses_with_lt_under_len_bound() {
        let a = canon_src(
            "fn f(a: array<int>) -> int {
                let s: int = 0;
                let i: int = 0;
                while (i < len(a)) { s += a[i]; i += 1; }
                return s;
            }",
        );
        let b = canon_src(
            "fn f(a: array<int>) -> int {
                let s: int = 0;
                let i: int = 0;
                while (i <= len(a) - 1) { s += a[i]; i += 1; }
                return s;
            }",
        );
        assert_eq!(a.hash, b.hash, "cmp-style variants must collapse when len() bounds prove safety");
    }

    #[test]
    fn double_as_add_collapses() {
        let a = canon_src("fn f(x: int) -> int { let y: int = x; y += y; return y; }");
        let b = canon_src("fn f(x: int) -> int { let y: int = x; y *= 2; return y; }");
        assert_eq!(a.hash, b.hash);
    }

    #[test]
    fn renaming_is_hash_invariant() {
        let a = canon_src("fn f(n: int) -> int { let acc: int = n; return acc + 1; }");
        let b = canon_src("fn g(count: int) -> int { let tmp: int = count; return tmp + 1; }");
        assert_eq!(a.hash, b.hash);
    }

    #[test]
    fn decided_guard_and_dead_code_are_erased() {
        let plain = canon_src("fn f(x: int) -> int { return x; }");
        let noisy = canon_src(
            "fn f(x: int) -> int {
                let zz: int = 7;
                zz = zz;
                if (min(x, 0) > 0) { return 0 - 1; }
                return x;
            }",
        );
        assert_eq!(plain.hash, noisy.hash, "distractors must canonicalize away");
    }

    #[test]
    fn lookalike_mutants_do_not_collide() {
        let sum = canon_src(
            "fn f(a: array<int>) -> int {
                let s: int = 0;
                for (let i: int = 0; i < len(a); i += 1) { s += a[i]; }
                return s;
            }",
        );
        let product = canon_src(
            "fn f(a: array<int>) -> int {
                let s: int = 1;
                for (let i: int = 0; i < len(a); i += 1) { s *= a[i]; }
                return s;
            }",
        );
        assert_ne!(sum.hash, product.hash);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let one = canon_src(
            "fn maxv(a: array<int>) -> int {
                let m: int = a[0];
                for (let i: int = 1; i < len(a); i += 1) {
                    if (a[i] > m) { m = a[i]; }
                }
                return m;
            }",
        );
        let two = canonicalize(&one.program);
        assert_eq!(one.program, two.program);
        assert_eq!(one.hash, two.hash);
        assert_eq!(two.rewrites, 0, "a canonical program admits no further rewrites");
    }

    #[test]
    fn canonical_program_still_typechecks_and_runs() {
        let c = canon_src(
            "fn f(a: array<int>) -> int {
                let s: int = 0;
                for (let i: int = 0; i < len(a); i += 1) { s += a[i]; }
                return s;
            }",
        );
        minilang::typecheck(&c.program).expect("canonical form must typecheck");
        let r = interp::run(&c.program, &[Value::Array(vec![1, 2, 3])]).expect("run");
        assert_eq!(r.return_value, Value::Int(6));
    }
}
