//! Control-flow graphs over the typed MiniLang AST.
//!
//! Structured control flow lowers to basic blocks of straight-line
//! statement "atoms" (let/assign/return/break/continue) linked by
//! [`Terminator`]s. Guards (`if`/`while`/`for` conditions) evaluate at the
//! end of the block that branches on them; the guard's [`StmtId`] is the
//! id of the owning `if`/`while`/`for` statement, matching the id the
//! interpreter records for its `Guard` trace events.
//!
//! Dominators use the iterative algorithm of Cooper–Harvey–Kennedy over a
//! reverse-postorder numbering; natural loops are recovered from back
//! edges (an edge `b → h` with `h` dominating `b`), not from syntax, so
//! the divergence screen works on the same graph the dataflow solver sees.

use minilang::{Block as AstBlock, Expr, Program, Stmt, StmtId, StmtKind};
use std::collections::{BTreeSet, HashMap};

/// Index of a basic block within its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way branch on the guard of statement `guard` (an
    /// `if`/`while`/`for`), evaluated at the end of this block.
    Branch {
        /// The owning `if`/`while`/`for` statement.
        guard: StmtId,
        /// Successor when the guard is true.
        then_to: BlockId,
        /// Successor when the guard is false.
        else_to: BlockId,
    },
    /// Function exit (only the dedicated exit block carries this).
    Exit,
}

impl Terminator {
    /// The successor blocks, in then-before-else order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_to, else_to, .. } => vec![*then_to, *else_to],
            Terminator::Exit => Vec::new(),
        }
    }
}

/// A basic block: straight-line atoms plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Statement ids executed in order (no `if`/`while`/`for` ids — those
    /// appear only as [`Terminator::Branch`] guards).
    pub stmts: Vec<StmtId>,
    /// The block's terminator.
    pub term: Terminator,
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge; dominates the body).
    pub header: BlockId,
    /// All blocks of the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// The guard statement branching at the header, if the header ends in
    /// a branch (always the case for loops lowered from `while`/`for`).
    pub guard: Option<StmtId>,
}

/// The control-flow graph of one program.
#[derive(Debug)]
pub struct Cfg<'p> {
    /// The program the graph was built from.
    pub program: &'p Program,
    /// All basic blocks; [`BlockId`] indexes into this.
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
    /// The unique exit block (empty, [`Terminator::Exit`]).
    pub exit: BlockId,
    stmts: HashMap<StmtId, &'p Stmt>,
    stmt_block: HashMap<StmtId, BlockId>,
}

impl<'p> Cfg<'p> {
    /// Lowers `program` (ids must be assigned) to a CFG.
    pub fn build(program: &'p Program) -> Cfg<'p> {
        let mut b = Builder {
            blocks: Vec::new(),
            sealed: Vec::new(),
            current: 0,
            exit: 0,
            loops: Vec::new(),
            stmts: HashMap::new(),
            stmt_block: HashMap::new(),
        };
        let entry = b.new_block();
        let exit = b.new_block();
        b.exit = exit;
        b.sealed[exit] = true; // keeps Terminator::Exit
        b.current = entry;
        b.lower_block(&program.function.body);
        // Falling off the end (a missing-return error at runtime) still
        // flows to the exit block.
        b.seal(Terminator::Jump(BlockId(exit)));
        Cfg {
            program,
            blocks: b.blocks,
            entry: BlockId(entry),
            exit: BlockId(exit),
            stmts: b.stmts,
            stmt_block: b.stmt_block.into_iter().map(|(k, v)| (k, BlockId(v))).collect(),
        }
    }

    /// The statement with id `id`.
    pub fn stmt(&self, id: StmtId) -> &'p Stmt {
        self.stmts[&id]
    }

    /// The block a statement executes in (guards map to the block whose
    /// terminator branches on them).
    pub fn block_of(&self, id: StmtId) -> Option<BlockId> {
        self.stmt_block.get(&id).copied()
    }

    /// The guard condition of an `if`/`while`/`for` statement.
    pub fn guard_cond(&self, id: StmtId) -> Option<&'p Expr> {
        match &self.stmts.get(&id)?.kind {
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::For { cond, .. } => Some(cond),
            _ => None,
        }
    }

    /// Predecessor lists for every block.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, block) in self.blocks.iter().enumerate() {
            for succ in block.term.successors() {
                preds[succ.0].push(BlockId(i));
            }
        }
        preds
    }

    /// Reverse postorder over blocks reachable from the entry.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut post = Vec::new();
        let mut seen = vec![false; self.blocks.len()];
        // Iterative DFS: (block, next successor index).
        let mut stack = vec![(self.entry, 0usize)];
        seen[self.entry.0] = true;
        while let Some(&(b, next)) = stack.last() {
            let succs = self.blocks[b.0].term.successors();
            if next < succs.len() {
                stack.last_mut().expect("stack non-empty").1 += 1;
                let s = succs[next];
                if !seen[s.0] {
                    seen[s.0] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators for reachable blocks (`idom[entry] = entry`;
    /// `None` for blocks unreachable from the entry).
    pub fn dominators(&self) -> Vec<Option<BlockId>> {
        let rpo = self.rpo();
        let mut rpo_index = vec![usize::MAX; self.blocks.len()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }
        let preds = self.preds();
        let mut idom: Vec<Option<BlockId>> = vec![None; self.blocks.len()];
        idom[self.entry.0] = Some(self.entry);
        let intersect = |idom: &Vec<Option<BlockId>>, mut a: BlockId, mut b: BlockId| {
            while a != b {
                while rpo_index[a.0] > rpo_index[b.0] {
                    a = idom[a.0].expect("processed block has idom");
                }
                while rpo_index[b.0] > rpo_index[a.0] {
                    b = idom[b.0].expect("processed block has idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0] {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.0] != new_idom {
                    idom[b.0] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// True if `a` dominates `b` (reflexive) under `idom` from
    /// [`Cfg::dominators`].
    pub fn dominates(&self, idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur.0] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Natural loops: one per header, bodies of same-header back edges
    /// merged.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let idom = self.dominators();
        let preds = self.preds();
        let mut by_header: HashMap<BlockId, BTreeSet<BlockId>> = HashMap::new();
        for b in self.rpo() {
            for h in self.blocks[b.0].term.successors() {
                if !self.dominates(&idom, h, b) {
                    continue;
                }
                // Back edge b → h: the body is everything reaching b
                // without passing through h.
                let body = by_header.entry(h).or_default();
                body.insert(h);
                let mut stack = vec![b];
                while let Some(p) = stack.pop() {
                    if idom[p.0].is_some() && body.insert(p) {
                        stack.extend(preds[p.0].iter().copied());
                    }
                }
            }
        }
        let mut loops: Vec<NaturalLoop> = by_header
            .into_iter()
            .map(|(header, body)| {
                let guard = match self.blocks[header.0].term {
                    Terminator::Branch { guard, .. } => Some(guard),
                    _ => None,
                };
                NaturalLoop { header, body, guard }
            })
            .collect();
        loops.sort_by_key(|l| l.header);
        loops
    }
}

struct Builder<'p> {
    blocks: Vec<BasicBlock>,
    sealed: Vec<bool>,
    current: usize,
    exit: usize,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(usize, usize)>,
    stmts: HashMap<StmtId, &'p Stmt>,
    stmt_block: HashMap<StmtId, usize>,
}

impl<'p> Builder<'p> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock { stmts: Vec::new(), term: Terminator::Exit });
        self.sealed.push(false);
        self.blocks.len() - 1
    }

    fn seal(&mut self, term: Terminator) {
        debug_assert!(!self.sealed[self.current], "block sealed twice");
        self.blocks[self.current].term = term;
        self.sealed[self.current] = true;
    }

    fn atom(&mut self, stmt: &'p Stmt) {
        self.blocks[self.current].stmts.push(stmt.id);
        self.stmt_block.insert(stmt.id, self.current);
    }

    fn lower_block(&mut self, block: &'p AstBlock) {
        for stmt in &block.stmts {
            self.lower_stmt(stmt);
        }
    }

    fn lower_stmt(&mut self, stmt: &'p Stmt) {
        self.stmts.insert(stmt.id, stmt);
        match &stmt.kind {
            StmtKind::Let { .. } | StmtKind::Assign { .. } => self.atom(stmt),
            StmtKind::Return(_) => {
                self.atom(stmt);
                self.seal(Terminator::Jump(BlockId(self.exit)));
                self.current = self.new_block();
            }
            StmtKind::Break => {
                self.atom(stmt);
                let target = self.loops.last().map_or(self.exit, |&(_, brk)| brk);
                self.seal(Terminator::Jump(BlockId(target)));
                self.current = self.new_block();
            }
            StmtKind::Continue => {
                self.atom(stmt);
                let target = self.loops.last().map_or(self.exit, |&(cont, _)| cont);
                self.seal(Terminator::Jump(BlockId(target)));
                self.current = self.new_block();
            }
            StmtKind::If { then_block, else_block, .. } => {
                self.stmt_block.insert(stmt.id, self.current);
                let then_b = self.new_block();
                let join = self.new_block();
                let else_to = if else_block.is_some() { self.new_block() } else { join };
                self.seal(Terminator::Branch {
                    guard: stmt.id,
                    then_to: BlockId(then_b),
                    else_to: BlockId(else_to),
                });
                self.current = then_b;
                self.lower_block(then_block);
                self.seal(Terminator::Jump(BlockId(join)));
                if let Some(e) = else_block {
                    self.current = else_to;
                    self.lower_block(e);
                    self.seal(Terminator::Jump(BlockId(join)));
                }
                self.current = join;
            }
            StmtKind::While { body, .. } => {
                let header = self.new_block();
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.seal(Terminator::Jump(BlockId(header)));
                self.current = header;
                self.stmt_block.insert(stmt.id, header);
                self.seal(Terminator::Branch {
                    guard: stmt.id,
                    then_to: BlockId(body_b),
                    else_to: BlockId(exit_b),
                });
                self.loops.push((header, exit_b));
                self.current = body_b;
                self.lower_block(body);
                self.seal(Terminator::Jump(BlockId(header)));
                self.loops.pop();
                self.current = exit_b;
            }
            StmtKind::For { init, update, body, .. } => {
                self.lower_stmt(init);
                let header = self.new_block();
                let body_b = self.new_block();
                let update_b = self.new_block();
                let exit_b = self.new_block();
                self.seal(Terminator::Jump(BlockId(header)));
                self.current = header;
                self.stmt_block.insert(stmt.id, header);
                self.seal(Terminator::Branch {
                    guard: stmt.id,
                    then_to: BlockId(body_b),
                    else_to: BlockId(exit_b),
                });
                // `continue` re-enters through the update, not the header.
                self.loops.push((update_b, exit_b));
                self.current = body_b;
                self.lower_block(body);
                self.seal(Terminator::Jump(BlockId(update_b)));
                self.loops.pop();
                self.current = update_b;
                self.lower_stmt(update);
                self.seal(Terminator::Jump(BlockId(header)));
                self.current = exit_b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str) -> (minilang::Program, ()) {
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        (p, ())
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let (p, _) = cfg_of("fn f(x: int) -> int { let y: int = x; return y; }");
        let cfg = Cfg::build(&p);
        let rpo = cfg.rpo();
        // entry (both stmts) + exit.
        assert_eq!(rpo.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry.0].stmts.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry.0].term, Terminator::Jump(cfg.exit));
    }

    #[test]
    fn if_produces_diamond_and_dominators() {
        let (p, _) = cfg_of(
            "fn f(x: int) -> int {
                let y: int = 0;
                if (x > 0) { y = 1; } else { y = 2; }
                return y;
            }",
        );
        let cfg = Cfg::build(&p);
        let Terminator::Branch { then_to, else_to, guard } = cfg.blocks[cfg.entry.0].term.clone()
        else {
            panic!("entry must branch");
        };
        assert_ne!(then_to, else_to);
        assert!(cfg.guard_cond(guard).is_some());
        let idom = cfg.dominators();
        // Entry dominates both arms and the join.
        assert!(cfg.dominates(&idom, cfg.entry, then_to));
        assert!(cfg.dominates(&idom, cfg.entry, else_to));
        assert!(!cfg.dominates(&idom, then_to, else_to));
        assert!(cfg.natural_loops().is_empty());
    }

    #[test]
    fn while_loop_is_a_natural_loop() {
        let (p, _) = cfg_of(
            "fn f(n: int) -> int {
                let i: int = 0;
                while (i < n) { i += 1; }
                return i;
            }",
        );
        let cfg = Cfg::build(&p);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert!(l.guard.is_some());
        assert!(l.body.contains(&l.header));
        assert_eq!(l.body.len(), 2, "header + body block");
    }

    #[test]
    fn for_loop_has_update_block_in_body() {
        let (p, _) = cfg_of(
            "fn f(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i += 1) { s += i; }
                return s;
            }",
        );
        let cfg = Cfg::build(&p);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        // header + body + update.
        assert_eq!(loops[0].body.len(), 3);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let (p, _) = cfg_of("fn f() -> int { return 1; let x: int = 2; return x; }");
        let cfg = Cfg::build(&p);
        let reachable: std::collections::BTreeSet<BlockId> = cfg.rpo().into_iter().collect();
        let dead_stmt = p.statements()[1].id;
        let dead_block = cfg.block_of(dead_stmt).unwrap();
        assert!(!reachable.contains(&dead_block));
    }

    #[test]
    fn break_leaves_the_loop_body() {
        let (p, _) = cfg_of(
            "fn f(n: int) -> int {
                while (true) { if (n > 0) { break; } n += 1; }
                return n;
            }",
        );
        let cfg = Cfg::build(&p);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        // The break block jumps outside the natural loop: there is an exit
        // edge from a body block to a non-body block.
        let l = &loops[0];
        let has_exit_edge = l.body.iter().any(|b| {
            cfg.blocks[b.0]
                .term
                .successors()
                .iter()
                .any(|s| !l.body.contains(s) && *s != l.header)
        });
        assert!(has_exit_edge);
    }

    #[test]
    fn nested_loops_have_two_headers() {
        let (p, _) = cfg_of(
            "fn f(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i += 1) {
                    for (let j: int = 0; j < i; j += 1) { s += j; }
                }
                return s;
            }",
        );
        let cfg = Cfg::build(&p);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2);
        let (outer, inner) =
            if loops[0].body.len() > loops[1].body.len() { (0, 1) } else { (1, 0) };
        assert!(loops[outer].body.is_superset(&loops[inner].body));
    }
}
