//! `liger-lint` — static diagnostics for MiniLang sources.
//!
//! Reads one or more `.ml`/`.txt` sources (or stdin when no file is
//! given), runs the full analysis stack, and prints one diagnostic per
//! line as `file:line N: [severity] kind: message`.
//!
//! Exit status: 0 when no fatal diagnostics were found, 1 when a fatal
//! diagnostic (or, under `--deny-warnings`, any diagnostic) was found,
//! 2 when a source failed to parse or typecheck.

use analysis::lint;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: liger-lint [options] [FILE...]

Lints MiniLang sources; reads stdin when no FILE is given.

options:
  --deny-warnings   exit non-zero on any diagnostic, not just fatal ones
  --fatal-only      print only fatal diagnostics
  --canon           canonicalize each source first: assert the rewrite
                    fixpoint is idempotent, lint the canonical form, and
                    print one `canon <hash> <file>` line per source
  --quiet           suppress the per-run summary line
  --metrics         print the global metrics table (lint.* counters) to
                    stderr after the run
  --store-path DIR  read/write lint reports through the artifact store at
                    DIR: an unchanged source replays its cached report
                    without re-running the analysis stack
  -h, --help        show this help";

struct Options {
    deny_warnings: bool,
    fatal_only: bool,
    canon: bool,
    quiet: bool,
    metrics: bool,
    store_path: Option<String>,
    files: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        fatal_only: false,
        canon: false,
        quiet: false,
        metrics: false,
        store_path: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--fatal-only" => opts.fatal_only = true,
            "--canon" => opts.canon = true,
            "--quiet" => opts.quiet = true,
            "--metrics" => opts.metrics = true,
            "--store-path" => {
                opts.store_path =
                    Some(args.next().ok_or(format!("--store-path needs DIR\n\n{USAGE}"))?);
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Lints one source; returns (diagnostics printed, fatal seen) or an
/// error message for parse/typecheck failures.
fn lint_source(
    label: &str,
    src: &str,
    opts: &Options,
    store: Option<&store::Store>,
) -> Result<(usize, bool), String> {
    let mut program = minilang::parse(src).map_err(|e| format!("{label}: parse error: {e}"))?;
    minilang::typecheck(&program).map_err(|e| format!("{label}: type error: {e}"))?;
    if opts.canon {
        let once = analysis::canonicalize(&program);
        let twice = analysis::canonicalize(&once.program);
        if once.program != twice.program || once.hash != twice.hash {
            return Err(format!("{label}: canonicalization is not idempotent"));
        }
        minilang::typecheck(&once.program)
            .map_err(|e| format!("{label}: canonical form fails to typecheck: {e}"))?;
        println!("canon {:016x} {label}", once.hash);
        program = once.program;
    }
    // The key is the hash of what is actually linted: canonicalization
    // changes the program, so `--canon` runs live in a different key
    // space than plain runs and the two never share reports.
    let key = if opts.canon {
        analysis::canon_hash(&program)
    } else {
        store::hash::fnv1a_str(src)
    };
    let report = analysis::lint_with_store(&program, key, store)
        .map_err(|e| format!("{label}: store error: {e}"))?;
    let mut printed = 0;
    for d in &report.diagnostics {
        if opts.fatal_only && d.severity != lint::Severity::Fatal {
            continue;
        }
        println!("{label}:{}", d.render());
        printed += 1;
    }
    Ok((printed, report.has_fatal()))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut sources: Vec<(String, String)> = Vec::new();
    if opts.files.is_empty() {
        let mut src = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut src) {
            eprintln!("liger-lint: failed to read stdin: {e}");
            return ExitCode::from(2);
        }
        sources.push(("<stdin>".to_string(), src));
    } else {
        for f in &opts.files {
            match std::fs::read_to_string(f) {
                Ok(src) => sources.push((f.clone(), src)),
                Err(e) => {
                    eprintln!("liger-lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let astore = match &opts.store_path {
        Some(dir) => match store::Store::open(std::path::Path::new(dir)) {
            Ok(st) => Some(st),
            Err(e) => {
                eprintln!("liger-lint: cannot open store {dir}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let mut total = 0usize;
    let mut any_fatal = false;
    let mut any_error = false;
    let n_sources = sources.len();
    for (label, src) in &sources {
        match lint_source(label, src, &opts, astore.as_ref()) {
            Ok((printed, fatal)) => {
                total += printed;
                any_fatal |= fatal;
            }
            Err(msg) => {
                eprintln!("{msg}");
                any_error = true;
            }
        }
    }

    if !opts.quiet {
        eprintln!("liger-lint: {n_sources} source(s), {total} diagnostic(s)");
    }
    if opts.metrics {
        eprint!("{}", obs::metrics::registry().snapshot().render_table());
    }
    if any_error {
        ExitCode::from(2)
    } else if any_fatal || (opts.deny_warnings && total > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
