//! Structured diagnostics derived from the dataflow fixpoints.
//!
//! Every lint runs on always-terminating analyses (widening bounds the
//! interval fixpoint), so `run` is safe to call on arbitrary submitted
//! sources. Severities split the report in two:
//!
//! - [`Severity::Fatal`] diagnostics prove the program faults or diverges
//!   on every execution that reaches the flagged point — the data
//!   pipeline rejects such programs before tracing;
//! - [`Severity::Warning`] diagnostics flag suspicious-but-runnable code
//!   (dead statements, unused definitions, constant guards). The distractor
//!   engine injects exactly this kind of code on purpose, so warnings must
//!   never gate generation — only surfaced to users.

use crate::cfg::Terminator;
use crate::constprop::ConstProp;
use crate::facts::Analyzed;
use crate::interval::IntervalAnalysis;
use crate::vars::{expr_vars, stmt_def, stmt_uses, DefKind};
use interp::Value;
use minilang::{BinOp, Expr, ExprKind, Program, Stmt, StmtId, StmtKind};

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable.
    Warning,
    /// Provably faults or diverges when reached.
    Fatal,
}

/// The kind of defect a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// Statements no execution can reach.
    DeadCode,
    /// A definition whose value is never read.
    UnusedDef,
    /// A guard that is true on every execution reaching it.
    GuardAlwaysTrue,
    /// A guard that is false on every execution reaching it.
    GuardAlwaysFalse,
    /// A read no definition reaches.
    PossiblyUninitRead,
    /// A loop that provably never terminates once entered — and is
    /// provably entered.
    DivergentLoop,
    /// A loop with an invariant, undecided guard and no other exit: it
    /// never terminates if entered.
    MaybeDivergentLoop,
    /// A division or modulus whose divisor is provably zero.
    DivisionByZero,
    /// `x = x;` — an assignment of a variable to itself.
    SelfAssignment,
    /// A loop guard the analyses decide is always true even though the
    /// loop has another exit: the guard is never the reason the loop
    /// stops, so it is misleading (the idiomatic literal `while (true)`
    /// is exempt).
    AlwaysTakenGuard,
    /// An array-element write whose array is dead afterwards — the
    /// weak-definition counterpart of [`LintKind::UnusedDef`].
    WriteNeverRead,
}

impl LintKind {
    /// Kebab-case name used in rendered diagnostics and wire formats.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::DeadCode => "dead-code",
            LintKind::UnusedDef => "unused-def",
            LintKind::GuardAlwaysTrue => "guard-always-true",
            LintKind::GuardAlwaysFalse => "guard-always-false",
            LintKind::PossiblyUninitRead => "possibly-uninit-read",
            LintKind::DivergentLoop => "divergent-loop",
            LintKind::MaybeDivergentLoop => "maybe-divergent-loop",
            LintKind::DivisionByZero => "division-by-zero",
            LintKind::SelfAssignment => "self-assignment",
            LintKind::AlwaysTakenGuard => "always-taken-guard",
            LintKind::WriteNeverRead => "write-never-read",
        }
    }

    /// The severity class of this kind.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::PossiblyUninitRead
            | LintKind::DivergentLoop
            | LintKind::DivisionByZero => Severity::Fatal,
            _ => Severity::Warning,
        }
    }
}

/// One diagnostic, anchored to a statement and source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What was found.
    pub kind: LintKind,
    /// Severity class (derived from `kind`).
    pub severity: Severity,
    /// The anchoring statement.
    pub stmt: StmtId,
    /// 1-based source line of that statement.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(kind: LintKind, stmt: &Stmt, message: String) -> Diagnostic {
        Diagnostic { kind, severity: kind.severity(), stmt: stmt.id, line: stmt.line, message }
    }

    /// `line N: [severity] kind: message`.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Fatal => "fatal",
            Severity::Warning => "warning",
        };
        format!("line {}: [{}] {}: {}", self.line, sev, self.kind.name(), self.message)
    }
}

/// All diagnostics for one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Diagnostics sorted by line, then kind.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True if nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any diagnostic is [`Severity::Fatal`].
    pub fn has_fatal(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Fatal)
    }

    /// The fatal subset.
    pub fn fatal(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Fatal)
    }

    /// One rendered line per diagnostic.
    pub fn render(&self) -> String {
        self.diagnostics.iter().map(Diagnostic::render).collect::<Vec<_>>().join("\n")
    }
}

/// Runs every lint on `program` (ids assigned, typechecked).
pub fn run(program: &Program) -> LintReport {
    run_analyzed(&Analyzed::of(program))
}

/// Runs every lint on an existing analysis result.
pub fn run_analyzed(a: &Analyzed<'_>) -> LintReport {
    let _span = obs::span!("lint.run");
    let mut out = Vec::new();
    dead_code(a, &mut out);
    unused_defs(a, &mut out);
    guard_lints(a, &mut out);
    uninit_reads(a, &mut out);
    loop_lints(a, &mut out);
    division_by_zero(a, &mut out);
    self_assignments(a, &mut out);
    write_never_read(a, &mut out);
    out.sort_by_key(|d| (d.line, d.kind, d.stmt));
    let report = LintReport { diagnostics: out };
    obs::counter!("lint.programs").inc();
    obs::counter!("lint.diagnostics").add(report.diagnostics.len() as u64);
    if report.has_fatal() {
        obs::counter!("lint.fatal").inc();
    }
    report
}

/// Dead statements, collapsed: one diagnostic per run of consecutive
/// preorder ids, anchored at the run's first statement.
fn dead_code(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    let mut dead: Vec<&Stmt> = a
        .program
        .statements()
        .into_iter()
        .filter(|s| !a.is_reachable(s.id))
        .collect();
    dead.sort_by_key(|s| s.id.0);
    let mut i = 0;
    while i < dead.len() {
        let mut j = i;
        while j + 1 < dead.len() && dead[j + 1].id.0 == dead[j].id.0 + 1 {
            j += 1;
        }
        let count = j - i + 1;
        let message = if count == 1 {
            "statement is unreachable".to_string()
        } else {
            format!("{} statements are unreachable (lines {}-{})", count, dead[i].line, dead[j].line)
        };
        out.push(Diagnostic::new(LintKind::DeadCode, dead[i], message));
        i = j + 1;
    }
}

/// Strong definitions whose slot is dead immediately after them.
fn unused_defs(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    for stmt in a.program.statements() {
        if !a.is_reachable(stmt.id) {
            continue;
        }
        let Some((name, DefKind::Strong)) = stmt_def(stmt) else { continue };
        let Some(slot) = a.universe.slot(name) else { continue };
        let Some((_, after)) = a.live_facts.get(&stmt.id) else { continue };
        if !after.contains(slot) {
            let what = match stmt.kind {
                StmtKind::Let { .. } => "declared",
                _ => "assigned",
            };
            out.push(Diagnostic::new(
                LintKind::UnusedDef,
                stmt,
                format!("value {what} to `{name}` is never read"),
            ));
        }
    }
}

/// Constant `if` guards, and always-false loop guards.
fn guard_lints(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    for (&guard, &value) in &a.decided {
        let stmt = a.cfg.stmt(guard);
        match (&stmt.kind, value) {
            (StmtKind::If { .. }, true) => out.push(Diagnostic::new(
                LintKind::GuardAlwaysTrue,
                stmt,
                "condition is true on every execution reaching it".to_string(),
            )),
            (_, false) => out.push(Diagnostic::new(
                LintKind::GuardAlwaysFalse,
                stmt,
                "condition is false on every execution reaching it".to_string(),
            )),
            // Always-true loop guards are handled by the divergence
            // screen; `while (true) { ... break; }` is idiomatic.
            (_, true) => {}
        }
    }
}

/// Reads no definition site reaches.
fn uninit_reads(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    for stmt in a.program.statements() {
        if !a.is_reachable(stmt.id) {
            continue;
        }
        let Some((before, _)) = a.reaching_facts.get(&stmt.id) else { continue };
        let mut uses = Vec::new();
        stmt_uses(stmt, &mut uses);
        uses.sort_unstable();
        uses.dedup();
        for name in uses {
            let Some(slot) = a.universe.slot(name) else { continue };
            if before.is_disjoint(a.reaching.slot_mask(slot)) {
                out.push(Diagnostic::new(
                    LintKind::PossiblyUninitRead,
                    stmt,
                    format!("`{name}` may be read before any definition reaches it"),
                ));
            }
        }
    }
}

/// The divergence screen over natural loops.
fn loop_lints(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    for l in &a.loops {
        if !a.reachable_blocks[l.header.0] {
            continue;
        }
        let Some(guard) = l.guard else { continue };
        // An exit edge is any body→non-body edge other than the header's
        // own guard-false edge (break blocks and return blocks sit outside
        // the natural loop body, so breaks/returns show up here).
        let has_exit = l.body.iter().any(|b| {
            let succs = a.cfg.blocks[b.0].term.successors();
            if *b == l.header {
                if let Terminator::Branch { then_to, .. } = a.cfg.blocks[b.0].term {
                    return !l.body.contains(&then_to);
                }
            }
            succs.iter().any(|s| !l.body.contains(s))
        });
        if has_exit {
            // The guard never stops the loop, yet claims to: a decided-
            // true non-literal guard over an exiting loop is misleading
            // (`while (true) { ... break; }` stays idiomatic and exempt).
            if a.decided.get(&guard) == Some(&true) {
                let stmt = a.cfg.stmt(guard);
                let literal_true = a
                    .cfg
                    .guard_cond(guard)
                    .is_some_and(|c| matches!(c.kind, ExprKind::BoolLit(true)));
                if !literal_true {
                    out.push(Diagnostic::new(
                        LintKind::AlwaysTakenGuard,
                        stmt,
                        "loop guard is always true; the loop only exits via break or return"
                            .to_string(),
                    ));
                }
            }
            continue;
        }
        let stmt = a.cfg.stmt(guard);
        match a.decided.get(&guard) {
            Some(true) => out.push(Diagnostic::new(
                LintKind::DivergentLoop,
                stmt,
                "loop guard is always true and the body has no break or return: \
                 the loop never terminates"
                    .to_string(),
            )),
            Some(false) => {}
            None => {
                // Invariant guard + no exits: diverges whenever entered.
                let Some(cond) = a.cfg.guard_cond(guard) else { continue };
                let mut cond_vars = Vec::new();
                expr_vars(cond, &mut cond_vars);
                let modified = l.body.iter().any(|b| {
                    a.cfg.blocks[b.0].stmts.iter().any(|&sid| {
                        stmt_def(a.cfg.stmt(sid))
                            .is_some_and(|(name, _)| cond_vars.contains(&name))
                    })
                });
                if !modified {
                    out.push(Diagnostic::new(
                        LintKind::MaybeDivergentLoop,
                        stmt,
                        "loop guard never changes inside the body and the body has no \
                         break or return: the loop never terminates if entered"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

/// Provably-zero divisors, short-circuit-aware.
fn division_by_zero(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    let cp = ConstProp::new(&a.universe);
    let ia = IntervalAnalysis::new(&a.universe);
    let ctx = DivCtx { cp, ia };
    for stmt in a.program.statements() {
        if !a.is_reachable(stmt.id) {
            continue;
        }
        // Both fact maps share keys (same reachable blocks); envs at the
        // point each expression evaluates.
        let (Some((cenv, _)), Some((ienv, _))) =
            (a.const_facts.get(&stmt.id), a.interval_facts.get(&stmt.id))
        else {
            continue;
        };
        let mut exprs: Vec<&Expr> = Vec::new();
        match &stmt.kind {
            StmtKind::Let { init, .. } => exprs.push(init),
            StmtKind::Assign { target, value, .. } => {
                if let minilang::LValue::Index(_, idx) = target {
                    exprs.push(idx);
                }
                exprs.push(value);
            }
            StmtKind::Return(Some(e)) => exprs.push(e),
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::For { cond, .. } => exprs.push(cond),
            _ => {}
        }
        for e in exprs {
            ctx.walk(stmt, e, cenv, ienv, out);
        }
    }
}

/// `x = x;` — a plain self-assignment is always a no-op.
fn self_assignments(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    for stmt in a.program.statements() {
        if !a.is_reachable(stmt.id) {
            continue;
        }
        let StmtKind::Assign {
            target: minilang::LValue::Var(name),
            op: minilang::AssignOp::Set,
            value,
        } = &stmt.kind
        else {
            continue;
        };
        if matches!(&value.kind, ExprKind::Var(v) if v == name) {
            out.push(Diagnostic::new(
                LintKind::SelfAssignment,
                stmt,
                format!("`{name}` is assigned to itself"),
            ));
        }
    }
}

/// Weak (array-element) writes whose array is dead immediately after:
/// the strong-definition case is [`LintKind::UnusedDef`]'s job.
fn write_never_read(a: &Analyzed<'_>, out: &mut Vec<Diagnostic>) {
    for stmt in a.program.statements() {
        if !a.is_reachable(stmt.id) {
            continue;
        }
        let Some((name, DefKind::Weak)) = stmt_def(stmt) else { continue };
        let Some(slot) = a.universe.slot(name) else { continue };
        let Some((_, after)) = a.live_facts.get(&stmt.id) else { continue };
        if !after.contains(slot) {
            out.push(Diagnostic::new(
                LintKind::WriteNeverRead,
                stmt,
                format!("element written into `{name}` is never read"),
            ));
        }
    }
}

struct DivCtx<'a> {
    cp: ConstProp<'a>,
    ia: IntervalAnalysis<'a>,
}

impl DivCtx<'_> {
    fn const_bool(&self, e: &Expr, cenv: &crate::constprop::ConstEnv) -> Option<bool> {
        match self.cp.eval(e, cenv).as_const() {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    fn provably_zero(
        &self,
        e: &Expr,
        cenv: &crate::constprop::ConstEnv,
        ienv: &crate::interval::AbsEnv,
    ) -> bool {
        if let Some(Value::Int(0)) = self.cp.eval(e, cenv).as_const() {
            return true;
        }
        self.ia
            .eval(e, ienv)
            .as_int()
            .and_then(|i| i.as_point())
            .is_some_and(|v| v == 0)
    }

    fn walk(
        &self,
        stmt: &Stmt,
        e: &Expr,
        cenv: &crate::constprop::ConstEnv,
        ienv: &crate::interval::AbsEnv,
        out: &mut Vec<Diagnostic>,
    ) {
        match &e.kind {
            ExprKind::Binary(BinOp::And, l, r) => {
                self.walk(stmt, l, cenv, ienv, out);
                // The right side only evaluates when the left is true.
                if self.const_bool(l, cenv) != Some(false) {
                    self.walk(stmt, r, cenv, ienv, out);
                }
            }
            ExprKind::Binary(BinOp::Or, l, r) => {
                self.walk(stmt, l, cenv, ienv, out);
                if self.const_bool(l, cenv) != Some(true) {
                    self.walk(stmt, r, cenv, ienv, out);
                }
            }
            ExprKind::Binary(op @ (BinOp::Div | BinOp::Mod), l, r) => {
                self.walk(stmt, l, cenv, ienv, out);
                self.walk(stmt, r, cenv, ienv, out);
                if self.provably_zero(r, cenv, ienv) {
                    let what = if *op == BinOp::Div { "division" } else { "modulus" };
                    out.push(Diagnostic::new(
                        LintKind::DivisionByZero,
                        stmt,
                        format!("{what} by a divisor that is always zero"),
                    ));
                }
            }
            ExprKind::Binary(_, l, r) => {
                self.walk(stmt, l, cenv, ienv, out);
                self.walk(stmt, r, cenv, ienv, out);
            }
            ExprKind::Unary(_, inner) => self.walk(stmt, inner, cenv, ienv, out),
            ExprKind::Index(b, i) => {
                self.walk(stmt, b, cenv, ienv, out);
                self.walk(stmt, i, cenv, ienv, out);
            }
            ExprKind::Call(_, args) => {
                for arg in args {
                    self.walk(stmt, arg, cenv, ienv, out);
                }
            }
            ExprKind::ArrayLit(elems) => {
                for el in elems {
                    self.walk(stmt, el, cenv, ienv, out);
                }
            }
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Var(_) => {
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> LintReport {
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        run(&p)
    }

    fn kinds(report: &LintReport) -> Vec<LintKind> {
        report.diagnostics.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let r = lint(
            "fn f(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i += 1) { s += i; }
                return s;
            }",
        );
        assert!(r.is_clean(), "unexpected diagnostics:\n{}", r.render());
    }

    #[test]
    fn code_after_return_is_dead_and_collapsed() {
        let r = lint(
            "fn f() -> int {
                return 1;
                let x: int = 2;
                let y: int = 3;
                return x + y;
            }",
        );
        let dead: Vec<_> =
            r.diagnostics.iter().filter(|d| d.kind == LintKind::DeadCode).collect();
        assert_eq!(dead.len(), 1, "consecutive dead statements collapse:\n{}", r.render());
        assert_eq!(dead[0].severity, Severity::Warning);
        assert!(!r.has_fatal());
    }

    #[test]
    fn unused_definition_is_flagged() {
        let r = lint(
            "fn f(x: int) -> int {
                let unused: int = x * 2;
                return x;
            }",
        );
        assert_eq!(kinds(&r), vec![LintKind::UnusedDef]);
        assert!(r.diagnostics[0].message.contains("unused"));
    }

    #[test]
    fn constant_if_guard_is_flagged_and_dead_arm_reported() {
        let r = lint(
            "fn f(x: int) -> int {
                if (1 > 2) { return 0; }
                return x;
            }",
        );
        let ks = kinds(&r);
        assert!(ks.contains(&LintKind::GuardAlwaysFalse), "{}", r.render());
        assert!(ks.contains(&LintKind::DeadCode), "{}", r.render());
        assert!(!r.has_fatal());
    }

    #[test]
    fn divergent_loop_is_fatal() {
        let r = lint(
            "fn f() -> int {
                let z: int = 0;
                while (z < 1) { z *= 1; }
                return z;
            }",
        );
        assert!(
            kinds(&r).contains(&LintKind::DivergentLoop),
            "constprop proves z stays 0:\n{}",
            r.render()
        );
        assert!(r.has_fatal());
    }

    #[test]
    fn invariant_guard_without_exit_is_maybe_divergent() {
        let r = lint(
            "fn f(n: int) -> int {
                let s: int = 0;
                while (n > 0) { s += 1; }
                return s;
            }",
        );
        assert!(kinds(&r).contains(&LintKind::MaybeDivergentLoop), "{}", r.render());
        assert!(!r.has_fatal(), "may terminate when n <= 0");
    }

    #[test]
    fn while_true_with_break_is_not_flagged() {
        let r = lint(
            "fn f(n: int) -> int {
                let i: int = 0;
                while (true) {
                    i += 1;
                    if (i >= n) { break; }
                }
                return i;
            }",
        );
        assert!(r.is_clean(), "idiomatic while(true)+break:\n{}", r.render());
    }

    #[test]
    fn division_by_constant_zero_is_fatal() {
        let r = lint("fn f(x: int) -> int { let y: int = x / (0 * 1); return y; }");
        assert!(kinds(&r).contains(&LintKind::DivisionByZero), "{}", r.render());
        assert!(r.has_fatal());
    }

    #[test]
    fn short_circuit_guards_division() {
        // The right side of `||` never evaluates when x == 0 is undecided;
        // the divisor x is not provably zero, so nothing fires.
        let r = lint(
            "fn f(x: int) -> bool {
                let ok: bool = x == 0 || 1 / x > 0;
                return ok;
            }",
        );
        assert!(!r.has_fatal(), "{}", r.render());
        // And a divisor behind a false short-circuit is skipped entirely.
        let r2 = lint(
            "fn f(x: int) -> bool {
                let ok: bool = false && 1 / 0 > 0;
                return ok;
            }",
        );
        assert!(
            !kinds(&r2).contains(&LintKind::DivisionByZero),
            "dead rhs must be skipped:\n{}",
            r2.render()
        );
    }

    #[test]
    fn self_assignment_is_flagged() {
        let r = lint(
            "fn f(x: int) -> int {
                let y: int = x;
                y = y;
                return y;
            }",
        );
        assert!(kinds(&r).contains(&LintKind::SelfAssignment), "{}", r.render());
        assert!(!r.has_fatal());
    }

    #[test]
    fn compound_self_assignment_is_not_flagged() {
        let r = lint(
            "fn f(x: int) -> int {
                let y: int = x;
                y += y;
                return y;
            }",
        );
        assert!(!kinds(&r).contains(&LintKind::SelfAssignment), "y += y doubles y:\n{}", r.render());
    }

    #[test]
    fn always_taken_guard_with_exit_is_flagged() {
        let r = lint(
            "fn f(n: int) -> int {
                let i: int = 0;
                while (abs(n) >= 0) {
                    i += 1;
                    if (i >= 3) { break; }
                }
                return i;
            }",
        );
        assert!(kinds(&r).contains(&LintKind::AlwaysTakenGuard), "{}", r.render());
        assert!(!r.has_fatal());
    }

    #[test]
    fn literal_while_true_is_exempt_from_always_taken() {
        let r = lint(
            "fn f(n: int) -> int {
                let i: int = 0;
                while (true) {
                    i += 1;
                    if (i >= n) { break; }
                }
                return i;
            }",
        );
        assert!(!kinds(&r).contains(&LintKind::AlwaysTakenGuard), "{}", r.render());
    }

    #[test]
    fn dead_element_write_is_flagged() {
        let r = lint(
            "fn f(n: int) -> int {
                let a: array<int> = newArray(3, 0);
                a[0] = n;
                return n;
            }",
        );
        assert!(kinds(&r).contains(&LintKind::WriteNeverRead), "{}", r.render());
        assert!(!r.has_fatal());
    }

    #[test]
    fn live_element_write_is_not_flagged() {
        let r = lint(
            "fn f(n: int) -> int {
                let a: array<int> = newArray(3, 0);
                a[0] = n;
                return a[0];
            }",
        );
        assert!(!kinds(&r).contains(&LintKind::WriteNeverRead), "{}", r.render());
    }

    #[test]
    fn divergent_loop_in_dead_code_is_not_fatal() {
        let r = lint(
            "fn f(x: int) -> int {
                if (false) {
                    while (true) { x += 1; }
                }
                return x;
            }",
        );
        assert!(!r.has_fatal(), "unreachable loops cannot diverge:\n{}", r.render());
    }
}
