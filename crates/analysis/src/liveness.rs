//! Live-variable analysis (backward) over [`BitSet`] facts per slot.
//!
//! `live_in(s) = uses(s) ∪ (live_out(s) \ strong_defs(s))`. Weak
//! (array-element) definitions do not kill: the rest of the array flows
//! through. Shadowed names share a slot, which can only *over*-report
//! liveness — safe for the unused-definition lint, which needs dead-ness
//! to be certain.

use crate::bitset::BitSet;
use crate::dataflow::{Dataflow, Direction};
use crate::vars::{expr_vars, stmt_def, stmt_uses, DefKind, VarUniverse};
use minilang::{Expr, Stmt};

/// The liveness problem for one program.
pub struct Liveness<'a> {
    universe: &'a VarUniverse,
}

impl<'a> Liveness<'a> {
    /// A liveness instance over `universe`.
    pub fn new(universe: &'a VarUniverse) -> Liveness<'a> {
        Liveness { universe }
    }
}

impl Dataflow for Liveness<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BitSet {
        // Nothing is live after the function returns.
        BitSet::new(self.universe.len())
    }

    fn init(&self) -> BitSet {
        BitSet::new(self.universe.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer_stmt(&self, stmt: &Stmt, fact: &mut BitSet) {
        if let Some((name, DefKind::Strong)) = stmt_def(stmt) {
            if let Some(slot) = self.universe.slot(name) {
                fact.remove(slot);
            }
        }
        let mut uses = Vec::new();
        stmt_uses(stmt, &mut uses);
        for name in uses {
            if let Some(slot) = self.universe.slot(name) {
                fact.insert(slot);
            }
        }
    }

    fn transfer_guard(&self, _guard: &Stmt, cond: &Expr, fact: &mut BitSet) {
        let mut uses = Vec::new();
        expr_vars(cond, &mut uses);
        for name in uses {
            if let Some(slot) = self.universe.slot(name) {
                fact.insert(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::{solve, stmt_facts};

    fn live_after(src: &str, stmt_idx: usize, name: &str) -> bool {
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        let cfg = Cfg::build(&p);
        let lv = Liveness::new(&u);
        let sol = solve(&cfg, &lv);
        let facts = stmt_facts(&cfg, &lv, &sol);
        let id = p.statements()[stmt_idx].id;
        facts[&id].1.contains(u.slot(name).unwrap())
    }

    #[test]
    fn dead_store_is_not_live() {
        let src = "fn f(x: int) -> int {
            let y: int = 1;
            y = 2;
            return y;
        }";
        // After `let y = 1`, y is overwritten before any use: dead.
        assert!(!live_after(src, 0, "y"));
        // After `y = 2`, y is returned: live.
        assert!(live_after(src, 1, "y"));
    }

    #[test]
    fn loop_guard_keeps_induction_variable_live() {
        let src = "fn f(n: int) -> int {
            let i: int = 0;
            while (i < n) { i += 1; }
            return i;
        }";
        assert!(live_after(src, 0, "i"));
        assert!(live_after(src, 0, "n"));
        assert!(live_after(src, 2, "i"), "i += 1 feeds the next guard check");
    }

    #[test]
    fn weak_def_keeps_array_live_through_element_update() {
        let src = "fn f(i: int) -> int {
            let a: array<int> = [1, 2, 3];
            a[0] = i;
            return a[1];
        }";
        assert!(live_after(src, 0, "a"), "element update reads the array");
    }
}
