//! Static analysis for MiniLang.
//!
//! This crate is the static counterpart of the tracing interpreter: where
//! `interp` observes one concrete execution at a time, `analysis` computes
//! facts that hold over *every* execution. It provides
//!
//! - [`cfg`]: control-flow graphs built from the typed AST — basic blocks,
//!   dominators, and natural-loop detection;
//! - [`dataflow`]: a generic monotone framework (worklist solver over a
//!   join-semilattice of facts) with optional branch-edge refinement and
//!   widening;
//! - four instances: [`reaching`] definitions, [`liveness`], constant
//!   propagation ([`constprop`]) and interval analysis ([`interval`]) with a
//!   divergence screen;
//! - [`facts`]: the distilled per-program summary (`decided` guards +
//!   refined reachability) consumed by `symexec` to prune statically
//!   infeasible branches; and
//! - [`lint`]: structured diagnostics (dead code, unused definitions,
//!   constant guards, possibly-uninitialized reads, divergent loops)
//!   surfaced by the `liger-lint` binary and the serving layer; and
//! - [`canon`]: the analysis-driven canonicalizer — a fixpoint pipeline
//!   of semantics-preserving rewrites producing a [`CanonProgram`] and
//!   a stable [`canon_hash`], the semantic key tier behind memo-cache,
//!   router, and index dedup.
//!
//! Soundness contract: every fact is an over-approximation of the set of
//! concrete executions, conditioned on the execution reaching the program
//! point and the evaluated expression producing a value (a run that stops
//! early with a runtime error vacuously satisfies all facts about the
//! unreached suffix). The differential proptest in
//! `tests/analysis_properties.rs` checks exactly this contract against the
//! interpreter.

pub mod bitset;
pub mod canon;
pub mod cfg;
pub mod constprop;
pub mod dataflow;
pub mod facts;
pub mod interval;
pub mod lint;
pub mod liveness;
pub mod persist;
pub mod reaching;
pub mod vars;

pub use canon::{canon_hash, canonicalize, CanonProgram};
pub use cfg::{BasicBlock, BlockId, Cfg, NaturalLoop, Terminator};
pub use dataflow::{solve, Dataflow, Direction, Solution};
pub use facts::{program_facts, Analyzed, ProgramFacts};
pub use lint::{Diagnostic, LintKind, LintReport, Severity};
pub use persist::{facts_with_store, lint_with_store};
pub use vars::VarUniverse;
