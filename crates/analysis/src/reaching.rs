//! Reaching definitions over [`BitSet`] facts.
//!
//! Definition sites are parameters plus every defining statement
//! (`let`, `x = e`, `a[i] = e`). A strong definition kills all other
//! sites of its slot; a weak (array-element) definition only generates —
//! the previous contents still contribute to the value. The lint layer
//! uses the before-facts to flag reads no definition reaches.

use crate::bitset::BitSet;
use crate::dataflow::{Dataflow, Direction};
use crate::vars::{stmt_def, DefKind, VarUniverse};
use minilang::{Program, Stmt, StmtId};
use std::collections::HashMap;

/// One definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The implicit definition of parameter `i` at entry.
    Param(usize),
    /// A defining statement.
    Stmt(StmtId),
}

/// The reaching-definitions problem for one program.
pub struct ReachingDefs {
    /// site index → (slot, site, kind).
    sites: Vec<(usize, DefSite, DefKind)>,
    site_of_stmt: HashMap<StmtId, usize>,
    /// slot → mask of its definition sites.
    slot_mask: Vec<BitSet>,
}

impl ReachingDefs {
    /// Enumerates the definition sites of `program`.
    pub fn new(program: &Program, universe: &VarUniverse) -> ReachingDefs {
        let mut sites = Vec::new();
        for slot in 0..universe.len() {
            if universe.is_param(slot) {
                sites.push((slot, DefSite::Param(slot), DefKind::Strong));
            }
        }
        let mut site_of_stmt = HashMap::new();
        for stmt in program.statements() {
            if let Some((name, kind)) = stmt_def(stmt) {
                let slot = universe.slot(name).expect("defined name is declared");
                site_of_stmt.insert(stmt.id, sites.len());
                sites.push((slot, DefSite::Stmt(stmt.id), kind));
            }
        }
        let mut slot_mask = vec![BitSet::new(sites.len()); universe.len()];
        for (i, (slot, _, _)) in sites.iter().enumerate() {
            slot_mask[*slot].insert(i);
        }
        ReachingDefs { sites, site_of_stmt, slot_mask }
    }

    /// The sites defining `slot`.
    pub fn slot_mask(&self, slot: usize) -> &BitSet {
        &self.slot_mask[slot]
    }

    /// The site index of a defining statement.
    pub fn site_of(&self, stmt: StmtId) -> Option<usize> {
        self.site_of_stmt.get(&stmt).copied()
    }

    /// Total number of definition sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }
}

impl Dataflow for ReachingDefs {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> BitSet {
        let mut f = BitSet::new(self.sites.len());
        for (i, (_, site, _)) in self.sites.iter().enumerate() {
            if matches!(site, DefSite::Param(_)) {
                f.insert(i);
            }
        }
        f
    }

    fn init(&self) -> BitSet {
        BitSet::new(self.sites.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer_stmt(&self, stmt: &Stmt, fact: &mut BitSet) {
        if let Some(site) = self.site_of(stmt.id) {
            let (slot, _, kind) = self.sites[site];
            if kind == DefKind::Strong {
                fact.subtract(&self.slot_mask[slot]);
            }
            fact.insert(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::{solve, stmt_facts};

    #[test]
    fn redefinition_kills_previous_site() {
        let p = minilang::parse(
            "fn f(x: int) -> int {
                let y: int = 1;
                y = 2;
                return y;
            }",
        )
        .unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::new(&p, &u);
        let sol = solve(&cfg, &rd);
        let facts = stmt_facts(&cfg, &rd, &sol);
        let stmts = p.statements();
        // At `return y`, only the `y = 2` definition reaches.
        let (before_ret, _) = &facts[&stmts[2].id];
        let y_slot = u.slot("y").unwrap();
        let reaching: Vec<usize> =
            before_ret.iter().filter(|i| rd.slot_mask(y_slot).contains(*i)).collect();
        assert_eq!(reaching, vec![rd.site_of(stmts[1].id).unwrap()]);
    }

    #[test]
    fn both_branch_defs_reach_the_join() {
        let p = minilang::parse(
            "fn f(b: bool) -> int {
                let y: int = 0;
                if (b) { y = 1; } else { y = 2; }
                return y;
            }",
        )
        .unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::new(&p, &u);
        let sol = solve(&cfg, &rd);
        let facts = stmt_facts(&cfg, &rd, &sol);
        let stmts = p.statements();
        let ret = stmts.iter().find(|s| matches!(s.kind, minilang::StmtKind::Return(_))).unwrap();
        let (before_ret, _) = &facts[&ret.id];
        let y_slot = u.slot("y").unwrap();
        let reaching: Vec<usize> =
            before_ret.iter().filter(|i| rd.slot_mask(y_slot).contains(*i)).collect();
        assert_eq!(reaching.len(), 2, "then- and else-defs both reach");
    }

    #[test]
    fn weak_array_def_does_not_kill() {
        let p = minilang::parse(
            "fn f(i: int) -> array<int> {
                let a: array<int> = [1, 2];
                a[i] = 9;
                return a;
            }",
        )
        .unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::new(&p, &u);
        let sol = solve(&cfg, &rd);
        let facts = stmt_facts(&cfg, &rd, &sol);
        let stmts = p.statements();
        let (before_ret, _) = &facts[&stmts[2].id];
        let a_slot = u.slot("a").unwrap();
        let reaching: Vec<usize> =
            before_ret.iter().filter(|i| rd.slot_mask(a_slot).contains(*i)).collect();
        assert_eq!(reaching.len(), 2, "let and element-update both reach");
    }
}
