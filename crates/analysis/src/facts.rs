//! Whole-program analysis results and the distilled summary consumed by
//! the symbolic executor.
//!
//! [`Analyzed`] bundles the CFG with the fixpoints of all four dataflow
//! instances; [`ProgramFacts`] boils that down to owned data — which
//! guards are statically decided and which statements are reachable once
//! decided guards prune their untaken edges. Pruning with these facts
//! preserves the feasible-path set: a decided guard's untaken side is
//! unsatisfiable under every input, so no concrete or symbolic path ever
//! entered it.

use crate::bitset::BitSet;
use crate::cfg::{BlockId, Cfg, NaturalLoop, Terminator};
use crate::constprop::{ConstEnv, ConstProp};
use crate::dataflow::{solve, stmt_facts};
use crate::interval::{AbsEnv, IntervalAnalysis};
use crate::liveness::Liveness;
use crate::reaching::ReachingDefs;
use crate::vars::VarUniverse;
use interp::Value;
use minilang::{Program, StmtId};
use std::collections::{HashMap, HashSet};

/// Everything the analyses know about one program, borrowing the AST.
pub struct Analyzed<'p> {
    /// The analyzed program.
    pub program: &'p Program,
    /// Name-to-slot mapping shared by all instances.
    pub universe: VarUniverse,
    /// The control-flow graph.
    pub cfg: Cfg<'p>,
    /// Natural loops of the CFG.
    pub loops: Vec<NaturalLoop>,
    /// Constant-propagation facts per statement, execution order.
    pub const_facts: HashMap<StmtId, (ConstEnv, ConstEnv)>,
    /// Interval facts per statement, execution order.
    pub interval_facts: HashMap<StmtId, (AbsEnv, AbsEnv)>,
    /// The reaching-definitions instance (site numbering).
    pub reaching: ReachingDefs,
    /// Reaching-definition facts per statement.
    pub reaching_facts: HashMap<StmtId, (BitSet, BitSet)>,
    /// Liveness facts per statement.
    pub live_facts: HashMap<StmtId, (BitSet, BitSet)>,
    /// Guards whose outcome is statically decided (guard stmt → value);
    /// only guards in refined-reachable blocks are retained.
    pub decided: HashMap<StmtId, bool>,
    /// Blocks reachable from the entry once decided guards prune their
    /// untaken edges.
    pub reachable_blocks: Vec<bool>,
}

impl<'p> Analyzed<'p> {
    /// Runs every analysis on `program` (ids assigned, typechecked).
    pub fn of(program: &'p Program) -> Analyzed<'p> {
        let universe = VarUniverse::of(program);
        let cfg = Cfg::build(program);
        let loops = cfg.natural_loops();

        let cp = ConstProp::new(&universe);
        let cp_sol = solve(&cfg, &cp);
        let const_facts = stmt_facts(&cfg, &cp, &cp_sol);

        let ia = IntervalAnalysis::new(&universe);
        let ia_sol = solve(&cfg, &ia);
        let interval_facts = stmt_facts(&cfg, &ia, &ia_sol);

        let reaching = ReachingDefs::new(program, &universe);
        let rd_sol = solve(&cfg, &reaching);
        let reaching_facts = stmt_facts(&cfg, &reaching, &rd_sol);

        let lv = Liveness::new(&universe);
        let lv_sol = solve(&cfg, &lv);
        let live_facts = stmt_facts(&cfg, &lv, &lv_sol);

        let mut decided = HashMap::new();
        for block in &cfg.blocks {
            let Terminator::Branch { guard, .. } = block.term else { continue };
            let cond = cfg.guard_cond(guard).expect("branch guard has a condition");
            // Constant propagation decides exact values; intervals decide
            // range-separated comparisons. Either suffices.
            let by_const = const_facts.get(&guard).and_then(|(before, _)| {
                match cp.eval(cond, before).as_const() {
                    Some(Value::Bool(b)) => Some(*b),
                    _ => None,
                }
            });
            let by_interval = interval_facts.get(&guard).and_then(|(before, _)| {
                ia.eval(cond, before).as_bool().and_then(|b| b.as_const())
            });
            if let Some(b) = by_const.or(by_interval) {
                decided.insert(guard, b);
            }
        }

        let reachable_blocks = refined_reachability(&cfg, &decided);
        decided.retain(|&g, _| {
            cfg.block_of(g).is_some_and(|b| reachable_blocks[b.0])
        });

        Analyzed {
            program,
            universe,
            cfg,
            loops,
            const_facts,
            interval_facts,
            reaching,
            reaching_facts,
            live_facts,
            decided,
            reachable_blocks,
        }
    }

    /// True if the statement's block survives refined reachability.
    pub fn is_reachable(&self, stmt: StmtId) -> bool {
        self.cfg.block_of(stmt).is_some_and(|b| self.reachable_blocks[b.0])
    }
}

/// BFS from the entry, taking only the decided edge of decided guards.
fn refined_reachability(cfg: &Cfg<'_>, decided: &HashMap<StmtId, bool>) -> Vec<bool> {
    let mut reach = vec![false; cfg.blocks.len()];
    let mut stack = vec![cfg.entry];
    reach[cfg.entry.0] = true;
    while let Some(b) = stack.pop() {
        let succs: Vec<BlockId> = match &cfg.blocks[b.0].term {
            Terminator::Branch { guard, then_to, else_to } => match decided.get(guard) {
                Some(true) => vec![*then_to],
                Some(false) => vec![*else_to],
                None => vec![*then_to, *else_to],
            },
            t => t.successors(),
        };
        for s in succs {
            if !reach[s.0] {
                reach[s.0] = true;
                stack.push(s);
            }
        }
    }
    reach
}

/// The owned, lifetime-free summary handed to the symbolic executor.
#[derive(Debug, Clone, Default)]
pub struct ProgramFacts {
    /// Guard statement → statically decided outcome.
    pub decided: HashMap<StmtId, bool>,
    /// Statements whose block is reachable under refined reachability
    /// (guards included).
    pub reachable: HashSet<StmtId>,
    /// Number of basic blocks in the CFG.
    pub num_blocks: usize,
    /// Number of natural loops.
    pub num_loops: usize,
}

impl ProgramFacts {
    /// The decided outcome of `guard`, if the analyses settled it.
    pub fn decided_guard(&self, guard: StmtId) -> Option<bool> {
        self.decided.get(&guard).copied()
    }
}

/// Runs the full analysis stack and distills [`ProgramFacts`].
pub fn program_facts(program: &Program) -> ProgramFacts {
    let a = Analyzed::of(program);
    let reachable = program
        .statements()
        .into_iter()
        .filter(|s| a.is_reachable(s.id))
        .map(|s| s.id)
        .collect();
    ProgramFacts {
        decided: a.decided,
        reachable,
        num_blocks: a.cfg.blocks.len(),
        num_loops: a.loops.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts_of(src: &str) -> (Program, ProgramFacts) {
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let f = program_facts(&p);
        (p, f)
    }

    #[test]
    fn undecidable_guard_stays_open() {
        let (p, f) = facts_of("fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }");
        assert!(f.decided.is_empty());
        for s in p.statements() {
            assert!(f.reachable.contains(&s.id));
        }
    }

    #[test]
    fn constant_guard_is_decided_and_prunes() {
        let (p, f) = facts_of(
            "fn f(x: int) -> int {
                let t: bool = true;
                if (t) { return 1; }
                return x;
            }",
        );
        let guard = p
            .statements()
            .into_iter()
            .find(|s| matches!(s.kind, minilang::StmtKind::If { .. }))
            .unwrap();
        assert_eq!(f.decided_guard(guard.id), Some(true));
        // `return x` sits behind the pruned false edge.
        let last = p.statements().into_iter().last().unwrap();
        assert!(!f.reachable.contains(&last.id));
    }

    #[test]
    fn interval_decides_range_separated_guard() {
        let (p, f) = facts_of(
            "fn f(x: int) -> int {
                let a: int = abs(x);
                if (a >= 0) { return 1; }
                return 0;
            }",
        );
        let guard = p
            .statements()
            .into_iter()
            .find(|s| matches!(s.kind, minilang::StmtKind::If { .. }))
            .unwrap();
        assert_eq!(f.decided_guard(guard.id), Some(true));
    }

    #[test]
    fn decided_guard_in_pruned_region_is_dropped() {
        let (_, f) = facts_of(
            "fn f(x: int) -> int {
                if (false) {
                    if (true) { return 1; }
                }
                return x;
            }",
        );
        // Only the outer guard survives; the inner one is unreachable.
        assert_eq!(f.decided.len(), 1);
    }
}
