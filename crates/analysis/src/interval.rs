//! Interval analysis with widening.
//!
//! Integers carry `[lo, hi]` ranges where `i64::MIN`/`i64::MAX` act as
//! ∓∞ sentinels; booleans carry a may-true/may-false pair; strings and
//! arrays carry length ranges (arrays also a hull of their elements).
//! Soundness is conditioned on the execution not faulting: the
//! interpreter's checked arithmetic turns every overflow into a runtime
//! error, so bound arithmetic may saturate toward the sentinels without
//! missing a live value. Widening (after [`crate::dataflow::WIDEN_AFTER`]
//! re-joins) jumps unstable bounds to ±∞, guaranteeing termination on
//! loops; stable bounds — like a loop counter's `0` lower bound — survive,
//! which is what lets the divergence screen and the symbolic executor's
//! pruning decide loop guards.

use crate::dataflow::{Dataflow, Direction};
use crate::vars::VarUniverse;
use minilang::{AssignOp, BinOp, Builtin, Expr, ExprKind, LValue, Stmt, StmtKind, Type, UnOp};

/// −∞ sentinel.
pub const NEG_INF: i64 = i64::MIN;
/// +∞ sentinel.
pub const POS_INF: i64 = i64::MAX;

/// A non-empty integer range; sentinel bounds mean unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (`NEG_INF` = unbounded below).
    pub lo: i64,
    /// Upper bound (`POS_INF` = unbounded above).
    pub hi: i64,
}

fn clamp(v: i128) -> i64 {
    if v <= NEG_INF as i128 {
        NEG_INF
    } else if v >= POS_INF as i128 {
        POS_INF
    } else {
        v as i64
    }
}

impl Interval {
    /// The full range (no information).
    pub const FULL: Interval = Interval { lo: NEG_INF, hi: POS_INF };
    /// All non-negative values — lengths, loop counters from zero.
    pub const NON_NEG: Interval = Interval { lo: 0, hi: POS_INF };

    /// The singleton `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; callers must keep `lo <= hi`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// True if the (sentinel-aware) range contains `v`.
    pub fn contains(&self, v: i64) -> bool {
        (self.lo == NEG_INF || self.lo <= v) && (self.hi == POS_INF || v <= self.hi)
    }

    /// The single value, if the range is a non-sentinel point.
    pub fn as_point(&self) -> Option<i64> {
        (self.lo == self.hi && self.lo != NEG_INF && self.lo != POS_INF).then_some(self.lo)
    }

    /// Least upper bound (hull).
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Intersection; `None` if empty.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Standard widening: unstable bounds jump to ±∞.
    pub fn widen(prev: Interval, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < prev.lo { NEG_INF } else { next.lo },
            hi: if next.hi > prev.hi { POS_INF } else { next.hi },
        }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: if self.lo == NEG_INF || o.lo == NEG_INF {
                NEG_INF
            } else {
                clamp(self.lo as i128 + o.lo as i128)
            },
            hi: if self.hi == POS_INF || o.hi == POS_INF {
                POS_INF
            } else {
                clamp(self.hi as i128 + o.hi as i128)
            },
        }
    }

    fn neg(self) -> Interval {
        Interval {
            lo: if self.hi == POS_INF { NEG_INF } else { clamp(-(self.hi as i128)) },
            hi: if self.lo == NEG_INF { POS_INF } else { clamp(-(self.lo as i128)) },
        }
    }

    fn sub(self, o: Interval) -> Interval {
        self.add(o.neg())
    }

    fn mul(self, o: Interval) -> Interval {
        // Corner products in i128: sentinel magnitudes are large enough
        // that any ∞ × (|x| ≥ 1) lands beyond the clamp thresholds, and
        // ∞ × 0 correctly collapses to 0.
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for &x in &[self.lo, self.hi] {
            for &y in &[o.lo, o.hi] {
                let p = (x as i128).saturating_mul(y as i128);
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        Interval { lo: clamp(lo), hi: clamp(hi) }
    }

    fn div(self, o: Interval) -> Interval {
        // Precise only for finite numerators and sign-pure divisors;
        // everything else over-approximates to FULL. Executions dividing
        // by zero fault and are vacuous.
        let sign_pure = o.lo > 0 || o.hi < 0;
        let finite = self.lo != NEG_INF && self.hi != POS_INF;
        if !sign_pure || !finite {
            return Interval::FULL;
        }
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for &n in &[self.lo, self.hi] {
            for &d in &[o.lo, o.hi] {
                let q = (n as i128) / (d as i128);
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval { lo: clamp(lo), hi: clamp(hi) }
    }

    fn rem(self, o: Interval) -> Interval {
        // |a % b| < |b| and the result takes the numerator's sign.
        let max_abs = if o.lo == NEG_INF || o.hi == POS_INF {
            POS_INF
        } else {
            clamp((o.lo as i128).abs().max((o.hi as i128).abs()) - 1)
        };
        let bound = Interval { lo: clamp(-(max_abs as i128)), hi: max_abs };
        let sign = if self.lo >= 0 {
            Interval::NON_NEG
        } else if self.hi <= 0 {
            Interval { lo: NEG_INF, hi: 0 }
        } else {
            Interval::FULL
        };
        bound.meet(sign).unwrap_or(Interval::point(0))
    }

    fn abs(self) -> Interval {
        let lo = if self.lo <= 0 && self.hi >= 0 {
            0
        } else if self.lo > 0 {
            self.lo
        } else {
            // All negative: smallest magnitude is |hi|.
            clamp(-(self.hi as i128))
        };
        let hi = if self.lo == NEG_INF || self.hi == POS_INF {
            POS_INF
        } else {
            clamp((self.lo as i128).abs().max((self.hi as i128).abs()))
        };
        Interval { lo, hi }
    }

    fn min_op(self, o: Interval) -> Interval {
        Interval { lo: self.lo.min(o.lo), hi: self.hi.min(o.hi) }
    }

    fn max_op(self, o: Interval) -> Interval {
        Interval { lo: self.lo.max(o.lo), hi: self.hi.max(o.hi) }
    }
}

/// May-true / may-false abstraction of a boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsBool {
    /// Some execution may observe `true`.
    pub maybe_t: bool,
    /// Some execution may observe `false`.
    pub maybe_f: bool,
}

impl AbsBool {
    /// Both outcomes possible.
    pub const BOTH: AbsBool = AbsBool { maybe_t: true, maybe_f: true };

    /// The abstraction of a known boolean.
    pub fn of(b: bool) -> AbsBool {
        AbsBool { maybe_t: b, maybe_f: !b }
    }

    /// The definite value, if only one outcome is possible.
    pub fn as_const(self) -> Option<bool> {
        match (self.maybe_t, self.maybe_f) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    }

    fn join(self, o: AbsBool) -> AbsBool {
        AbsBool { maybe_t: self.maybe_t || o.maybe_t, maybe_f: self.maybe_f || o.maybe_f }
    }

    fn not(self) -> AbsBool {
        AbsBool { maybe_t: self.maybe_f, maybe_f: self.maybe_t }
    }
}

/// One slot's abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unreachable / never defined.
    Bot,
    /// An integer in the range.
    Int(Interval),
    /// A boolean.
    Bool(AbsBool),
    /// A string with byte length in the range.
    Str {
        /// Length range.
        len: Interval,
    },
    /// An integer array: length range plus a hull of the elements.
    Arr {
        /// Length range.
        len: Interval,
        /// Hull of every element.
        elems: Interval,
    },
    /// Unknown type or value.
    Top,
}

impl AbsVal {
    /// The abstraction of a parameter of declared type `ty`.
    pub fn top_of(ty: Type) -> AbsVal {
        match ty {
            Type::Int => AbsVal::Int(Interval::FULL),
            Type::Bool => AbsVal::Bool(AbsBool::BOTH),
            Type::Str => AbsVal::Str { len: Interval::NON_NEG },
            Type::IntArray => AbsVal::Arr { len: Interval::NON_NEG, elems: Interval::FULL },
        }
    }

    /// Least upper bound.
    pub fn join(&mut self, other: &AbsVal) -> bool {
        let merged = match (*self, *other) {
            (AbsVal::Bot, x) => x,
            (x, AbsVal::Bot) => x,
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.join(b)),
            (AbsVal::Bool(a), AbsVal::Bool(b)) => AbsVal::Bool(a.join(b)),
            (AbsVal::Str { len: a }, AbsVal::Str { len: b }) => AbsVal::Str { len: a.join(b) },
            (AbsVal::Arr { len: a, elems: x }, AbsVal::Arr { len: b, elems: y }) => {
                AbsVal::Arr { len: a.join(b), elems: x.join(y) }
            }
            _ => AbsVal::Top,
        };
        let changed = *self != merged;
        *self = merged;
        changed
    }

    fn widen(prev: AbsVal, next: AbsVal) -> AbsVal {
        match (prev, next) {
            (AbsVal::Int(p), AbsVal::Int(n)) => AbsVal::Int(Interval::widen(p, n)),
            (AbsVal::Str { len: p }, AbsVal::Str { len: n }) => {
                AbsVal::Str { len: Interval::widen(p, n) }
            }
            (AbsVal::Arr { len: p, elems: pe }, AbsVal::Arr { len: n, elems: ne }) => {
                AbsVal::Arr { len: Interval::widen(p, n), elems: Interval::widen(pe, ne) }
            }
            (_, n) => n,
        }
    }

    /// The integer range, if this is an int.
    pub fn as_int(&self) -> Option<Interval> {
        match self {
            AbsVal::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean abstraction, if this is a bool.
    pub fn as_bool(&self) -> Option<AbsBool> {
        match self {
            AbsVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// An interval environment: one [`AbsVal`] per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsEnv {
    /// Slot-indexed abstract values.
    pub vals: Vec<AbsVal>,
}

impl AbsEnv {
    /// The abstract value of `name` under `universe`.
    pub fn of(&self, universe: &VarUniverse, name: &str) -> AbsVal {
        universe.slot(name).map_or(AbsVal::Top, |s| self.vals[s])
    }
}

/// The interval-analysis problem.
pub struct IntervalAnalysis<'a> {
    universe: &'a VarUniverse,
}

impl<'a> IntervalAnalysis<'a> {
    /// An interval analysis over `universe`.
    pub fn new(universe: &'a VarUniverse) -> IntervalAnalysis<'a> {
        IntervalAnalysis { universe }
    }

    fn set(&self, env: &mut AbsEnv, name: &str, v: AbsVal) {
        if let Some(slot) = self.universe.slot(name) {
            env.vals[slot] = if self.universe.is_shadowed(slot) { AbsVal::Top } else { v };
        }
    }

    /// Evaluates `expr` in `env`.
    pub fn eval(&self, expr: &Expr, env: &AbsEnv) -> AbsVal {
        eval(expr, env, self.universe)
    }
}

impl Dataflow for IntervalAnalysis<'_> {
    type Fact = AbsEnv;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> AbsEnv {
        let vals = (0..self.universe.len())
            .map(|slot| {
                if self.universe.is_shadowed(slot) {
                    AbsVal::Top
                } else if self.universe.is_param(slot) {
                    AbsVal::top_of(self.universe.ty(slot))
                } else {
                    AbsVal::Bot
                }
            })
            .collect();
        AbsEnv { vals }
    }

    fn init(&self) -> AbsEnv {
        AbsEnv { vals: vec![AbsVal::Bot; self.universe.len()] }
    }

    fn join(&self, into: &mut AbsEnv, from: &AbsEnv) -> bool {
        let mut changed = false;
        for (a, b) in into.vals.iter_mut().zip(&from.vals) {
            changed |= a.join(b);
        }
        changed
    }

    fn transfer_stmt(&self, stmt: &Stmt, env: &mut AbsEnv) {
        match &stmt.kind {
            StmtKind::Let { name, init, .. } => {
                let v = self.eval(init, env);
                self.set(env, name, v);
            }
            StmtKind::Assign { target: LValue::Var(name), op, value } => {
                let rhs = self.eval(value, env);
                let v = match op {
                    AssignOp::Set => rhs,
                    _ => {
                        let cur = env.of(self.universe, name);
                        binop_abs(compound_op(*op), cur, rhs)
                    }
                };
                self.set(env, name, v);
            }
            StmtKind::Assign { target: LValue::Index(name, _), op: _, value } => {
                // Weak update: the length is unchanged, the element hull
                // grows by the stored value. Compound element updates
                // over-approximate to FULL elements.
                let rhs = self.eval(value, env);
                let stored = rhs.as_int().unwrap_or(Interval::FULL);
                let cur = env.of(self.universe, name);
                let v = match cur {
                    AbsVal::Arr { len, elems } => {
                        let elems = match &stmt.kind {
                            StmtKind::Assign { op: AssignOp::Set, .. } => elems.join(stored),
                            _ => Interval::FULL,
                        };
                        AbsVal::Arr { len, elems }
                    }
                    other => other,
                };
                self.set(env, name, v);
            }
            StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::If { .. } | StmtKind::While { .. } | StmtKind::For { .. } => {}
        }
    }

    fn refine_edge(&self, cond: &Expr, taken: bool, env: &mut AbsEnv) {
        refine(self, cond, taken, env);
    }

    fn widen(&self, prev: &AbsEnv, next: &mut AbsEnv) {
        for (p, n) in prev.vals.iter().zip(next.vals.iter_mut()) {
            *n = AbsVal::widen(*p, *n);
        }
    }
}

fn compound_op(op: AssignOp) -> BinOp {
    match op {
        AssignOp::Set => unreachable!("Set handled by caller"),
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
    }
}

/// Narrows `env` with the knowledge `cond == taken`.
fn refine(ia: &IntervalAnalysis<'_>, cond: &Expr, taken: bool, env: &mut AbsEnv) {
    match &cond.kind {
        ExprKind::Var(name) => ia.set(env, name, AbsVal::Bool(AbsBool::of(taken))),
        ExprKind::Unary(UnOp::Not, inner) => refine(ia, inner, !taken, env),
        ExprKind::Binary(BinOp::And, a, b) if taken => {
            refine(ia, a, true, env);
            refine(ia, b, true, env);
        }
        ExprKind::Binary(BinOp::Or, a, b) if !taken => {
            refine(ia, a, false, env);
            refine(ia, b, false, env);
        }
        ExprKind::Binary(op, a, b) if op.is_comparison() => {
            // Effective comparison once the branch polarity is applied.
            let eff = if taken { *op } else { negate_cmp(*op) };
            refine_cmp(ia, eff, a, b, env);
            refine_cmp(ia, flip_cmp(eff), b, a, env);
        }
        _ => {}
    }
}

/// `!(a op b)` as a comparison on the same operand order.
fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        _ => op,
    }
}

/// `a op b  ⇔  b (flip op) a`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        _ => op,
    }
}

/// Narrows the left operand of `lhs op rhs` when `lhs` is a variable.
fn refine_cmp(ia: &IntervalAnalysis<'_>, op: BinOp, lhs: &Expr, rhs: &Expr, env: &mut AbsEnv) {
    let ExprKind::Var(name) = &lhs.kind else { return };
    let Some(cur) = env.of(ia.universe, name).as_int() else { return };
    let Some(bound) = eval(rhs, env, ia.universe).as_int() else { return };
    let constraint = match op {
        // x < [lo,hi] ⇒ x ≤ hi − 1.
        BinOp::Lt if bound.hi != POS_INF => Interval { lo: NEG_INF, hi: bound.hi - 1 },
        BinOp::Le => Interval { lo: NEG_INF, hi: bound.hi },
        BinOp::Gt if bound.lo != NEG_INF => Interval { lo: bound.lo + 1, hi: POS_INF },
        BinOp::Ge => Interval { lo: bound.lo, hi: POS_INF },
        BinOp::Eq => bound,
        _ => return,
    };
    match cur.meet(constraint) {
        Some(narrowed) => ia.set(env, name, AbsVal::Int(narrowed)),
        // Statically infeasible edge: poison the whole environment.
        None => env.vals.iter_mut().for_each(|v| *v = AbsVal::Bot),
    }
}

/// Abstract expression evaluation.
pub fn eval(expr: &Expr, env: &AbsEnv, universe: &VarUniverse) -> AbsVal {
    match &expr.kind {
        ExprKind::IntLit(v) => AbsVal::Int(Interval::point(*v)),
        ExprKind::BoolLit(b) => AbsVal::Bool(AbsBool::of(*b)),
        ExprKind::StrLit(s) => AbsVal::Str { len: Interval::point(s.len() as i64) },
        ExprKind::Var(name) => env.of(universe, name),
        ExprKind::Unary(UnOp::Neg, inner) => match eval(inner, env, universe) {
            AbsVal::Int(i) => AbsVal::Int(i.neg()),
            AbsVal::Bot => AbsVal::Bot,
            _ => AbsVal::Top,
        },
        ExprKind::Unary(UnOp::Not, inner) => match eval(inner, env, universe) {
            AbsVal::Bool(b) => AbsVal::Bool(b.not()),
            AbsVal::Bot => AbsVal::Bot,
            _ => AbsVal::Top,
        },
        ExprKind::Binary(BinOp::And, l, r) => {
            match (eval(l, env, universe).as_bool(), eval(r, env, universe).as_bool()) {
                (Some(a), _) if a.as_const() == Some(false) => AbsVal::Bool(AbsBool::of(false)),
                (Some(a), Some(b)) if a.as_const() == Some(true) => AbsVal::Bool(b),
                (_, Some(b)) if b.as_const() == Some(false) => AbsVal::Bool(AbsBool::of(false)),
                (Some(_), Some(_)) => AbsVal::Bool(AbsBool::BOTH),
                _ => AbsVal::Top,
            }
        }
        ExprKind::Binary(BinOp::Or, l, r) => {
            match (eval(l, env, universe).as_bool(), eval(r, env, universe).as_bool()) {
                (Some(a), _) if a.as_const() == Some(true) => AbsVal::Bool(AbsBool::of(true)),
                (Some(a), Some(b)) if a.as_const() == Some(false) => AbsVal::Bool(b),
                (_, Some(b)) if b.as_const() == Some(true) => AbsVal::Bool(AbsBool::of(true)),
                (Some(_), Some(_)) => AbsVal::Bool(AbsBool::BOTH),
                _ => AbsVal::Top,
            }
        }
        ExprKind::Binary(op, l, r) => {
            binop_abs(*op, eval(l, env, universe), eval(r, env, universe))
        }
        ExprKind::Index(base, idx) => {
            match (eval(base, env, universe), eval(idx, env, universe)) {
                (AbsVal::Bot, _) | (_, AbsVal::Bot) => AbsVal::Bot,
                (AbsVal::Arr { elems, .. }, _) => AbsVal::Int(elems),
                // Byte of a string.
                (AbsVal::Str { .. }, _) => AbsVal::Int(Interval::new(0, 255)),
                _ => AbsVal::Top,
            }
        }
        ExprKind::Call(builtin, args) => {
            let vals: Vec<AbsVal> = args.iter().map(|a| eval(a, env, universe)).collect();
            if vals.contains(&AbsVal::Bot) {
                return AbsVal::Bot;
            }
            builtin_abs(*builtin, &vals)
        }
        ExprKind::ArrayLit(elems) => {
            let mut hull: Option<Interval> = None;
            for e in elems {
                match eval(e, env, universe) {
                    AbsVal::Bot => return AbsVal::Bot,
                    AbsVal::Int(i) => hull = Some(hull.map_or(i, |h| h.join(i))),
                    _ => hull = Some(Interval::FULL),
                }
            }
            AbsVal::Arr {
                len: Interval::point(elems.len() as i64),
                elems: hull.unwrap_or(Interval::FULL),
            }
        }
    }
}

fn binop_abs(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    if a == AbsVal::Bot || b == AbsVal::Bot {
        return AbsVal::Bot;
    }
    match op {
        BinOp::Add => match (a, b) {
            (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(x.add(y)),
            // String concatenation adds lengths.
            (AbsVal::Str { len: x }, AbsVal::Str { len: y }) => {
                AbsVal::Str { len: x.add(y).meet(Interval::NON_NEG).unwrap_or(Interval::NON_NEG) }
            }
            _ => AbsVal::Top,
        },
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => match (a, b) {
            (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(match op {
                BinOp::Sub => x.sub(y),
                BinOp::Mul => x.mul(y),
                BinOp::Div => x.div(y),
                _ => x.rem(y),
            }),
            _ => AbsVal::Top,
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (a, b) {
            (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Bool(compare(op, x, y)),
            _ => AbsVal::Top,
        },
        BinOp::Eq | BinOp::Ne => {
            let eq = abstract_eq(a, b);
            AbsVal::Bool(if op == BinOp::Eq { eq } else { eq.not() })
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops handled by caller"),
    }
}

fn compare(op: BinOp, x: Interval, y: Interval) -> AbsBool {
    // Evaluate `x op y` over ranges; sentinel bounds stay conservative
    // because they only widen the ranges.
    let (definitely, impossible) = match op {
        BinOp::Lt => (x.hi < y.lo, x.lo >= y.hi),
        BinOp::Le => (x.hi <= y.lo, x.lo > y.hi),
        BinOp::Gt => (x.lo > y.hi, x.hi <= y.lo),
        BinOp::Ge => (x.lo >= y.hi, x.hi < y.lo),
        _ => (false, false),
    };
    if definitely {
        AbsBool::of(true)
    } else if impossible {
        AbsBool::of(false)
    } else {
        AbsBool::BOTH
    }
}

fn abstract_eq(a: AbsVal, b: AbsVal) -> AbsBool {
    match (a, b) {
        (AbsVal::Int(x), AbsVal::Int(y)) => {
            if x.meet(y).is_none() {
                AbsBool::of(false)
            } else if let (Some(p), Some(q)) = (x.as_point(), y.as_point()) {
                AbsBool::of(p == q)
            } else {
                AbsBool::BOTH
            }
        }
        (AbsVal::Bool(x), AbsVal::Bool(y)) => match (x.as_const(), y.as_const()) {
            (Some(p), Some(q)) => AbsBool::of(p == q),
            _ => AbsBool::BOTH,
        },
        // Containers of provably different lengths cannot be equal.
        (AbsVal::Str { len: x }, AbsVal::Str { len: y })
        | (AbsVal::Arr { len: x, .. }, AbsVal::Arr { len: y, .. }) => {
            if x.meet(y).is_none() {
                AbsBool::of(false)
            } else {
                AbsBool::BOTH
            }
        }
        _ => AbsBool::BOTH,
    }
}

fn builtin_abs(builtin: Builtin, args: &[AbsVal]) -> AbsVal {
    match builtin {
        Builtin::Len => match args[0] {
            AbsVal::Arr { len, .. } | AbsVal::Str { len } => {
                AbsVal::Int(len.meet(Interval::NON_NEG).unwrap_or(Interval::NON_NEG))
            }
            _ => AbsVal::Top,
        },
        Builtin::Substring => match (args[0], args[1], args[2]) {
            (AbsVal::Str { .. }, AbsVal::Int(i), AbsVal::Int(j)) => {
                // On success the result length is exactly j − i ≥ 0.
                let len = j.sub(i).meet(Interval::NON_NEG).unwrap_or(Interval::NON_NEG);
                AbsVal::Str { len }
            }
            _ => AbsVal::Top,
        },
        Builtin::Abs => match args[0] {
            AbsVal::Int(i) => AbsVal::Int(i.abs()),
            _ => AbsVal::Top,
        },
        Builtin::Min => match (args[0], args[1]) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.min_op(b)),
            _ => AbsVal::Top,
        },
        Builtin::Max => match (args[0], args[1]) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.max_op(b)),
            _ => AbsVal::Top,
        },
        Builtin::NewArray => match (args[0], args[1]) {
            (AbsVal::Int(n), v) => AbsVal::Arr {
                // On success 0 ≤ len ≤ 1_000_000 and len ∈ n.
                len: n.meet(Interval::new(0, 1_000_000)).unwrap_or(Interval::new(0, 1_000_000)),
                elems: v.as_int().unwrap_or(Interval::FULL),
            },
            _ => AbsVal::Top,
        },
        Builtin::Push => match (args[0], args[1]) {
            (AbsVal::Arr { len, elems }, v) => AbsVal::Arr {
                len: len.add(Interval::point(1)).meet(Interval::NON_NEG).unwrap_or(Interval::NON_NEG),
                elems: elems.join(v.as_int().unwrap_or(Interval::FULL)),
            },
            _ => AbsVal::Top,
        },
        Builtin::CharToStr => AbsVal::Str { len: Interval::point(1) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::{solve, stmt_facts};
    use minilang::Program;

    fn at_return(src: &str, name: &str) -> AbsVal {
        let p: Program = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        let cfg = Cfg::build(&p);
        let ia = IntervalAnalysis::new(&u);
        let sol = solve(&cfg, &ia);
        let facts = stmt_facts(&cfg, &ia, &sol);
        let ret = p
            .statements()
            .into_iter()
            .rfind(|s| matches!(s.kind, StmtKind::Return(_)))
            .expect("program has a return");
        facts[&ret.id].0.of(&u, name)
    }

    #[test]
    fn loop_counter_keeps_stable_lower_bound() {
        let v = at_return(
            "fn f(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i += 1) { s += 1; }
                return s;
            }",
            "s",
        );
        // Widening kills the upper bound but the 0 lower bound is stable.
        assert_eq!(v, AbsVal::Int(Interval { lo: 0, hi: POS_INF }));
    }

    #[test]
    fn abs_is_non_negative() {
        let v = at_return("fn f(x: int) -> int { let y: int = abs(x); return y; }", "y");
        assert_eq!(v.as_int().unwrap().lo, 0);
    }

    #[test]
    fn mod_is_bounded_by_divisor() {
        let v = at_return("fn f(x: int) -> int { let y: int = x % 10; return y; }", "y");
        let i = v.as_int().unwrap();
        assert_eq!(i, Interval { lo: -9, hi: 9 });
    }

    #[test]
    fn non_negative_mod_has_zero_lower_bound() {
        let v = at_return(
            "fn f(x: int) -> int { let y: int = abs(x) % 4; return y; }",
            "y",
        );
        assert_eq!(v.as_int().unwrap(), Interval { lo: 0, hi: 3 });
    }

    #[test]
    fn len_is_non_negative() {
        let v = at_return(
            "fn f(a: array<int>) -> int { let n: int = len(a); return n; }",
            "n",
        );
        assert_eq!(v.as_int().unwrap().lo, 0);
    }

    #[test]
    fn guard_refinement_narrows_on_both_edges() {
        let src = "fn f(x: int) -> int {
            if (x < 10) { return x; }
            return 0 - x;
        }";
        let p: Program = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        let cfg = Cfg::build(&p);
        let ia = IntervalAnalysis::new(&u);
        let sol = solve(&cfg, &ia);
        let facts = stmt_facts(&cfg, &ia, &sol);
        let stmts = p.statements();
        let then_ret = stmts[1].id;
        let else_ret = stmts[2].id;
        assert_eq!(facts[&then_ret].0.of(&u, "x").as_int().unwrap().hi, 9);
        assert_eq!(facts[&else_ret].0.of(&u, "x").as_int().unwrap().lo, 10);
    }

    #[test]
    fn always_true_loop_guard_is_decided() {
        let src = "fn f() -> int {
            let z: int = 0;
            while (z < 1) { z *= 1; }
            return z;
        }";
        let p: Program = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let u = VarUniverse::of(&p);
        let cfg = Cfg::build(&p);
        let ia = IntervalAnalysis::new(&u);
        let sol = solve(&cfg, &ia);
        let facts = stmt_facts(&cfg, &ia, &sol);
        let guard = p
            .statements()
            .into_iter()
            .find(|s| matches!(s.kind, StmtKind::While { .. }))
            .unwrap();
        let env = &facts[&guard.id].0;
        let cond = match &guard.kind {
            StmtKind::While { cond, .. } => cond,
            _ => unreachable!(),
        };
        let b = ia.eval(cond, env).as_bool().unwrap();
        assert_eq!(b.as_const(), Some(true));
    }

    #[test]
    fn interval_arithmetic_handles_sentinels() {
        let full = Interval::FULL;
        assert_eq!(full.add(Interval::point(3)), Interval::FULL);
        assert_eq!(Interval::new(NEG_INF, -5).neg(), Interval::new(5, POS_INF));
        assert_eq!(
            Interval::new(NEG_INF, -5).mul(Interval::point(0)),
            Interval::point(0).join(Interval::point(0))
        );
        let half = Interval::new(0, POS_INF);
        assert_eq!(half.add(Interval::point(1)).lo, 1);
    }
}
