//! The generic monotone dataflow framework.
//!
//! A [`Dataflow`] instance describes a join-semilattice of facts and
//! monotone transfer functions; [`solve`] runs a worklist to the least
//! fixed point. Contracts every instance must uphold:
//!
//! - `init()` is the lattice bottom ⊥ and the identity of `join`;
//! - `join` computes the least upper bound in place and reports change;
//! - `transfer_*` are monotone in the fact argument;
//! - `refine_edge` may only *narrow* a fact using the branch polarity
//!   (it is applied to a copy of the predecessor's out-fact on branch
//!   edges, forward direction only);
//! - `widen(prev, next)` must return an upper bound of both arguments and
//!   guarantee stabilization of every ascending chain (applied once a
//!   block has been re-joined more than [`WIDEN_AFTER`] times).
//!
//! Under these contracts the solver terminates and the fixpoint
//! over-approximates every concrete execution — the property the
//! differential soundness proptest exercises end to end.

use crate::cfg::{BlockId, Cfg, Terminator};
use minilang::{Expr, Stmt, StmtId};
use std::collections::{HashMap, VecDeque};

/// Direction a dataflow problem propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along control-flow edges.
    Forward,
    /// Facts flow from the exit against control-flow edges.
    Backward,
}

/// Number of worklist re-joins of one block before [`Dataflow::widen`]
/// kicks in.
pub const WIDEN_AFTER: usize = 4;

/// A monotone dataflow problem over a join-semilattice of facts.
pub trait Dataflow {
    /// The lattice element attached to every program point.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: entry block (forward) or exit block
    /// (backward).
    fn boundary(&self) -> Self::Fact;

    /// The lattice bottom ⊥ (identity of [`Dataflow::join`]).
    fn init(&self) -> Self::Fact;

    /// `into ⊔= from`; returns true if `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Transfer through one straight-line statement.
    fn transfer_stmt(&self, stmt: &Stmt, fact: &mut Self::Fact);

    /// Transfer through a guard evaluation (no state change by default).
    fn transfer_guard(&self, _guard: &Stmt, _cond: &Expr, _fact: &mut Self::Fact) {}

    /// Narrows `fact` with the knowledge that `cond` evaluated to `taken`
    /// (forward branch edges only).
    fn refine_edge(&self, _cond: &Expr, _taken: bool, _fact: &mut Self::Fact) {}

    /// Widening operator; default is no acceleration (finite lattices).
    fn widen(&self, _prev: &Self::Fact, _next: &mut Self::Fact) {}
}

/// Fixpoint facts per block, in *execution* order: `before` holds at the
/// start of the block, `after` at its end (post guard evaluation), for
/// both directions.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at block start.
    pub before: Vec<F>,
    /// Fact at block end.
    pub after: Vec<F>,
}

/// Runs the worklist solver to the least fixed point.
pub fn solve<D: Dataflow>(cfg: &Cfg<'_>, d: &D) -> Solution<D::Fact> {
    match d.direction() {
        Direction::Forward => solve_forward(cfg, d),
        Direction::Backward => solve_backward(cfg, d),
    }
}

fn transfer_block<D: Dataflow>(
    cfg: &Cfg<'_>,
    d: &D,
    block: BlockId,
    before: &D::Fact,
) -> D::Fact {
    let mut fact = before.clone();
    let b = &cfg.blocks[block.0];
    for &sid in &b.stmts {
        d.transfer_stmt(cfg.stmt(sid), &mut fact);
    }
    if let Terminator::Branch { guard, .. } = b.term {
        let cond = cfg.guard_cond(guard).expect("branch guard has a condition");
        d.transfer_guard(cfg.stmt(guard), cond, &mut fact);
    }
    fact
}

fn solve_forward<D: Dataflow>(cfg: &Cfg<'_>, d: &D) -> Solution<D::Fact> {
    let n = cfg.blocks.len();
    let preds = cfg.preds();
    let rpo = cfg.rpo();
    let mut before: Vec<D::Fact> = (0..n).map(|_| d.init()).collect();
    let mut after: Vec<D::Fact> = (0..n).map(|_| d.init()).collect();
    let mut visits = vec![0usize; n];
    let mut queued = vec![false; n];
    let mut work: VecDeque<BlockId> = rpo.iter().copied().collect();
    for b in &rpo {
        queued[b.0] = true;
    }
    while let Some(b) = work.pop_front() {
        queued[b.0] = false;
        // Fresh join over incoming edges (boundary for the entry).
        let mut new_before = if b == cfg.entry { d.boundary() } else { d.init() };
        for &p in &preds[b.0] {
            match &cfg.blocks[p.0].term {
                Terminator::Branch { guard, then_to, else_to } => {
                    let cond = cfg.guard_cond(*guard).expect("branch guard has a condition");
                    // The same block can be both arms' target only if the
                    // AST were degenerate; handle each arm independently.
                    for (target, taken) in [(then_to, true), (else_to, false)] {
                        if *target == b {
                            let mut refined = after[p.0].clone();
                            d.refine_edge(cond, taken, &mut refined);
                            d.join(&mut new_before, &refined);
                        }
                    }
                }
                _ => {
                    d.join(&mut new_before, &after[p.0]);
                }
            }
        }
        visits[b.0] += 1;
        if visits[b.0] > WIDEN_AFTER {
            d.widen(&before[b.0], &mut new_before);
        }
        let first = visits[b.0] == 1;
        if !first && new_before == before[b.0] {
            continue;
        }
        before[b.0] = new_before;
        let new_after = transfer_block(cfg, d, b, &before[b.0]);
        if first || new_after != after[b.0] {
            after[b.0] = new_after;
            for s in cfg.blocks[b.0].term.successors() {
                if !queued[s.0] {
                    queued[s.0] = true;
                    work.push_back(s);
                }
            }
        }
    }
    Solution { before, after }
}

fn transfer_block_backward<D: Dataflow>(
    cfg: &Cfg<'_>,
    d: &D,
    block: BlockId,
    after: &D::Fact,
) -> D::Fact {
    let mut fact = after.clone();
    let b = &cfg.blocks[block.0];
    if let Terminator::Branch { guard, .. } = b.term {
        let cond = cfg.guard_cond(guard).expect("branch guard has a condition");
        d.transfer_guard(cfg.stmt(guard), cond, &mut fact);
    }
    for &sid in b.stmts.iter().rev() {
        d.transfer_stmt(cfg.stmt(sid), &mut fact);
    }
    fact
}

fn solve_backward<D: Dataflow>(cfg: &Cfg<'_>, d: &D) -> Solution<D::Fact> {
    let n = cfg.blocks.len();
    let rpo = cfg.rpo();
    let mut before: Vec<D::Fact> = (0..n).map(|_| d.init()).collect();
    let mut after: Vec<D::Fact> = (0..n).map(|_| d.init()).collect();
    let mut visits = vec![0usize; n];
    let mut queued = vec![false; n];
    // Post-order (reverse RPO) converges fastest for backward problems.
    let mut work: VecDeque<BlockId> = rpo.iter().rev().copied().collect();
    for b in &rpo {
        queued[b.0] = true;
    }
    let preds = cfg.preds();
    while let Some(b) = work.pop_front() {
        queued[b.0] = false;
        let mut new_after = if b == cfg.exit { d.boundary() } else { d.init() };
        for s in cfg.blocks[b.0].term.successors() {
            d.join(&mut new_after, &before[s.0]);
        }
        visits[b.0] += 1;
        if visits[b.0] > WIDEN_AFTER {
            d.widen(&after[b.0], &mut new_after);
        }
        let first = visits[b.0] == 1;
        if !first && new_after == after[b.0] {
            continue;
        }
        after[b.0] = new_after;
        let new_before = transfer_block_backward(cfg, d, b, &after[b.0]);
        if first || new_before != before[b.0] {
            before[b.0] = new_before;
            for &p in &preds[b.0] {
                if !queued[p.0] {
                    queued[p.0] = true;
                    work.push_back(p);
                }
            }
        }
    }
    Solution { before, after }
}

/// Replays the fixpoint through each reachable block to produce per-
/// statement `(before, after)` facts in execution order. Guard statements
/// (`if`/`while`/`for`) get the fact at guard evaluation time.
/// Statements in unreachable blocks are absent.
pub fn stmt_facts<D: Dataflow>(
    cfg: &Cfg<'_>,
    d: &D,
    sol: &Solution<D::Fact>,
) -> HashMap<StmtId, (D::Fact, D::Fact)> {
    let mut out = HashMap::new();
    for b in cfg.rpo() {
        let block = &cfg.blocks[b.0];
        match d.direction() {
            Direction::Forward => {
                let mut fact = sol.before[b.0].clone();
                for &sid in &block.stmts {
                    let pre = fact.clone();
                    d.transfer_stmt(cfg.stmt(sid), &mut fact);
                    out.insert(sid, (pre, fact.clone()));
                }
                if let Terminator::Branch { guard, .. } = block.term {
                    let cond = cfg.guard_cond(guard).expect("branch guard has a condition");
                    let pre = fact.clone();
                    d.transfer_guard(cfg.stmt(guard), cond, &mut fact);
                    out.insert(guard, (pre, fact));
                }
            }
            Direction::Backward => {
                let mut fact = sol.after[b.0].clone();
                if let Terminator::Branch { guard, .. } = block.term {
                    let cond = cfg.guard_cond(guard).expect("branch guard has a condition");
                    let post = fact.clone();
                    d.transfer_guard(cfg.stmt(guard), cond, &mut fact);
                    out.insert(guard, (fact.clone(), post));
                }
                for &sid in block.stmts.iter().rev() {
                    let post = fact.clone();
                    d.transfer_stmt(cfg.stmt(sid), &mut fact);
                    out.insert(sid, (fact.clone(), post));
                }
            }
        }
    }
    out
}
