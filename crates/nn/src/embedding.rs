//! Token embedding tables (the paper's vocabulary embedding layer).
//!
//! "In this layer, each item in 𝒟ₛ and 𝒟_d will be assigned a vector"
//! (§5.1). An [`Embedding`] owns one `V × d` parameter matrix; lookups are
//! `param_row` graph leaves so gradients flow only into the rows actually
//! used.

use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// An embedding table for a vocabulary of `vocab` tokens, each mapped to a
/// `dim`-dimensional vector.
#[derive(Debug, Clone, Copy)]
pub struct Embedding {
    matrix: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedding {
    /// Registers a fresh table in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Embedding {
        Embedding { matrix: store.add_xavier(name, vocab, dim, rng), vocab, dim }
    }

    /// Looks up token `index` as a `dim × 1` vector.
    ///
    /// # Panics
    ///
    /// Panics when `index >= vocab`.
    pub fn lookup(&self, g: &mut Graph, store: &ParamStore, index: usize) -> VarId {
        assert!(index < self.vocab, "token index {index} out of vocabulary {}", self.vocab);
        g.param_row(store, self.matrix, index)
    }

    /// Looks up a sequence of tokens.
    pub fn lookup_seq(&self, g: &mut Graph, store: &ParamStore, indices: &[usize]) -> Vec<VarId> {
        indices.iter().map(|&i| self.lookup(g, store, i)).collect()
    }

    /// The underlying parameter id.
    pub fn param(&self) -> ParamId {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_matrix_row() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(14);
        let emb = Embedding::new(&mut store, "emb", 5, 3, &mut rng);
        let mut g = Graph::new();
        let v = emb.lookup(&mut g, &store, 2);
        let row: Vec<f32> = store.get(emb.param()).value.data()[6..9].to_vec();
        assert_eq!(g.value(v).data(), &row[..]);
    }

    #[test]
    fn gradient_touches_only_used_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(15);
        let emb = Embedding::new(&mut store, "emb", 4, 2, &mut rng);
        let mut g = Graph::new();
        let v0 = emb.lookup(&mut g, &store, 0);
        let v3 = emb.lookup(&mut g, &store, 3);
        let s = g.add(v0, v3);
        let l = g.sum(s);
        g.backward(l, &mut store);
        let grad = store.get(emb.param()).grad.data();
        assert_eq!(grad, &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_panics() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(16);
        let emb = Embedding::new(&mut store, "emb", 2, 2, &mut rng);
        let mut g = Graph::new();
        emb.lookup(&mut g, &store, 5);
    }
}
