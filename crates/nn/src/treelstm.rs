//! Child-Sum TreeLSTM (Tai et al. [24]; §4.2 of the paper).
//!
//! LIGER's fusion layer "employs a TreeLSTM to embed a statement via its
//! abstract syntax tree … recursively updating the hidden states of parent
//! nodes based on those of the child nodes", finally taking the root's
//! hidden state as the statement embedding. The Child-Sum variant computes
//!
//! hⱼ = oⱼ ⊙ tanh(iⱼ ⊙ c̃ⱼ + Σ_{k∈C(j)} f_{jk} ⊙ c_k)
//!
//! with one forget gate per child.

use crate::lstm::LstmState;
use rand::Rng;
use tensor::{Act, Graph, ParamId, ParamStore, VarId};

/// A Child-Sum TreeLSTM cell.
#[derive(Debug, Clone, Copy)]
pub struct ChildSumTreeLstm {
    /// Input/recurrent/bias parameters of the input gate.
    pub wi: ParamId,
    /// Recurrent weights of the input gate.
    pub ui: ParamId,
    /// Bias of the input gate.
    pub bi: ParamId,
    /// Input weights of the per-child forget gates.
    pub wf: ParamId,
    /// Recurrent weights of the per-child forget gates.
    pub uf: ParamId,
    /// Bias of the per-child forget gates.
    pub bf: ParamId,
    /// Input weights of the output gate.
    pub wo: ParamId,
    /// Recurrent weights of the output gate.
    pub uo: ParamId,
    /// Bias of the output gate.
    pub bo: ParamId,
    /// Input weights of the candidate update.
    pub wu: ParamId,
    /// Recurrent weights of the candidate update.
    pub uu: ParamId,
    /// Bias of the candidate update.
    pub bu: ParamId,
    /// Hidden size.
    pub hidden: usize,
}

impl ChildSumTreeLstm {
    /// Registers a fresh cell in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> ChildSumTreeLstm {
        let mut mat = |suffix: &str, rows: usize, cols: usize, rng: &mut R| {
            store.add_xavier(format!("{name}.{suffix}"), rows, cols, rng)
        };
        let wi = mat("wi", hidden, input, rng);
        let ui = mat("ui", hidden, hidden, rng);
        let wf = mat("wf", hidden, input, rng);
        let uf = mat("uf", hidden, hidden, rng);
        let wo = mat("wo", hidden, input, rng);
        let uo = mat("uo", hidden, hidden, rng);
        let wu = mat("wu", hidden, input, rng);
        let uu = mat("uu", hidden, hidden, rng);
        let bi = store.add_zeros(format!("{name}.bi"), hidden, 1);
        let bf = store.add(format!("{name}.bf"), tensor::Tensor::full(hidden, 1, 1.0));
        let bo = store.add_zeros(format!("{name}.bo"), hidden, 1);
        let bu = store.add_zeros(format!("{name}.bu"), hidden, 1);
        ChildSumTreeLstm { wi, ui, bi, wf, uf, bf, wo, uo, bo, wu, uu, bu, hidden }
    }

    /// Combines node input `x` with the states of its children. A leaf
    /// passes an empty `children` slice.
    pub fn node(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: VarId,
        children: &[LstmState],
    ) -> LstmState {
        let h_sum = if children.is_empty() {
            g.zeros(self.hidden, 1)
        } else {
            let hs: Vec<VarId> = children.iter().map(|c| c.h).collect();
            g.sum_vecs(&hs)
        };

        // Each gate is one fused node, bitwise identical to the
        // matvec/matvec/add/add/activation chain it replaces.
        let gate = |g: &mut Graph, w: ParamId, u: ParamId, b: ParamId, h: VarId, act: Act| {
            let wv = g.param(store, w);
            let uv = g.param(store, u);
            let bv = g.param(store, b);
            g.gate(wv, x, uv, h, bv, act)
        };

        let i = gate(g, self.wi, self.ui, self.bi, h_sum, Act::Sigmoid);
        let o = gate(g, self.wo, self.uo, self.bo, h_sum, Act::Sigmoid);
        let u = gate(g, self.wu, self.uu, self.bu, h_sum, Act::Tanh);

        let mut c = g.mul(i, u);
        // One forget gate per child, f_k = σ(W_f x + U_f h_k + b_f),
        // batched into a single panel node (W_f·x computed once), with the
        // cell update c = i⊙u + Σ f_k⊙c_k as one fused accumulation.
        if !children.is_empty() {
            let hs: Vec<VarId> = children.iter().map(|ch| ch.h).collect();
            let cs: Vec<VarId> = children.iter().map(|ch| ch.c).collect();
            let wf = g.param(store, self.wf);
            let uf = g.param(store, self.uf);
            let bf = g.param(store, self.bf);
            let f_panel = g.gate_batch(wf, x, uf, &hs, bf, Act::Sigmoid);
            c = g.fma_rows(c, f_panel, &cs);
        }
        let tc = g.tanh(c);
        let h = g.mul(o, tc);
        LstmState { h, c }
    }

    /// All parameter ids of the cell.
    pub fn params(&self) -> Vec<ParamId> {
        vec![
            self.wi, self.ui, self.bi, self.wf, self.uf, self.bf, self.wo, self.uo, self.bo,
            self.wu, self.uu, self.bu,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::assert_grads_close;

    fn x(g: &mut Graph, seed: u32) -> VarId {
        g.input(tensor::pseudo_tensor(2, 1, seed))
    }

    #[test]
    fn leaf_then_parent_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let cell = ChildSumTreeLstm::new(&mut store, "t", 2, 3, &mut rng);
        let mut g = Graph::new();
        let xa = x(&mut g, 1);
        let leaf_a = cell.node(&mut g, &store, xa, &[]);
        let xb = x(&mut g, 2);
        let leaf_b = cell.node(&mut g, &store, xb, &[]);
        let xr = x(&mut g, 3);
        let root = cell.node(&mut g, &store, xr, &[leaf_a, leaf_b]);
        assert_eq!(g.value(root.h).rows(), 3);
        assert!(g.value(root.h).data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn tree_gradients_check_out() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let cell = ChildSumTreeLstm::new(&mut store, "t", 2, 3, &mut rng);

        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let xa = x(&mut g, 1);
            let a = cell.node(&mut g, s, xa, &[]);
            let xb = x(&mut g, 2);
            let b = cell.node(&mut g, s, xb, &[]);
            let xr = x(&mut g, 3);
            let root = cell.node(&mut g, s, xr, &[a, b]);
            let l = g.cross_entropy(root.h, 0);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        assert_grads_close(&store, &cell.params(), 1e-3, 2e-2, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
    }

    #[test]
    fn chain_tree_matches_sequential_recursion() {
        // A degenerate tree a←b←c must thread states like a 3-step
        // recursion — i.e. the hidden state depends on all three inputs.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let cell = ChildSumTreeLstm::new(&mut store, "t", 2, 3, &mut rng);

        let run = |seed_for_leaf: u32, store: &ParamStore| {
            let mut g = Graph::new();
            let xc = g.input(tensor::pseudo_tensor(2, 1, seed_for_leaf));
            let c = cell.node(&mut g, store, xc, &[]);
            let xb = x(&mut g, 20);
            let b = cell.node(&mut g, store, xb, &[c]);
            let xa = x(&mut g, 30);
            let a = cell.node(&mut g, store, xa, &[b]);
            g.value(a.h).data().to_vec()
        };
        // Changing the deepest leaf's input changes the root.
        assert_ne!(run(1, &store), run(2, &store));
    }

    #[test]
    fn wider_nodes_accept_many_children() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let cell = ChildSumTreeLstm::new(&mut store, "t", 2, 3, &mut rng);
        let mut g = Graph::new();
        let children: Vec<LstmState> = (0..6)
            .map(|i| {
                let xi = x(&mut g, i + 40);
                cell.node(&mut g, &store, xi, &[])
            })
            .collect();
        let xr = x(&mut g, 50);
        let root = cell.node(&mut g, &store, xr, &children);
        assert_eq!(g.value(root.h).rows(), 3);
    }
}
