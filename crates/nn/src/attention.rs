//! Additive attention (Bahdanau-style; §4.3 of the paper).
//!
//! Both attention networks of LIGER — a₁ in the fusion layer (weighing
//! symbolic vs. concrete feature vectors) and a₂ in the decoder (attending
//! over the flow of all blended traces) — are "feedforward neural networks
//! jointly trained with the system's other components". The scorer here is
//! the standard additive form `score(q, k) = vᵀ · tanh(W·[k ⊕ q] + b)`.

use crate::linear::Linear;
use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// An additive attention scorer.
#[derive(Debug, Clone, Copy)]
pub struct AttentionScorer {
    /// The `[k ⊕ q] → attn` projection.
    pub proj: Linear,
    /// The scoring probe vector (`attn × 1`).
    pub v: ParamId,
}

impl AttentionScorer {
    /// Registers a scorer for keys of size `key_dim` and queries of size
    /// `query_dim`, with an internal projection of size `attn_dim`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        key_dim: usize,
        query_dim: usize,
        attn_dim: usize,
        rng: &mut R,
    ) -> AttentionScorer {
        AttentionScorer {
            proj: Linear::new(store, &format!("{name}.proj"), key_dim + query_dim, attn_dim, rng),
            v: store.add_xavier(format!("{name}.v"), attn_dim, 1, rng),
        }
    }

    /// The unnormalised score μ of one key against the query.
    pub fn score(&self, g: &mut Graph, store: &ParamStore, key: VarId, query: VarId) -> VarId {
        let cat = g.concat(&[key, query]);
        let p = self.proj.forward(g, store, cat);
        let t = g.tanh(p);
        let v = g.param(store, self.v);
        g.dot(t, v)
    }

    /// Softmax-normalised attention over `keys` against `query`:
    /// returns (context, weights) where context = Σᵢ αᵢ · values[i].
    ///
    /// `values` defaults to `keys` when `None`.
    ///
    /// # Panics
    ///
    /// Panics when `keys` is empty or `values` has a different length.
    pub fn attend(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        query: VarId,
        keys: &[VarId],
        values: Option<&[VarId]>,
    ) -> (VarId, VarId) {
        assert!(!keys.is_empty(), "attention over zero keys");
        let values = values.unwrap_or(keys);
        assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
        // Batch-major scoring: pack every [k ⊕ q] into a panel and run the
        // projection as one fused GEMM, then reduce all scores in one
        // row-dots node. Each score is bitwise identical to the
        // per-key `score()` chain.
        let cats: Vec<VarId> = keys.iter().map(|&k| g.concat(&[k, query])).collect();
        let packed = g.pack(&cats);
        let w = g.param(store, self.proj.w);
        let b = g.param(store, self.proj.b);
        let panel = g.affine_batch(w, packed, Some(b));
        let t = g.tanh(panel);
        let v = g.param(store, self.v);
        let stacked = g.row_dots(t, v);
        let weights = g.softmax(stacked);
        let context = g.weighted_sum(values, weights);
        (context, weights)
    }

    /// All parameter ids of the scorer.
    pub fn params(&self) -> Vec<ParamId> {
        vec![self.proj.w, self.proj.b, self.v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::{assert_grads_close, Tensor};

    #[test]
    fn weights_sum_to_one() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(10);
        let attn = AttentionScorer::new(&mut store, "a", 3, 2, 4, &mut rng);
        let mut g = Graph::new();
        let q = g.input(tensor::pseudo_tensor(2, 1, 1));
        let keys: Vec<VarId> =
            (0..5).map(|i| g.input(tensor::pseudo_tensor(3, 1, i + 2))).collect();
        let (ctx, w) = attn.attend(&mut g, &store, q, &keys, None);
        let sum: f32 = g.value(w).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(g.value(ctx).rows(), 3);
        assert!(g.value(w).data().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn context_interpolates_values() {
        // With a single key, context == value regardless of scores.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let attn = AttentionScorer::new(&mut store, "a", 2, 2, 3, &mut rng);
        let mut g = Graph::new();
        let q = g.input(Tensor::vector(vec![0.3, -0.1]));
        let k = g.input(Tensor::vector(vec![1.0, 2.0]));
        let (ctx, w) = attn.attend(&mut g, &store, q, &[k], None);
        assert_eq!(g.value(ctx).data(), &[1.0, 2.0]);
        assert_eq!(g.value(w).data(), &[1.0]);
    }

    #[test]
    fn attention_gradients_check_out() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let attn = AttentionScorer::new(&mut store, "a", 2, 2, 3, &mut rng);

        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let q = g.input(tensor::pseudo_tensor(2, 1, 7));
            let keys: Vec<VarId> =
                (0..3).map(|i| g.input(tensor::pseudo_tensor(2, 1, i + 20))).collect();
            let (ctx, _) = attn.attend(&mut g, s, q, &keys, None);
            let l = g.cross_entropy(ctx, 1);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        assert_grads_close(&store, &attn.params(), 1e-3, 2e-2, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
    }

    #[test]
    fn batched_attend_is_bitwise_identical_to_per_key_scores() {
        let mut store_a = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(14);
        let attn = AttentionScorer::new(&mut store_a, "a", 3, 2, 4, &mut rng);
        let mut store_b = store_a.clone();

        let mut ga = Graph::new();
        let q = ga.input(tensor::pseudo_tensor(2, 1, 1));
        let keys: Vec<VarId> =
            (0..5).map(|i| ga.input(tensor::pseudo_tensor(3, 1, i + 2))).collect();
        let (ctx_a, w_a) = attn.attend(&mut ga, &store_a, q, &keys, None);
        let la = ga.cross_entropy(ctx_a, 0);
        ga.backward(la, &mut store_a);

        let mut gb = Graph::new();
        let q = gb.input(tensor::pseudo_tensor(2, 1, 1));
        let keys_b: Vec<VarId> =
            (0..5).map(|i| gb.input(tensor::pseudo_tensor(3, 1, i + 2))).collect();
        let scores: Vec<VarId> =
            keys_b.iter().map(|&k| attn.score(&mut gb, &store_b, k, q)).collect();
        let stacked = gb.stack_scalars(&scores);
        let w_b = gb.softmax(stacked);
        let ctx_b = gb.weighted_sum(&keys_b, w_b);
        let lb = gb.cross_entropy(ctx_b, 0);
        gb.backward(lb, &mut store_b);

        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ga.value(w_a)), bits(gb.value(w_b)), "weights");
        assert_eq!(bits(ga.value(ctx_a)), bits(gb.value(ctx_b)), "context");
        for p in attn.params() {
            assert_eq!(
                bits(&store_a.get(p).grad),
                bits(&store_b.get(p).grad),
                "param grad"
            );
        }
    }

    #[test]
    fn separate_values_are_combined() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(13);
        let attn = AttentionScorer::new(&mut store, "a", 2, 2, 3, &mut rng);
        let mut g = Graph::new();
        let q = g.input(tensor::pseudo_tensor(2, 1, 1));
        let keys: Vec<VarId> =
            (0..2).map(|i| g.input(tensor::pseudo_tensor(2, 1, i + 2))).collect();
        let values = vec![
            g.input(Tensor::vector(vec![1.0, 0.0, 0.0])),
            g.input(Tensor::vector(vec![0.0, 1.0, 0.0])),
        ];
        let (ctx, w) = attn.attend(&mut g, &store, q, &keys, Some(&values));
        let wd = g.value(w).data().to_vec();
        let cd = g.value(ctx).data();
        assert!((cd[0] - wd[0]).abs() < 1e-6);
        assert!((cd[1] - wd[1]).abs() < 1e-6);
        assert_eq!(cd[2], 0.0);
    }
}
