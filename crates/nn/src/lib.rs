//! # nn — neural-network layers on the `tensor` autodiff engine
//!
//! The building blocks of §4–5 of the paper, each gradient-checked against
//! numerical differentiation:
//!
//! - [`Linear`] — affine maps (the feedforward scorers a₁/a₂, task heads),
//! - [`RnnCell`] / [`BiRnn`] — vanilla RNNs (Equation 1; LIGER's f₁, f₂,
//!   f₃ and decoder),
//! - [`LstmCell`] — a standard LSTM (reference/ablations),
//! - [`ChildSumTreeLstm`] — the statement-AST encoder of the fusion layer,
//! - [`AttentionScorer`] — additive attention (fusion weighting and
//!   decoder context vectors),
//! - [`Embedding`] — the vocabulary embedding layer for 𝒟ₛ ∪ 𝒟_d,
//! - [`Adam`] / [`Sgd`] — optimizers (§6.1 trains with Adam).
//!
//! # Examples
//!
//! ```
//! use nn::{Adam, Embedding, RnnCell};
//! use rand::SeedableRng;
//! use tensor::{Graph, ParamStore};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let emb = Embedding::new(&mut store, "emb", 10, 8, &mut rng);
//! let rnn = RnnCell::new(&mut store, "rnn", 8, 8, &mut rng);
//! let mut adam = Adam::new(0.01);
//!
//! // Train one step to map the token sequence [1, 2, 3] to class 0.
//! let mut g = Graph::new();
//! let xs = emb.lookup_seq(&mut g, &store, &[1, 2, 3]);
//! let h = rnn.encode(&mut g, &store, &xs);
//! let loss = g.cross_entropy(h, 0);
//! g.backward(loss, &mut store);
//! adam.step(&mut store);
//! ```

pub mod attention;
pub mod embedding;
pub mod gru;
pub mod linear;
pub mod lstm;
pub mod optim;
pub mod rnn;
pub mod treelstm;

pub use attention::AttentionScorer;
pub use embedding::Embedding;
pub use gru::GruCell;
pub use linear::Linear;
pub use lstm::{LstmCell, LstmState};
pub use optim::{Adam, Sgd};
pub use rnn::{BiRnn, RnnCell};
pub use treelstm::ChildSumTreeLstm;
