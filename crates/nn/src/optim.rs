//! Optimizers: Adam (the paper's choice, §6.1 Implementation) and SGD.
//!
//! "All networks are trained using the Adam optimizer with learning and
//! decay rates set to their default values (learning rate = 0.0001,
//! beta1 = 0.9, beta2 = 0.999)".

use tensor::{ParamStore, Tensor};

/// The Adam optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper default 1e-4; the small-scale reproduction
    /// typically uses 1e-2–1e-3 to converge in few epochs).
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Optional global-norm gradient clipping.
    pub clip_norm: Option<f32>,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// An Adam optimizer with the paper's default hyperparameters except
    /// the learning rate.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update from the gradients accumulated in `store`, then
    /// zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        // Lazily size the moment buffers.
        while self.m.len() < store.len() {
            let i = self.m.len();
            let p = store.get(tensor::ParamId(i));
            self.m.push(Tensor::zeros(p.value.rows(), p.value.cols()));
            self.v.push(Tensor::zeros(p.value.rows(), p.value.cols()));
        }
        self.t += 1;

        let scale = match self.clip_norm {
            Some(max) => {
                let norm = store.grad_norm();
                if norm > max {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };

        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in store.iter_mut().enumerate() {
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let value = p.value.data_mut();
            for ((g, (m, v)), x) in
                p.grad.data().iter().zip(m.iter_mut().zip(v.iter_mut())).zip(value.iter_mut())
            {
                let g = g * scale;
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                *x -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.grad.zero_();
        }
    }
}

/// Plain stochastic gradient descent (used by tests and ablations).
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// A new SGD optimizer.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Applies one update from the gradients accumulated in `store`, then
    /// zeroes them.
    pub fn step(&self, store: &mut ParamStore) {
        for p in store.iter_mut() {
            let lr = self.lr;
            let grad = p.grad.data().to_vec();
            for (x, g) in p.value.data_mut().iter_mut().zip(&grad) {
                *x -= lr * g;
            }
            p.grad.zero_();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Graph;

    /// Minimises `(x - 3)²` and checks convergence.
    fn quadratic_loss(store: &ParamStore, x: tensor::ParamId) -> (Graph, tensor::VarId) {
        let mut g = Graph::new();
        let xv = g.param(store, x);
        let target = g.input(Tensor::vector(vec![3.0]));
        let diff = g.sub(xv, target);
        let sq = g.mul(diff, diff);
        let l = g.sum(sq);
        (g, l)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::vector(vec![-5.0]));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let (g, l) = quadratic_loss(&store, x);
            g.backward(l, &mut store);
            adam.step(&mut store);
        }
        let v = store.get(x).value.data()[0];
        assert!((v - 3.0).abs() < 0.05, "Adam did not converge: x = {v}");
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::vector(vec![10.0]));
        let sgd = Sgd::new(0.1);
        for _ in 0..200 {
            let (g, l) = quadratic_loss(&store, x);
            g.backward(l, &mut store);
            sgd.step(&mut store);
        }
        let v = store.get(x).value.data()[0];
        assert!((v - 3.0).abs() < 1e-3, "SGD did not converge: x = {v}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::vector(vec![1.0]));
        let (g, l) = quadratic_loss(&store, x);
        g.backward(l, &mut store);
        assert!(store.grad_norm() > 0.0);
        Adam::new(0.01).step(&mut store);
        assert_eq!(store.grad_norm(), 0.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::vector(vec![0.0]));
        // Enormous gradient.
        store.get_mut(x).grad = Tensor::vector(vec![1e9]);
        let mut adam = Adam::new(0.1);
        adam.clip_norm = Some(1.0);
        adam.step(&mut store);
        // With clipping the effective step is bounded by lr.
        assert!(store.get(x).value.data()[0].abs() <= 0.2);
    }
}
