//! Affine (fully-connected) layers.

use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// An affine map `y = W x + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    /// Weight matrix (`out × in`).
    pub w: ParamId,
    /// Bias vector (`out × 1`).
    pub b: ParamId,
}

impl Linear {
    /// Registers a fresh `in_dim → out_dim` layer in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Linear {
        let w = store.add_xavier(format!("{name}.w"), out_dim, in_dim, rng);
        let b = store.add_zeros(format!("{name}.b"), out_dim, 1);
        Linear { w, b }
    }

    /// Applies the layer inside `g` as a single fused affine node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: VarId) -> VarId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.affine(w, x, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::{assert_grads_close, Tensor};

    #[test]
    fn forward_shape_and_gradients() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, "l", 3, 2, &mut rng);

        let loss_fn = |s: &ParamStore| {
            let mut g = Graph::new();
            let x = g.input(Tensor::vector(vec![0.1, -0.4, 0.7]));
            let y = layer.forward(&mut g, s, x);
            let t = g.tanh(y);
            let l = g.sum(t);
            g.value(l).item()
        };

        let mut g = Graph::new();
        let x = g.input(Tensor::vector(vec![0.1, -0.4, 0.7]));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).rows(), 2);
        let t = g.tanh(y);
        let l = g.sum(t);
        g.backward(l, &mut store);

        assert_grads_close(&store, &[layer.w, layer.b], 1e-3, 1e-2, loss_fn);
    }
}
