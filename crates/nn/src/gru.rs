//! A GRU cell (Cho et al. [8] — the encoder–decoder architecture the
//! paper's §4.3 background builds on).
//!
//! Provided as an alternative sequence encoder for ablation studies: the
//! update/reset gating often trains faster than the vanilla cell on the
//! reproduction's short traces.

use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// A gated recurrent unit: `h' = (1−z)⊙h + z⊙h̃` with update gate `z`,
/// reset gate `r`, and candidate `h̃ = tanh(W x + U (r⊙h) + b)`.
#[derive(Debug, Clone, Copy)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    /// Hidden size.
    pub hidden: usize,
}

impl GruCell {
    /// Registers a fresh cell in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> GruCell {
        let mut mat = |suffix: &str, rows: usize, cols: usize, rng: &mut R| {
            store.add_xavier(format!("{name}.{suffix}"), rows, cols, rng)
        };
        let wz = mat("wz", hidden, input, rng);
        let uz = mat("uz", hidden, hidden, rng);
        let wr = mat("wr", hidden, input, rng);
        let ur = mat("ur", hidden, hidden, rng);
        let wh = mat("wh", hidden, input, rng);
        let uh = mat("uh", hidden, hidden, rng);
        let bz = store.add_zeros(format!("{name}.bz"), hidden, 1);
        let br = store.add_zeros(format!("{name}.br"), hidden, 1);
        let bh = store.add_zeros(format!("{name}.bh"), hidden, 1);
        GruCell { wz, uz, bz, wr, ur, br, wh, uh, bh, hidden }
    }

    fn affine(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        (w, u, b): (ParamId, ParamId, ParamId),
        x: VarId,
        h: VarId,
    ) -> VarId {
        let wv = g.param(store, w);
        let uv = g.param(store, u);
        let bv = g.param(store, b);
        let wxb = g.affine(wv, x, bv);
        let uh = g.matvec(uv, h);
        g.add(wxb, uh)
    }

    /// One step of the cell.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: VarId, h: VarId) -> VarId {
        let z_pre = self.affine(g, store, (self.wz, self.uz, self.bz), x, h);
        let z = g.sigmoid(z_pre);
        let r_pre = self.affine(g, store, (self.wr, self.ur, self.br), x, h);
        let r = g.sigmoid(r_pre);
        let rh = g.mul(r, h);
        let cand_pre = self.affine(g, store, (self.wh, self.uh, self.bh), x, rh);
        let cand = g.tanh(cand_pre);
        // h' = h + z ⊙ (h̃ − h)
        let delta = g.sub(cand, h);
        let z_delta = g.mul(z, delta);
        g.add(h, z_delta)
    }

    /// A zero initial hidden state.
    pub fn zero_state(&self, g: &mut Graph) -> VarId {
        g.zeros(self.hidden, 1)
    }

    /// Runs over a sequence, returning the final hidden state.
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, xs: &[VarId]) -> VarId {
        let mut h = self.zero_state(g);
        for &x in xs {
            h = self.step(g, store, x, h);
        }
        h
    }

    /// All parameter ids of the cell.
    pub fn params(&self) -> Vec<ParamId> {
        vec![
            self.wz, self.uz, self.bz, self.wr, self.ur, self.br, self.wh, self.uh, self.bh,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::{assert_grads_close, Tensor};

    #[test]
    fn gru_gradients_check_out() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(50);
        let cell = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let xs: Vec<VarId> =
                (0..3).map(|i| g.input(tensor::pseudo_tensor(2, 1, i + 60))).collect();
            let h = cell.encode(&mut g, s, &xs);
            let l = g.cross_entropy(h, 2);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        assert_grads_close(&store, &cell.params(), 1e-3, 2e-2, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
    }

    #[test]
    fn zero_update_gate_preserves_state() {
        // With bz pushed to −∞-ish, z ≈ 0 and h' ≈ h.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(51);
        let cell = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        store.get_mut(cell.bz).value = Tensor::full(3, 1, -30.0);
        let mut g = Graph::new();
        let x = g.input(tensor::pseudo_tensor(2, 1, 70));
        let h0 = g.input(Tensor::vector(vec![0.3, -0.2, 0.5]));
        let h1 = cell.step(&mut g, &store, x, h0);
        for (a, b) in g.value(h1).data().iter().zip(g.value(h0).data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_sequence_encodes_to_zero() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(52);
        let cell = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        let mut g = Graph::new();
        let h = cell.encode(&mut g, &store, &[]);
        assert_eq!(g.value(h).data(), &[0.0; 3]);
    }
}
