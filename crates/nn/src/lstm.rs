//! A standard LSTM cell.
//!
//! Used by ablation benches as an alternative sequence encoder, and as the
//! reference point for the Child-Sum TreeLSTM (a TreeLSTM over a chain
//! degenerates to this cell — property-tested in `treelstm.rs`).

use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, Tensor, VarId};

/// LSTM hidden/cell state pair.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state h.
    pub h: VarId,
    /// Cell state c.
    pub c: VarId,
}

/// A standard LSTM cell with input, forget, output gates and candidate
/// update.
#[derive(Debug, Clone, Copy)]
pub struct LstmCell {
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wu: ParamId,
    uu: ParamId,
    bu: ParamId,
    /// Hidden size.
    pub hidden: usize,
}

impl LstmCell {
    /// Registers a fresh cell in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> LstmCell {
        let mut mat = |suffix: &str, rows: usize, cols: usize, rng: &mut R| {
            store.add_xavier(format!("{name}.{suffix}"), rows, cols, rng)
        };
        let wi = mat("wi", hidden, input, rng);
        let ui = mat("ui", hidden, hidden, rng);
        let wf = mat("wf", hidden, input, rng);
        let uf = mat("uf", hidden, hidden, rng);
        let wo = mat("wo", hidden, input, rng);
        let uo = mat("uo", hidden, hidden, rng);
        let wu = mat("wu", hidden, input, rng);
        let uu = mat("uu", hidden, hidden, rng);
        // Forget-gate bias starts at 1 (standard trick for gradient flow).
        let bf = store.add(format!("{name}.bf"), Tensor::full(hidden, 1, 1.0));
        let bi = store.add_zeros(format!("{name}.bi"), hidden, 1);
        let bo = store.add_zeros(format!("{name}.bo"), hidden, 1);
        let bu = store.add_zeros(format!("{name}.bu"), hidden, 1);
        LstmCell { wi, ui, bi, wf, uf, bf, wo, uo, bo, wu, uu, bu, hidden }
    }

    fn gate(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        (w, u, b): (ParamId, ParamId, ParamId),
        x: VarId,
        h: VarId,
    ) -> VarId {
        let wv = g.param(store, w);
        let uv = g.param(store, u);
        let bv = g.param(store, b);
        let wxb = g.affine(wv, x, bv);
        let uh = g.matvec(uv, h);
        g.add(wxb, uh)
    }

    /// One step of the cell.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: VarId, state: LstmState) -> LstmState {
        let i_pre = self.gate(g, store, (self.wi, self.ui, self.bi), x, state.h);
        let i = g.sigmoid(i_pre);
        let f_pre = self.gate(g, store, (self.wf, self.uf, self.bf), x, state.h);
        let f = g.sigmoid(f_pre);
        let o_pre = self.gate(g, store, (self.wo, self.uo, self.bo), x, state.h);
        let o = g.sigmoid(o_pre);
        let u_pre = self.gate(g, store, (self.wu, self.uu, self.bu), x, state.h);
        let u = g.tanh(u_pre);
        let iu = g.mul(i, u);
        let fc = g.mul(f, state.c);
        let c = g.add(iu, fc);
        let tc = g.tanh(c);
        let h = g.mul(o, tc);
        LstmState { h, c }
    }

    /// A zero initial state.
    pub fn zero_state(&self, g: &mut Graph) -> LstmState {
        LstmState {
            h: g.zeros(self.hidden, 1),
            c: g.zeros(self.hidden, 1),
        }
    }

    /// Runs over a sequence, returning the final hidden state.
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, xs: &[VarId]) -> VarId {
        let mut state = self.zero_state(g);
        for &x in xs {
            state = self.step(g, store, x, state);
        }
        state.h
    }

    /// All parameter ids of the cell.
    pub fn params(&self) -> Vec<ParamId> {
        vec![
            self.wi, self.ui, self.bi, self.wf, self.uf, self.bf, self.wo, self.uo, self.bo,
            self.wu, self.uu, self.bu,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::assert_grads_close;

    #[test]
    fn lstm_gradients_check_out() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(&mut store, "l", 2, 3, &mut rng);

        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let xs: Vec<VarId> =
                (0..3).map(|i| g.input(tensor::pseudo_tensor(2, 1, i + 10))).collect();
            let h = cell.encode(&mut g, s, &xs);
            let l = g.cross_entropy(h, 1);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        assert_grads_close(&store, &cell.params(), 1e-3, 2e-2, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
    }

    #[test]
    fn empty_sequence_gives_zero_hidden() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(&mut store, "l", 2, 3, &mut rng);
        let mut g = Graph::new();
        let h = cell.encode(&mut g, &store, &[]);
        assert_eq!(g.value(h).data(), &[0.0; 3]);
    }
}
