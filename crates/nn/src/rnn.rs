//! Vanilla recurrent cells (Equation 1 of the paper).
//!
//! All of LIGER's sequence encoders (f₁ for object values, f₂ for program
//! states, f₃ for blended-trace flow) and its decoder RNN are single-layer
//! vanilla RNNs with 100 hidden units in the paper: hₜ = f(W·xₜ + V·hₜ₋₁).

use rand::Rng;
use tensor::{Act, Graph, ParamId, ParamStore, VarId};

/// A vanilla tanh RNN cell: `h' = tanh(W x + V h + b)`.
#[derive(Debug, Clone, Copy)]
pub struct RnnCell {
    /// Input weights (`hidden × input`).
    pub w: ParamId,
    /// Recurrent weights (`hidden × hidden`).
    pub v: ParamId,
    /// Bias (`hidden × 1`).
    pub b: ParamId,
    /// Hidden size.
    pub hidden: usize,
}

impl RnnCell {
    /// Registers a fresh cell in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> RnnCell {
        RnnCell {
            w: store.add_xavier(format!("{name}.w"), hidden, input, rng),
            v: store.add_xavier(format!("{name}.v"), hidden, hidden, rng),
            b: store.add_zeros(format!("{name}.b"), hidden, 1),
            hidden,
        }
    }

    /// One step: `h' = tanh(W x + V h + b)`, as a single fused gate node
    /// (bitwise identical to the matvec/matvec/add/add/tanh chain).
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: VarId, h: VarId) -> VarId {
        let w = g.param(store, self.w);
        let v = g.param(store, self.v);
        let b = g.param(store, self.b);
        g.gate(w, x, v, h, b, Act::Tanh)
    }

    /// A zero initial hidden state.
    pub fn zero_state(&self, g: &mut Graph) -> VarId {
        g.zeros(self.hidden, 1)
    }

    /// Runs the cell over a sequence, returning every hidden state
    /// (h₁ … hₜ). Returns an empty vector for an empty input sequence.
    pub fn run(&self, g: &mut Graph, store: &ParamStore, xs: &[VarId]) -> Vec<VarId> {
        let mut h = self.zero_state(g);
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.step(g, store, x, h);
            out.push(h);
        }
        out
    }

    /// Runs the cell over a sequence and returns the final hidden state
    /// (the zero state for an empty sequence).
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, xs: &[VarId]) -> VarId {
        let states = self.run(g, store, xs);
        states.last().copied().unwrap_or_else(|| self.zero_state(g))
    }

    /// All parameter ids of the cell.
    pub fn params(&self) -> Vec<ParamId> {
        vec![self.w, self.v, self.b]
    }
}

/// A bidirectional wrapper: concatenates forward and backward hidden
/// states per position (used by the code2seq baseline's path encoder and
/// described in the paper's §4.3 background).
#[derive(Debug, Clone, Copy)]
pub struct BiRnn {
    /// The forward-direction cell.
    pub fwd: RnnCell,
    /// The backward-direction cell.
    pub bwd: RnnCell,
}

impl BiRnn {
    /// Registers a fresh bidirectional pair in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> BiRnn {
        BiRnn {
            fwd: RnnCell::new(store, &format!("{name}.fwd"), input, hidden, rng),
            bwd: RnnCell::new(store, &format!("{name}.bwd"), input, hidden, rng),
        }
    }

    /// Per-position annotations `[→hᵢ ; ←hᵢ]` (each `2·hidden × 1`).
    pub fn annotations(&self, g: &mut Graph, store: &ParamStore, xs: &[VarId]) -> Vec<VarId> {
        let fwd = self.fwd.run(g, store, xs);
        let rev: Vec<VarId> = xs.iter().rev().copied().collect();
        let mut bwd = self.bwd.run(g, store, &rev);
        bwd.reverse();
        fwd.into_iter().zip(bwd).map(|(f, b)| g.concat(&[f, b])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::assert_grads_close;

    fn inputs(g: &mut Graph, n: usize, d: usize) -> Vec<VarId> {
        (0..n).map(|i| g.input(tensor::pseudo_tensor(d, 1, i as u32 + 1))).collect()
    }

    #[test]
    fn run_produces_one_state_per_input() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = RnnCell::new(&mut store, "r", 3, 4, &mut rng);
        let mut g = Graph::new();
        let xs = inputs(&mut g, 5, 3);
        let hs = cell.run(&mut g, &store, &xs);
        assert_eq!(hs.len(), 5);
        assert_eq!(g.value(hs[0]).rows(), 4);
    }

    #[test]
    fn empty_sequence_encodes_to_zero_state() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = RnnCell::new(&mut store, "r", 3, 4, &mut rng);
        let mut g = Graph::new();
        let h = cell.encode(&mut g, &store, &[]);
        assert_eq!(g.value(h).data(), &[0.0; 4]);
    }

    #[test]
    fn rnn_gradients_check_out() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = RnnCell::new(&mut store, "r", 2, 3, &mut rng);

        let loss_fn = |s: &ParamStore| {
            let mut g = Graph::new();
            let xs = inputs(&mut g, 4, 2);
            let h = cell.encode(&mut g, s, &xs);
            let l = g.cross_entropy(h, 0);
            g.value(l).item()
        };

        let mut g = Graph::new();
        let xs = inputs(&mut g, 4, 2);
        let h = cell.encode(&mut g, &store, &xs);
        let l = g.cross_entropy(h, 0);
        g.backward(l, &mut store);

        assert_grads_close(&store, &cell.params(), 1e-3, 2e-2, loss_fn);
    }

    #[test]
    fn birnn_annotation_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let bi = BiRnn::new(&mut store, "bi", 2, 3, &mut rng);
        let mut g = Graph::new();
        let xs = inputs(&mut g, 4, 2);
        let anns = bi.annotations(&mut g, &store, &xs);
        assert_eq!(anns.len(), 4);
        assert_eq!(g.value(anns[0]).rows(), 6);
    }

    #[test]
    fn hidden_states_are_bounded_by_tanh() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cell = RnnCell::new(&mut store, "r", 2, 3, &mut rng);
        let mut g = Graph::new();
        let xs = inputs(&mut g, 10, 2);
        for h in cell.run(&mut g, &store, &xs) {
            assert!(g.value(h).data().iter().all(|v| v.abs() <= 1.0));
        }
    }
}
