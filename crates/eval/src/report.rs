//! Markdown/console renderers for experiment results — the rows the bench
//! harness prints so each table/figure can be compared against the paper.

use crate::experiments::{
    AblationRow, ClassScores, ConcreteRow, CosetReductionRow, NameScores, SymbolicRow,
};
use datagen::FilterStats;
use std::fmt::Write;

/// Renders Table 1's row for one dataset scale.
pub fn table1_markdown(scale_name: &str, stats: &FilterStats) -> String {
    let mut out = String::new();
    writeln!(out, "| Dataset | Original | Filtered | no-compile | no-exec | timeout | too-small |")
        .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|").unwrap();
    writeln!(
        out,
        "| {scale_name} | {} | {} | {} | {} | {} | {} |",
        stats.original, stats.kept, stats.no_compile, stats.no_exec, stats.timeout, stats.too_small
    )
    .unwrap();
    out
}

/// Renders Table 2 rows for one dataset scale.
pub fn table2_markdown(scale_name: &str, rows: &[(String, NameScores)]) -> String {
    let mut out = String::new();
    writeln!(out, "| Model ({scale_name}) | Precision | Recall | F1 |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for (model, s) in rows {
        writeln!(out, "| {model} | {:.2} | {:.2} | {:.2} |", s.precision, s.recall, s.f1)
            .unwrap();
    }
    out
}

/// Renders a concrete-reduction figure (Fig. 6a/6b, 8-left).
pub fn concrete_markdown(title: &str, rows: &[ConcreteRow]) -> String {
    let mut out = String::new();
    writeln!(out, "| {title}: #concrete | LIGER F1 | DYPRO F1 | static-attn |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for r in rows {
        let attn = r
            .liger_static_attention
            .map_or_else(|| "-".to_string(), |a| format!("{a:.3}"));
        writeln!(out, "| {} | {:.2} | {:.2} | {attn} |", r.concrete, r.liger_f1, r.dypro_f1)
            .unwrap();
    }
    out
}

/// Renders a symbolic-reduction figure (Fig. 6c/6d, 9, 10).
pub fn symbolic_markdown(title: &str, rows: &[SymbolicRow]) -> String {
    let mut out = String::new();
    writeln!(out, "| {title}: paths | LIGER F1 | DYPRO F1 |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    for r in rows {
        writeln!(out, "| {} | {:.2} | {:.2} |", r.level, r.liger_f1, r.dypro_f1).unwrap();
    }
    out
}

/// Renders Table 3.
pub fn table3_markdown(rows: &[(String, ClassScores)]) -> String {
    let mut out = String::new();
    writeln!(out, "| Model | Accuracy | F1 |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    for (model, s) in rows {
        writeln!(out, "| {model} | {:.1}% | {:.2} |", s.accuracy, s.f1).unwrap();
    }
    out
}

/// Renders Figure 7's reduction rows.
pub fn fig7_markdown(rows: &[CosetReductionRow]) -> String {
    let mut out = String::new();
    writeln!(out, "| Level | LIGER acc | DYPRO acc |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    for r in rows {
        writeln!(out, "| {} | {:.1}% | {:.1}% |", r.level, r.liger_acc, r.dypro_acc).unwrap();
    }
    out
}

/// Renders Figure 11's ablation summary.
pub fn fig11_markdown(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    writeln!(out, "| Configuration | F1 full | F1 min-cover | F1 one-concrete |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} |",
            r.config, r.full_f1, r.min_cover_f1, r.one_concrete_f1
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_nonempty_markdown() {
        let stats = FilterStats { original: 10, kept: 8, no_compile: 1, too_small: 1, ..Default::default() };
        let t1 = table1_markdown("med", &stats);
        assert!(t1.contains("| med | 10 | 8 |"));

        let rows =
            vec![("LIGER".to_string(), NameScores { precision: 40.0, recall: 30.0, f1: 34.3 })];
        let t2 = table2_markdown("med", &rows);
        assert!(t2.contains("LIGER") && t2.contains("34.30"));

        let c = concrete_markdown(
            "fig6a",
            &[ConcreteRow {
                concrete: 5,
                liger_f1: 30.0,
                dypro_f1: 28.0,
                liger_static_attention: Some(0.6),
            }],
        );
        assert!(c.contains("0.600"));

        let s = symbolic_markdown(
            "fig6c",
            &[SymbolicRow { level: "min-cover".into(), liger_f1: 1.0, dypro_f1: 2.0 }],
        );
        assert!(s.contains("min-cover"));
    }
}
