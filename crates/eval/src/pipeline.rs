//! Dataset preparation shared by every experiment.
//!
//! Turns the raw corpora of `datagen` into model-ready inputs for all
//! four models, with vocabularies built from the *training* split only
//! (test-time out-of-vocabulary tokens fall back to `<UNK>` exactly as in
//! the paper's setting), and with each sample's blended traces pre-ordered
//! by the §6.1.2 line-coverage reduction order so down-sampling
//! experiments are a prefix operation.
//!
//! The per-program work — blending traces and encoding each sample for
//! all four models — is independent across programs, so both preparation
//! passes fan out over [`par::par_map_ordered`]; results come back in
//! corpus order, so prepared datasets are identical for any thread count.

use baselines::{
    code2seq_input, code2seq_vocabs, code2vec_input, contexts_into_vocabs, dypro_input,
    names_into_vocab, Code2SeqInput, Code2VecInput, DyproOptions, DyproProgram, PathConfig,
};
use datagen::{CosetCorpus, MethodCorpus};
use liger::{
    encode_program, program_into_vocab, EncodeOptions, EncodedProgram, OutVocab, TokenId, Vocab,
};
use minilang::Program;
use rand::Rng;
use randgen::reduction_order;
use trace::BlendedTrace;

/// One fully-prepared method-name sample.
#[derive(Debug, Clone)]
pub struct PreparedMethod {
    /// Ground-truth method name.
    pub name: String,
    /// Its lowercase sub-tokens (metric ground truth).
    pub subtokens: Vec<String>,
    /// Decoder target ids (sub-tokens + `<EOS>`).
    pub target: Vec<TokenId>,
    /// Whole-name label id (code2vec's prediction space).
    pub name_label: usize,
    /// The program (needed to re-encode under reduction).
    pub program: Program,
    /// Blended traces ordered min-line-cover-first.
    pub blended: Vec<BlendedTrace>,
    /// LIGER's input at full traces.
    pub liger: EncodedProgram,
    /// DYPRO's input at full traces.
    pub dypro: DyproProgram,
    /// code2vec's input.
    pub c2v: Code2VecInput,
    /// code2seq's input.
    pub c2s: Code2SeqInput,
    /// Size of the minimum line-covering path set.
    pub min_cover: usize,
}

/// One fully-prepared classification sample.
#[derive(Debug, Clone)]
pub struct PreparedCoset {
    /// The strategy class label.
    pub label: usize,
    /// The program.
    pub program: Program,
    /// Blended traces ordered min-line-cover-first.
    pub blended: Vec<BlendedTrace>,
    /// LIGER's input at full traces.
    pub liger: EncodedProgram,
    /// DYPRO's input at full traces.
    pub dypro: DyproProgram,
    /// Size of the minimum line-covering path set.
    pub min_cover: usize,
}

/// All vocabularies of the method-name task.
#[derive(Debug, Clone)]
pub struct MethodVocabs {
    /// Shared input vocabulary 𝒟ₛ ∪ 𝒟_d (LIGER, DYPRO).
    pub input: Vocab,
    /// Output sub-token vocabulary.
    pub output: OutVocab,
    /// code2vec terminal vocabulary.
    pub terms: Vocab,
    /// code2vec path vocabulary.
    pub paths: Vocab,
    /// code2seq input sub-token vocabulary.
    pub subtokens: Vocab,
    /// code2seq node-type vocabulary.
    pub nodes: Vocab,
    /// Whole-name label vocabulary (code2vec's outputs).
    pub name_labels: Vocab,
}

/// A prepared method-name dataset.
#[derive(Debug, Clone)]
pub struct MethodDataset {
    /// Vocabularies (built from the training split).
    pub vocabs: MethodVocabs,
    /// Training samples.
    pub train: Vec<PreparedMethod>,
    /// Test samples.
    pub test: Vec<PreparedMethod>,
}

/// A prepared classification dataset.
#[derive(Debug, Clone)]
pub struct CosetDataset {
    /// Shared input vocabulary.
    pub vocab: Vocab,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples.
    pub train: Vec<PreparedCoset>,
    /// Test samples.
    pub test: Vec<PreparedCoset>,
}

/// Encoding bounds shared across models.
#[derive(Debug, Clone, Copy)]
pub struct PrepareOptions {
    /// LIGER/DYPRO trace bounds.
    pub encode: EncodeOptions,
    /// Baseline path-context bounds.
    pub paths: PathConfig,
    /// Fraction of samples used for training (rest is test).
    pub train_frac: f64,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            encode: EncodeOptions { max_steps: 25, max_traces: 12 },
            paths: PathConfig::default(),
            train_frac: 0.75,
        }
    }
}

fn blend_ordered(
    program: &Program,
    groups: &[trace::PathGroup],
    concrete: usize,
) -> (Vec<BlendedTrace>, usize) {
    let order = reduction_order(program, groups);
    let min_cover = randgen::min_line_cover(program, groups).len();
    let blended = order
        .iter()
        .filter_map(|&i| groups[i].blend(concrete).ok())
        .collect();
    (blended, min_cover)
}

/// Prepares the method-name dataset from a generated corpus.
pub fn prepare_method_dataset<R: Rng + ?Sized>(
    corpus: &MethodCorpus,
    opts: &PrepareOptions,
    concrete_per_path: usize,
    rng: &mut R,
) -> MethodDataset {
    let _span = obs::span!("eval.prepare");
    let split = datagen::split_indices(corpus.samples.len(), opts.train_frac, 0.0, rng);

    // Pass 1: vocabularies from the training split.
    let mut vocabs = MethodVocabs {
        input: Vocab::new(),
        output: OutVocab::new(),
        terms: Vocab::new(),
        paths: Vocab::new(),
        subtokens: Vocab::new(),
        nodes: Vocab::new(),
        name_labels: Vocab::new(),
    };
    let blended_cache: Vec<(Vec<BlendedTrace>, usize)> =
        par::par_map_ordered(&corpus.samples, |_, sample| {
            blend_ordered(&sample.program, &sample.groups, concrete_per_path)
        });
    for &i in &split.train {
        let sample = &corpus.samples[i];
        let (blended, _) = &blended_cache[i];
        program_into_vocab(&sample.program, blended, &mut vocabs.input, &opts.encode);
        names_into_vocab(&sample.program, &mut vocabs.input);
        for t in minilang::subtokens(&sample.name) {
            vocabs.output.add(&t);
        }
        vocabs.name_labels.add(&sample.name);
        contexts_into_vocabs(&sample.program, &opts.paths, &mut vocabs.terms, &mut vocabs.paths);
        code2seq_vocabs(&sample.program, &opts.paths, &mut vocabs.subtokens, &mut vocabs.nodes);
    }

    // Pass 2: encode every sample against the frozen vocabularies.
    let dypro_opts = DyproOptions {
        max_steps: opts.encode.max_steps,
        max_traces: opts.encode.max_traces * concrete_per_path,
    };
    let prepare = |i: usize| -> PreparedMethod {
        let sample = &corpus.samples[i];
        let (blended, min_cover) = blended_cache[i].clone();
        let liger = encode_program(&sample.program, &blended, &vocabs.input, &opts.encode);
        let dypro = dypro_input(&sample.program, &blended, &vocabs.input, &dypro_opts);
        let contexts = baselines::extract_path_contexts(&sample.program, &opts.paths);
        let c2v = code2vec_input(&contexts, &vocabs.terms, &vocabs.paths);
        let c2s = code2seq_input(&contexts, &vocabs.subtokens, &vocabs.nodes);
        PreparedMethod {
            subtokens: minilang::subtokens(&sample.name),
            target: vocabs.output.encode_name(&sample.name),
            name_label: vocabs.name_labels.get(&sample.name),
            name: sample.name.clone(),
            program: sample.program.clone(),
            blended,
            liger,
            dypro,
            c2v,
            c2s,
            min_cover,
        }
    };
    let train: Vec<PreparedMethod> = par::par_map_ordered(&split.train, |_, &i| prepare(i));
    let test: Vec<PreparedMethod> = par::par_map_ordered(&split.test, |_, &i| prepare(i));
    MethodDataset { vocabs, train, test }
}

/// Prepares the classification dataset from a generated COSET-like corpus.
pub fn prepare_coset_dataset<R: Rng + ?Sized>(
    corpus: &CosetCorpus,
    opts: &PrepareOptions,
    concrete_per_path: usize,
    rng: &mut R,
) -> CosetDataset {
    let _span = obs::span!("eval.prepare");
    let split = datagen::split_indices(corpus.samples.len(), opts.train_frac, 0.0, rng);
    let mut vocab = Vocab::new();
    let blended_cache: Vec<(Vec<BlendedTrace>, usize)> =
        par::par_map_ordered(&corpus.samples, |_, sample| {
            blend_ordered(&sample.program, &sample.groups, concrete_per_path)
        });
    for &i in &split.train {
        let sample = &corpus.samples[i];
        program_into_vocab(&sample.program, &blended_cache[i].0, &mut vocab, &opts.encode);
        names_into_vocab(&sample.program, &mut vocab);
    }
    let dypro_opts = DyproOptions {
        max_steps: opts.encode.max_steps,
        max_traces: opts.encode.max_traces * concrete_per_path,
    };
    let prepare = |i: usize| -> PreparedCoset {
        let sample = &corpus.samples[i];
        let (blended, min_cover) = blended_cache[i].clone();
        PreparedCoset {
            label: sample.label,
            liger: encode_program(&sample.program, &blended, &vocab, &opts.encode),
            dypro: dypro_input(&sample.program, &blended, &vocab, &dypro_opts),
            program: sample.program.clone(),
            blended,
            min_cover,
        }
    };
    let train: Vec<PreparedCoset> = par::par_map_ordered(&split.train, |_, &i| prepare(i));
    let test: Vec<PreparedCoset> = par::par_map_ordered(&split.test, |_, &i| prepare(i));
    CosetDataset { vocab, num_classes: datagen::Strategy::ALL.len(), train, test }
}

/// Re-encodes a prepared method sample at a reduced number of concrete
/// traces per path (§6.1.2, Figure 6a/6b).
pub fn method_at_concrete(
    sample: &PreparedMethod,
    vocab: &Vocab,
    opts: &EncodeOptions,
    concrete: usize,
) -> (EncodedProgram, DyproProgram) {
    let reduced: Vec<BlendedTrace> =
        sample.blended.iter().map(|b| b.with_concrete_limit(concrete)).collect();
    let liger = encode_program(&sample.program, &reduced, vocab, opts);
    let dypro_opts =
        DyproOptions { max_steps: opts.max_steps, max_traces: opts.max_traces * concrete };
    let dypro = dypro_input(&sample.program, &reduced, vocab, &dypro_opts);
    (liger, dypro)
}

/// Re-encodes a prepared method sample at a reduced number of symbolic
/// traces (paths), preserving line coverage for any count ≥ `min_cover`
/// (§6.1.2, Figure 6c/6d). Also limits concrete traces to `concrete`.
pub fn method_at_paths(
    sample: &PreparedMethod,
    vocab: &Vocab,
    opts: &EncodeOptions,
    paths: usize,
    concrete: usize,
) -> (EncodedProgram, DyproProgram) {
    let reduced: Vec<BlendedTrace> = sample
        .blended
        .iter()
        .take(paths.max(1))
        .map(|b| b.with_concrete_limit(concrete))
        .collect();
    let liger = encode_program(&sample.program, &reduced, vocab, opts);
    let dypro_opts =
        DyproOptions { max_steps: opts.max_steps, max_traces: opts.max_traces * concrete };
    let dypro = dypro_input(&sample.program, &reduced, vocab, &dypro_opts);
    (liger, dypro)
}

/// The classification-task analogue of [`method_at_paths`].
pub fn coset_at(
    sample: &PreparedCoset,
    vocab: &Vocab,
    opts: &EncodeOptions,
    paths: usize,
    concrete: usize,
) -> (EncodedProgram, DyproProgram) {
    let reduced: Vec<BlendedTrace> = sample
        .blended
        .iter()
        .take(paths.max(1))
        .map(|b| b.with_concrete_limit(concrete))
        .collect();
    let liger = encode_program(&sample.program, &reduced, vocab, opts);
    let dypro_opts =
        DyproOptions { max_steps: opts.max_steps, max_traces: opts.max_traces * concrete };
    let dypro = dypro_input(&sample.program, &reduced, vocab, &dypro_opts);
    (liger, dypro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_method_corpus, CorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_corpus() -> MethodCorpus {
        let mut rng = StdRng::seed_from_u64(600);
        let config = CorpusConfig {
            variants_per_family: 1,
            defect_prob: 0.0,
            gen: randgen::GenConfig {
                target_paths: 4,
                concrete_per_path: 3,
                max_attempts: 150,
                ..randgen::GenConfig::default()
            },
            ..CorpusConfig::default()
        };
        generate_method_corpus(&config, &mut rng)
    }

    #[test]
    fn prepared_dataset_is_complete() {
        let corpus = tiny_corpus();
        let mut rng = StdRng::seed_from_u64(601);
        let ds = prepare_method_dataset(&corpus, &PrepareOptions::default(), 3, &mut rng);
        assert!(!ds.train.is_empty() && !ds.test.is_empty());
        assert_eq!(ds.train.len() + ds.test.len(), corpus.samples.len());
        for s in ds.train.iter().chain(&ds.test) {
            assert!(!s.target.is_empty());
            assert!(!s.liger.traces.is_empty());
            assert!(!s.dypro.traces.is_empty());
            assert!(s.min_cover >= 1 && s.min_cover <= s.blended.len());
            assert!(!s.subtokens.is_empty());
        }
        assert!(ds.vocabs.input.len() > 10);
        assert!(!ds.vocabs.output.is_empty());
    }

    #[test]
    fn concrete_reduction_shrinks_states() {
        let corpus = tiny_corpus();
        let mut rng = StdRng::seed_from_u64(602);
        let opts = PrepareOptions::default();
        let ds = prepare_method_dataset(&corpus, &opts, 3, &mut rng);
        let sample = &ds.train[0];
        let (liger1, dypro1) =
            method_at_concrete(sample, &ds.vocabs.input, &opts.encode, 1);
        for t in &liger1.traces {
            for step in &t.steps {
                assert_eq!(step.states.len(), 1);
            }
        }
        assert!(dypro1.traces.len() <= sample.dypro.traces.len());
    }

    #[test]
    fn path_reduction_keeps_prefix() {
        let corpus = tiny_corpus();
        let mut rng = StdRng::seed_from_u64(603);
        let opts = PrepareOptions::default();
        let ds = prepare_method_dataset(&corpus, &opts, 3, &mut rng);
        let sample = ds
            .train
            .iter()
            .find(|s| s.blended.len() >= 2)
            .expect("some sample has multiple paths");
        let (liger, _) = method_at_paths(sample, &ds.vocabs.input, &opts.encode, 1, 3);
        assert_eq!(liger.traces.len(), 1);
    }
}
