//! Experiment drivers — one entry point per table/figure of §6.
//!
//! Every driver is deterministic given a [`Scale`] (which fixes the seed,
//! corpus size, and model size). Absolute numbers differ from the paper
//! (synthetic corpus, small models, CPU — see EXPERIMENTS.md); the
//! *shapes* are the reproduction target: model ordering in Table 2/3,
//! LIGER's flatness under concrete-trace reduction, its resilience under
//! line-coverage-preserving path reduction, and the ablation orderings of
//! Figures 8–11.

use crate::baseline_train::{
    train_code2seq, train_code2vec, train_dypro_classifier, train_dypro_namer,
    BaselineTrainConfig,
};
use crate::metrics::{Accuracy, ClassF1, PrecisionRecallF1};
use crate::pipeline::{
    coset_at, method_at_paths, prepare_coset_dataset, prepare_method_dataset, CosetDataset,
    MethodDataset, PrepareOptions,
};
use baselines::{Code2Seq, Code2Vec, DyproClassifier, DyproNamer};
use datagen::{generate_coset_corpus, generate_method_corpus, CorpusConfig, FilterStats};
use liger::{
    Ablation, ClassSample, EncodeOptions, LigerClassifier, LigerConfig, LigerModel, LigerNamer,
    NameSample, TrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use randgen::GenConfig;
use tensor::ParamStore;

/// The size of one experimental run: corpus scale + model scale + seeds.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Display name ("med", "large", …).
    pub name: String,
    /// Variants generated per behaviour family.
    pub variants_per_family: usize,
    /// Model hidden size.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Paths collected per program (the paper's U ≈ 20).
    pub target_paths: usize,
    /// Concrete executions per path (the paper's Nε = 5).
    pub concrete_per_path: usize,
    /// Maximum trace steps encoded.
    pub max_steps: usize,
    /// Maximum paths encoded.
    pub max_traces: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Minimal scale for unit tests (seconds).
    pub fn tiny() -> Scale {
        Scale {
            name: "tiny".into(),
            variants_per_family: 2,
            hidden: 10,
            epochs: 4,
            lr: 0.02,
            target_paths: 4,
            concrete_per_path: 3,
            max_steps: 15,
            max_traces: 4,
            seed: 1,
        }
    }

    /// Default bench scale: large enough for the paper's shapes to be
    /// visible, small enough to finish in minutes on a laptop CPU.
    pub fn bench() -> Scale {
        Scale {
            name: "bench".into(),
            variants_per_family: 8,
            hidden: 16,
            epochs: 16,
            lr: 0.015,
            target_paths: 6,
            concrete_per_path: 4,
            max_steps: 18,
            max_traces: 6,
            seed: 5,
        }
    }

    /// Resolves a scale by name (`tiny`/`bench`/`med`/`large`), e.g. from
    /// the `LIGER_SCALE` environment variable used by the bench harness.
    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "tiny" => Some(Scale::tiny()),
            "bench" => Some(Scale::bench()),
            "med" => Some(Scale::med()),
            "large" => Some(Scale::large()),
            _ => None,
        }
    }

    /// The scale selected by the `LIGER_SCALE` environment variable, or
    /// [`Scale::bench`] when unset/unknown.
    pub fn from_env() -> Scale {
        std::env::var("LIGER_SCALE")
            .ok()
            .and_then(|n| Scale::by_name(&n))
            .unwrap_or_else(Scale::bench)
    }

    /// The Java-med analogue (bench scale; minutes).
    pub fn med() -> Scale {
        Scale {
            name: "med".into(),
            variants_per_family: 6,
            hidden: 16,
            epochs: 12,
            lr: 0.015,
            target_paths: 8,
            concrete_per_path: 5,
            max_steps: 22,
            max_traces: 8,
            seed: 7,
        }
    }

    /// The Java-large analogue (more variants and paths than `med`).
    pub fn large() -> Scale {
        Scale {
            name: "large".into(),
            variants_per_family: 10,
            hidden: 16,
            epochs: 12,
            lr: 0.015,
            target_paths: 10,
            concrete_per_path: 5,
            max_steps: 22,
            max_traces: 10,
            seed: 11,
        }
    }

    fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            variants_per_family: self.variants_per_family,
            gen: GenConfig {
                target_paths: self.target_paths,
                concrete_per_path: self.concrete_per_path,
                max_attempts: 600,
                ..GenConfig::default()
            },
            ..CorpusConfig::default()
        }
    }

    fn prepare_options(&self) -> PrepareOptions {
        PrepareOptions {
            encode: EncodeOptions { max_steps: self.max_steps, max_traces: self.max_traces },
            ..PrepareOptions::default()
        }
    }

    fn liger_config(&self, ablation: Ablation) -> LigerConfig {
        LigerConfig { hidden: self.hidden, attn: self.hidden, max_name_len: 5, ablation }
    }

    fn train_config(&self) -> TrainConfig {
        TrainConfig { epochs: self.epochs * 2, lr: self.lr, batch_size: 2 }
    }

    fn dypro_config(&self) -> BaselineTrainConfig {
        BaselineTrainConfig { epochs: self.epochs * 2, lr: self.lr, batch_size: 2 }
    }

    fn baseline_config(&self) -> BaselineTrainConfig {
        BaselineTrainConfig { epochs: self.epochs, lr: self.lr, batch_size: 2 }
    }
}

/// Builds the method-name dataset for a scale (Table 1 numbers included).
pub fn build_method_dataset(scale: &Scale) -> (MethodDataset, FilterStats) {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let corpus = generate_method_corpus(&scale.corpus_config(), &mut rng);
    let stats = corpus.stats;
    let ds = prepare_method_dataset(
        &corpus,
        &scale.prepare_options(),
        scale.concrete_per_path,
        &mut rng,
    );
    (ds, stats)
}

/// [`build_method_dataset`] through the artifact store: a warm store
/// serves every program's filter verdict and traces without executing
/// anything. Note the stored pipeline derives per-program trace RNGs,
/// so its corpus differs from the plain builder's even cold — but is
/// identical across cold/warm/no-store runs of *itself*.
///
/// # Errors
///
/// Typed [`store::StoreError`] when a cached outcome is corrupt.
pub fn build_method_dataset_stored(
    scale: &Scale,
    store: Option<&store::Store>,
) -> Result<(MethodDataset, FilterStats), store::StoreError> {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let corpus =
        datagen::generate_method_corpus_with_store(&scale.corpus_config(), &mut rng, store)?;
    let stats = corpus.stats;
    let ds = prepare_method_dataset(
        &corpus,
        &scale.prepare_options(),
        scale.concrete_per_path,
        &mut rng,
    );
    Ok((ds, stats))
}

/// Builds the COSET-like dataset for a scale.
pub fn build_coset_dataset(scale: &Scale) -> (CosetDataset, FilterStats) {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(1000));
    let corpus = generate_coset_corpus(&scale.corpus_config(), &mut rng);
    let stats = corpus.stats;
    let ds = prepare_coset_dataset(
        &corpus,
        &scale.prepare_options(),
        scale.concrete_per_path,
        &mut rng,
    );
    (ds, stats)
}

/// [`build_coset_dataset`] through the artifact store; see
/// [`build_method_dataset_stored`] for the replay contract.
///
/// # Errors
///
/// Typed [`store::StoreError`] when a cached outcome is corrupt.
pub fn build_coset_dataset_stored(
    scale: &Scale,
    store: Option<&store::Store>,
) -> Result<(CosetDataset, FilterStats), store::StoreError> {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(1000));
    let corpus =
        datagen::generate_coset_corpus_with_store(&scale.corpus_config(), &mut rng, store)?;
    let stats = corpus.stats;
    let ds = prepare_coset_dataset(
        &corpus,
        &scale.prepare_options(),
        scale.concrete_per_path,
        &mut rng,
    );
    Ok((ds, stats))
}

/// **Table 1** — dataset statistics before/after filtering.
pub fn table1(scale: &Scale) -> FilterStats {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    generate_method_corpus(&scale.corpus_config(), &mut rng).stats
}

/// Sub-token scores of one model on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NameScores {
    /// Precision (%).
    pub precision: f64,
    /// Recall (%).
    pub recall: f64,
    /// F1 (%).
    pub f1: f64,
}

impl From<PrecisionRecallF1> for NameScores {
    fn from(m: PrecisionRecallF1) -> NameScores {
        NameScores { precision: m.precision(), recall: m.recall(), f1: m.f1() }
    }
}

/// How many symbolic traces (paths) a reduction level keeps, per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathLevel {
    /// All collected paths.
    Full,
    /// `max(min_cover, ceil(fraction × total))` — removes only paths
    /// outside the minimum line-cover, as in §6.1.2.
    Fraction(f64),
    /// Exactly the minimum line-covering set.
    MinCover,
    /// A fixed count (used for the single-trace extreme).
    Count(usize),
}

impl PathLevel {
    /// Resolves the level to a path count for one sample. A sample with
    /// no paths at all resolves to 0.
    pub fn resolve(&self, total: usize, min_cover: usize) -> usize {
        if total == 0 {
            return 0;
        }
        match *self {
            PathLevel::Full => total,
            PathLevel::Fraction(f) => {
                ((total as f64 * f).ceil() as usize).max(min_cover).min(total).max(1)
            }
            PathLevel::MinCover => min_cover.clamp(1, total),
            PathLevel::Count(k) => k.clamp(1, total),
        }
    }

    /// Display label for result rows.
    pub fn label(&self) -> String {
        match *self {
            PathLevel::Full => "full".into(),
            PathLevel::Fraction(f) => format!("{:.0}%", f * 100.0),
            PathLevel::MinCover => "min-cover".into(),
            PathLevel::Count(k) => format!("{k}"),
        }
    }
}

/// Trains LIGER's namer on `ds.train` at the given reduction levels and
/// returns the trained model with its parameters — checkpoint them with
/// [`tensor::ParamStore::save_to_path`] and restore with
/// [`load_method_namer`].
pub fn train_method_namer(
    ds: &MethodDataset,
    scale: &Scale,
    ablation: Ablation,
    paths: PathLevel,
    concrete: usize,
) -> (LigerNamer, ParamStore) {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(42));
    let opts = scale.prepare_options().encode;
    let at = |s: &crate::pipeline::PreparedMethod| {
        let keep = paths.resolve(s.blended.len(), s.min_cover);
        method_at_paths(s, &ds.vocabs.input, &opts, keep, concrete).0
    };
    let samples: Vec<NameSample> = ds
        .train
        .iter()
        .map(|s| NameSample { program: at(s), target: s.target.clone() })
        .collect();

    let mut store = ParamStore::new();
    let namer = LigerNamer::new(
        &mut store,
        ds.vocabs.input.len(),
        ds.vocabs.output.len(),
        scale.liger_config(ablation),
        &mut rng,
    );
    liger::train_namer(&namer, &mut store, &samples, &scale.train_config(), &mut rng);
    (namer, store)
}

/// Restores a namer checkpoint saved from [`train_method_namer`]:
/// re-registers the parameter layout for `ds`+`scale`+`ablation` and
/// validates the loaded values against it name-by-name, shape-by-shape.
///
/// # Errors
///
/// Returns a description of the I/O or format failure, or of the first
/// parameter that does not fit the architecture.
pub fn load_method_namer(
    ds: &MethodDataset,
    scale: &Scale,
    ablation: Ablation,
    path: impl AsRef<std::path::Path>,
) -> Result<(LigerNamer, ParamStore), String> {
    let mut rng = StdRng::seed_from_u64(0); // layout only; values are replaced
    let mut skeleton = ParamStore::new();
    let namer = LigerNamer::new(
        &mut skeleton,
        ds.vocabs.input.len(),
        ds.vocabs.output.len(),
        scale.liger_config(ablation),
        &mut rng,
    );
    let store = checked_load(&skeleton, path)?;
    Ok((namer, store))
}

/// Evaluates a trained namer on `ds.test`; returns scores and the mean
/// static-feature attention (the §6.1.2 measurement).
pub fn eval_method_namer(
    namer: &LigerNamer,
    store: &ParamStore,
    ds: &MethodDataset,
    scale: &Scale,
    paths: PathLevel,
    concrete: usize,
) -> (NameScores, Option<f64>) {
    let opts = scale.prepare_options().encode;
    let at = |s: &crate::pipeline::PreparedMethod| {
        let keep = paths.resolve(s.blended.len(), s.min_cover);
        method_at_paths(s, &ds.vocabs.input, &opts, keep, concrete).0
    };
    // Batched prediction: each test program re-encodes and decodes
    // independently against the frozen parameters, on a persistent
    // per-worker workspace (graph arena + embedding memo).
    let mut workspaces: Vec<liger::Workspace> = Vec::new();
    let _span = obs::span!("eval.predict");
    let predictions =
        par::par_map_ordered_with(&ds.test, &mut workspaces, liger::Workspace::new, |ws, _, s| {
            let prog = at(s);
            let predicted = ds.vocabs.output.decode_name(&namer.predict_in(ws, store, &prog));
            (predicted, namer.static_attention_in(ws, store, &prog))
        });
    let mut metric = PrecisionRecallF1::default();
    let mut attn_sum = 0.0f64;
    let mut attn_count = 0usize;
    for (s, (predicted, attention)) in ds.test.iter().zip(&predictions) {
        metric.add(predicted, &s.subtokens);
        if let Some(a) = attention {
            attn_sum += f64::from(*a);
            attn_count += 1;
        }
    }
    let attn = if attn_count == 0 { None } else { Some(attn_sum / attn_count as f64) };
    (metric.into(), attn)
}

/// Trains and evaluates LIGER on the method-name task at the given
/// reduction levels; returns scores and the mean static-feature attention
/// at convergence (the §6.1.2 measurement).
pub fn liger_method_scores(
    ds: &MethodDataset,
    scale: &Scale,
    ablation: Ablation,
    paths: PathLevel,
    concrete: usize,
) -> (NameScores, Option<f64>) {
    let (namer, store) = train_method_namer(ds, scale, ablation, paths, concrete);
    eval_method_namer(&namer, &store, ds, scale, paths, concrete)
}

/// Loads a checkpoint and verifies it fits the layout `skeleton`
/// registered (same parameters, names, and shapes, in order).
fn checked_load(
    skeleton: &ParamStore,
    path: impl AsRef<std::path::Path>,
) -> Result<ParamStore, String> {
    let path = path.as_ref();
    let store =
        ParamStore::load_from_path(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if store.len() != skeleton.len() {
        return Err(format!(
            "{}: checkpoint holds {} parameters, architecture registers {}",
            path.display(),
            store.len(),
            skeleton.len()
        ));
    }
    for i in 0..skeleton.len() {
        let id = tensor::ParamId(i);
        let (want, got) = (skeleton.get(id), store.get(id));
        if want.name != got.name
            || want.value.rows() != got.value.rows()
            || want.value.cols() != got.value.cols()
        {
            return Err(format!(
                "{}: parameter {i} is {} [{}×{}], architecture expects {} [{}×{}]",
                path.display(),
                got.name,
                got.value.rows(),
                got.value.cols(),
                want.name,
                want.value.rows(),
                want.value.cols()
            ));
        }
    }
    Ok(store)
}

/// Trains and evaluates DYPRO on the method-name task at the given
/// reduction levels (it consumes the concrete traces out of the same
/// blended set, as in §6.1.2).
pub fn dypro_method_scores(
    ds: &MethodDataset,
    scale: &Scale,
    paths: PathLevel,
    concrete: usize,
) -> NameScores {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(43));
    let opts = scale.prepare_options().encode;
    let at = |s: &crate::pipeline::PreparedMethod| {
        let keep = paths.resolve(s.blended.len(), s.min_cover);
        method_at_paths(s, &ds.vocabs.input, &opts, keep, concrete).1
    };
    let samples: Vec<(baselines::DyproProgram, Vec<liger::TokenId>)> =
        ds.train.iter().map(|s| (at(s), s.target.clone())).collect();

    let mut store = ParamStore::new();
    let namer = DyproNamer::new(
        &mut store,
        ds.vocabs.input.len(),
        ds.vocabs.output.len(),
        scale.hidden,
        &mut rng,
    );
    train_dypro_namer(&namer, &mut store, &samples, &scale.dypro_config(), &mut rng);

    let _span = obs::span!("eval.predict");
    let predictions = par::par_map_ordered(&ds.test, |_, s| {
        ds.vocabs.output.decode_name(&namer.predict(&store, &at(s), 5))
    });
    let mut metric = PrecisionRecallF1::default();
    for (s, predicted) in ds.test.iter().zip(&predictions) {
        metric.add(predicted, &s.subtokens);
    }
    metric.into()
}

fn code2vec_scores(ds: &MethodDataset, scale: &Scale) -> NameScores {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(44));
    let samples: Vec<(baselines::Code2VecInput, usize)> =
        ds.train.iter().map(|s| (s.c2v.clone(), s.name_label)).collect();
    let mut store = ParamStore::new();
    let model = Code2Vec::new(
        &mut store,
        ds.vocabs.terms.len(),
        ds.vocabs.paths.len(),
        ds.vocabs.name_labels.len(),
        scale.hidden,
        &mut rng,
    );
    train_code2vec(&model, &mut store, &samples, &scale.baseline_config(), &mut rng);
    let _span = obs::span!("eval.predict");
    let predictions = par::par_map_ordered(&ds.test, |_, s| {
        let label = model.predict(&store, &s.c2v);
        minilang::subtokens(ds.vocabs.name_labels.token(label))
    });
    let mut metric = PrecisionRecallF1::default();
    for (s, predicted) in ds.test.iter().zip(&predictions) {
        metric.add(predicted, &s.subtokens);
    }
    metric.into()
}

fn code2seq_scores(ds: &MethodDataset, scale: &Scale) -> NameScores {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(45));
    let samples: Vec<(baselines::Code2SeqInput, Vec<liger::TokenId>)> =
        ds.train.iter().map(|s| (s.c2s.clone(), s.target.clone())).collect();
    let mut store = ParamStore::new();
    let model = Code2Seq::new(
        &mut store,
        ds.vocabs.subtokens.len(),
        ds.vocabs.nodes.len(),
        ds.vocabs.output.len(),
        scale.hidden,
        &mut rng,
    );
    train_code2seq(&model, &mut store, &samples, &scale.baseline_config(), &mut rng);
    let _span = obs::span!("eval.predict");
    let predictions = par::par_map_ordered(&ds.test, |_, s| {
        ds.vocabs.output.decode_name(&model.predict(&store, &s.c2s, 5))
    });
    let mut metric = PrecisionRecallF1::default();
    for (s, predicted) in ds.test.iter().zip(&predictions) {
        metric.add(predicted, &s.subtokens);
    }
    metric.into()
}

/// **Table 2** — method-name prediction: all four models on one dataset
/// scale. Rows in the paper's order.
pub fn table2(ds: &MethodDataset, scale: &Scale) -> Vec<(String, NameScores)> {
    let c2v = code2vec_scores(ds, scale);
    let c2s = code2seq_scores(ds, scale);
    let dypro = dypro_method_scores(ds, scale, PathLevel::Full, scale.concrete_per_path);
    let (liger, _) =
        liger_method_scores(ds, scale, Ablation::Full, PathLevel::Full, scale.concrete_per_path);
    vec![
        ("code2vec".into(), c2v),
        ("code2seq".into(), c2s),
        ("DYPRO".into(), dypro),
        ("LIGER".into(), liger),
    ]
}

/// One row of a concrete-trace reduction figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcreteRow {
    /// Concrete traces per blended trace.
    pub concrete: usize,
    /// LIGER F1 (%).
    pub liger_f1: f64,
    /// DYPRO F1 (%).
    pub dypro_f1: f64,
    /// Mean fusion attention on the static dimension (None under
    /// ablations that remove a dimension).
    pub liger_static_attention: Option<f64>,
}

/// **Figure 6a/6b** (and Figure 8's concrete half under an ablation) —
/// F1 as concrete traces per blended trace are reduced, symbolic traces
/// constant.
pub fn fig6_concrete(ds: &MethodDataset, scale: &Scale, ablation: Ablation) -> Vec<ConcreteRow> {
    (1..=scale.concrete_per_path)
        .rev()
        .map(|concrete| {
            let (liger, attn) =
                liger_method_scores(ds, scale, ablation, PathLevel::Full, concrete);
            let dypro = dypro_method_scores(ds, scale, PathLevel::Full, concrete);
            ConcreteRow {
                concrete,
                liger_f1: liger.f1,
                dypro_f1: dypro.f1,
                liger_static_attention: attn,
            }
        })
        .collect()
}

/// One row of a symbolic-trace reduction figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicRow {
    /// The reduction level label.
    pub level: String,
    /// LIGER F1 (%).
    pub liger_f1: f64,
    /// DYPRO F1 (%).
    pub dypro_f1: f64,
}

/// The §6.1.2 symbolic-reduction ladder: full → 75% → 50% → minimum
/// line-cover → a single trace.
pub fn symbolic_levels() -> Vec<PathLevel> {
    vec![
        PathLevel::Full,
        PathLevel::Fraction(0.75),
        PathLevel::Fraction(0.5),
        PathLevel::MinCover,
        PathLevel::Count(1),
    ]
}

/// **Figure 6c/6d** (and Figures 9/10's symbolic halves under ablations)
/// — F1 as symbolic traces are removed while line coverage is preserved
/// (three concrete traces per path, per §6.1.2).
pub fn fig6_symbolic(ds: &MethodDataset, scale: &Scale, ablation: Ablation) -> Vec<SymbolicRow> {
    let concrete = 3.min(scale.concrete_per_path);
    symbolic_levels()
        .into_iter()
        .map(|level| {
            let (liger, _) = liger_method_scores(ds, scale, ablation, level, concrete);
            let dypro = dypro_method_scores(ds, scale, level, concrete);
            SymbolicRow { level: level.label(), liger_f1: liger.f1, dypro_f1: dypro.f1 }
        })
        .collect()
}

/// Classification scores (Table 3's columns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassScores {
    /// Accuracy (%).
    pub accuracy: f64,
    /// Macro F1 in [0, 1].
    pub f1: f64,
}

/// Trains and evaluates LIGER's classifier on COSET at the given levels.
pub fn liger_coset_scores(
    ds: &CosetDataset,
    scale: &Scale,
    ablation: Ablation,
    paths: PathLevel,
    concrete: usize,
) -> ClassScores {
    let (cls, store) = train_coset_classifier(ds, scale, ablation, paths, concrete);
    eval_coset_classifier(&cls, &store, ds, scale, paths, concrete)
}

/// Trains LIGER's classifier on `ds.train` at the given reduction levels
/// and returns the trained model with its parameters — checkpoint them
/// with [`tensor::ParamStore::save_to_path`] and restore with
/// [`load_coset_classifier`].
pub fn train_coset_classifier(
    ds: &CosetDataset,
    scale: &Scale,
    ablation: Ablation,
    paths: PathLevel,
    concrete: usize,
) -> (LigerClassifier, ParamStore) {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(46));
    let opts = scale.prepare_options().encode;
    let at = |s: &crate::pipeline::PreparedCoset| {
        let keep = paths.resolve(s.blended.len(), s.min_cover);
        coset_at(s, &ds.vocab, &opts, keep, concrete).0
    };
    let samples: Vec<ClassSample> =
        ds.train.iter().map(|s| ClassSample { program: at(s), label: s.label }).collect();
    let mut store = ParamStore::new();
    let model = LigerModel::new(
        &mut store,
        ds.vocab.len(),
        scale.liger_config(ablation),
        &mut rng,
    );
    let cls = LigerClassifier::new(&mut store, model, ds.num_classes, &mut rng);
    liger::train_classifier(&cls, &mut store, &samples, &scale.train_config(), &mut rng);
    (cls, store)
}

/// Restores a classifier checkpoint saved from [`train_coset_classifier`],
/// validating the loaded parameters against the architecture layout.
///
/// # Errors
///
/// Returns a description of the I/O or format failure, or of the first
/// parameter that does not fit the architecture.
pub fn load_coset_classifier(
    ds: &CosetDataset,
    scale: &Scale,
    ablation: Ablation,
    path: impl AsRef<std::path::Path>,
) -> Result<(LigerClassifier, ParamStore), String> {
    let mut rng = StdRng::seed_from_u64(0); // layout only; values are replaced
    let mut skeleton = ParamStore::new();
    let model =
        LigerModel::new(&mut skeleton, ds.vocab.len(), scale.liger_config(ablation), &mut rng);
    let cls = LigerClassifier::new(&mut skeleton, model, ds.num_classes, &mut rng);
    let store = checked_load(&skeleton, path)?;
    Ok((cls, store))
}

/// Evaluates a trained classifier on `ds.test`.
pub fn eval_coset_classifier(
    cls: &LigerClassifier,
    store: &ParamStore,
    ds: &CosetDataset,
    scale: &Scale,
    paths: PathLevel,
    concrete: usize,
) -> ClassScores {
    let opts = scale.prepare_options().encode;
    let at = |s: &crate::pipeline::PreparedCoset| {
        let keep = paths.resolve(s.blended.len(), s.min_cover);
        coset_at(s, &ds.vocab, &opts, keep, concrete).0
    };
    let mut workspaces: Vec<liger::Workspace> = Vec::new();
    let _span = obs::span!("eval.predict");
    let predictions = par::par_map_ordered_with(
        &ds.test,
        &mut workspaces,
        liger::Workspace::new,
        |ws, _, s| cls.predict_in(ws, store, &at(s)),
    );
    let mut acc = Accuracy::default();
    let mut f1 = ClassF1::default();
    for (s, &predicted) in ds.test.iter().zip(&predictions) {
        acc.add(predicted, s.label);
        f1.add(predicted, s.label);
    }
    ClassScores { accuracy: acc.percent(), f1: f1.macro_f1() }
}

/// Trains and evaluates DYPRO's classifier on COSET at the given levels.
pub fn dypro_coset_scores(
    ds: &CosetDataset,
    scale: &Scale,
    paths: PathLevel,
    concrete: usize,
) -> ClassScores {
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(47));
    let opts = scale.prepare_options().encode;
    let at = |s: &crate::pipeline::PreparedCoset| {
        let keep = paths.resolve(s.blended.len(), s.min_cover);
        coset_at(s, &ds.vocab, &opts, keep, concrete).1
    };
    let samples: Vec<(baselines::DyproProgram, usize)> =
        ds.train.iter().map(|s| (at(s), s.label)).collect();
    let mut store = ParamStore::new();
    let cls =
        DyproClassifier::new(&mut store, ds.vocab.len(), ds.num_classes, scale.hidden, &mut rng);
    train_dypro_classifier(&cls, &mut store, &samples, &scale.dypro_config(), &mut rng);

    let _span = obs::span!("eval.predict");
    let predictions = par::par_map_ordered(&ds.test, |_, s| cls.predict(&store, &at(s)));
    let mut acc = Accuracy::default();
    let mut f1 = ClassF1::default();
    for (s, &predicted) in ds.test.iter().zip(&predictions) {
        acc.add(predicted, s.label);
        f1.add(predicted, s.label);
    }
    ClassScores { accuracy: acc.percent(), f1: f1.macro_f1() }
}

/// **Table 3** — COSET semantics classification, DYPRO vs LIGER.
pub fn table3(ds: &CosetDataset, scale: &Scale) -> Vec<(String, ClassScores)> {
    let dypro = dypro_coset_scores(ds, scale, PathLevel::Full, scale.concrete_per_path);
    let liger =
        liger_coset_scores(ds, scale, Ablation::Full, PathLevel::Full, scale.concrete_per_path);
    vec![("DYPRO".into(), dypro), ("LIGER".into(), liger)]
}

/// One row of Figure 7 (COSET down-sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct CosetReductionRow {
    /// Level label (e.g. "concrete=2" or "paths=min-cover").
    pub level: String,
    /// LIGER accuracy (%).
    pub liger_acc: f64,
    /// DYPRO accuracy (%).
    pub dypro_acc: f64,
}

/// **Figure 7** — COSET accuracy under concrete- and symbolic-trace
/// down-sampling.
pub fn fig7(ds: &CosetDataset, scale: &Scale) -> Vec<CosetReductionRow> {
    let mut rows = Vec::new();
    for concrete in (1..=scale.concrete_per_path).rev() {
        let liger =
            liger_coset_scores(ds, scale, Ablation::Full, PathLevel::Full, concrete);
        let dypro = dypro_coset_scores(ds, scale, PathLevel::Full, concrete);
        rows.push(CosetReductionRow {
            level: format!("concrete={concrete}"),
            liger_acc: liger.accuracy,
            dypro_acc: dypro.accuracy,
        });
    }
    let concrete = 2.min(scale.concrete_per_path);
    for level in symbolic_levels() {
        let liger = liger_coset_scores(ds, scale, Ablation::Full, level, concrete);
        let dypro = dypro_coset_scores(ds, scale, level, concrete);
        rows.push(CosetReductionRow {
            level: format!("paths={}", level.label()),
            liger_acc: liger.accuracy,
            dypro_acc: dypro.accuracy,
        });
    }
    rows
}

/// One row of the Figure 11 ablation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The configuration name.
    pub config: String,
    /// F1 at full data (%).
    pub full_f1: f64,
    /// F1 at the minimum line-cover path set (%).
    pub min_cover_f1: f64,
    /// F1 with a single concrete trace per path (%).
    pub one_concrete_f1: f64,
}

/// **Figure 11** — every ablation configuration (full, w/o static, w/o
/// dynamic, w/o attention) at full data, minimum path cover, and single
/// concrete trace.
pub fn fig11(ds: &MethodDataset, scale: &Scale) -> Vec<AblationRow> {
    [
        ("LIGER", Ablation::Full),
        ("LIGER w/o static", Ablation::NoStatic),
        ("LIGER w/o dynamic", Ablation::NoDynamic),
        ("LIGER w/o attention", Ablation::NoAttention),
    ]
    .into_iter()
    .map(|(name, ablation)| {
        let (full, _) = liger_method_scores(
            ds,
            scale,
            ablation,
            PathLevel::Full,
            scale.concrete_per_path,
        );
        let (cover, _) = liger_method_scores(ds, scale, ablation, PathLevel::MinCover, 3);
        let (one, _) =
            liger_method_scores(ds, scale, ablation, PathLevel::Full, 1);
        AblationRow {
            config: name.into(),
            full_f1: full.f1,
            min_cover_f1: cover.f1,
            one_concrete_f1: one.f1,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_level_resolution() {
        assert_eq!(PathLevel::Full.resolve(8, 3), 8);
        assert_eq!(PathLevel::Fraction(0.5).resolve(8, 3), 4);
        // Fraction never goes below the min cover.
        assert_eq!(PathLevel::Fraction(0.25).resolve(8, 3), 3);
        assert_eq!(PathLevel::MinCover.resolve(8, 3), 3);
        assert_eq!(PathLevel::Count(1).resolve(8, 3), 1);
        assert_eq!(PathLevel::Count(99).resolve(8, 3), 8);
        // Degenerate sample with no paths at all.
        assert_eq!(PathLevel::MinCover.resolve(0, 0), 0);
        assert_eq!(PathLevel::Full.resolve(0, 0), 0);
    }

    #[test]
    fn table1_reports_consistent_totals() {
        let stats = table1(&Scale::tiny());
        assert_eq!(
            stats.original,
            stats.kept + stats.no_compile + stats.no_exec + stats.timeout + stats.too_small
        );
        assert!(stats.kept > 0);
    }

    /// Diagnostic (run with `--ignored --nocapture`): train-set fit of the
    /// dynamic models at bench scale — separates optimization failures
    /// from generalization gaps.
    #[test]
    #[ignore]
    fn diag_trainset_fit() {
        let scale = Scale::bench();
        let (mut ds, _) = build_method_dataset(&scale);
        ds.test = ds.train.clone();
        let (liger, attn) = liger_method_scores(
            &ds,
            &scale,
            Ablation::Full,
            PathLevel::Full,
            scale.concrete_per_path,
        );
        eprintln!("LIGER train-set fit: {liger:?}, attn {attn:?}");
        let dypro =
            dypro_method_scores(&ds, &scale, PathLevel::Full, scale.concrete_per_path);
        eprintln!("DYPRO train-set fit: {dypro:?}");
    }

    #[test]
    fn tiny_table2_runs_end_to_end() {
        let (ds, _) = build_method_dataset(&Scale::tiny());
        let rows = table2(&ds, &Scale::tiny());
        assert_eq!(rows.len(), 4);
        for (name, scores) in &rows {
            assert!(
                scores.f1 >= 0.0 && scores.f1 <= 100.0,
                "{name} F1 out of range: {scores:?}"
            );
        }
    }

    #[test]
    fn tiny_table3_runs_end_to_end() {
        let (ds, _) = build_coset_dataset(&Scale::tiny());
        let rows = table3(&ds, &Scale::tiny());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, s)| s.accuracy >= 0.0 && s.accuracy <= 100.0));
    }
}
