//! Evaluation metrics.
//!
//! §6.1.1: "We adopt the metric used by prior work to measure precision,
//! recall, and F1 score over case insensitive sub-tokens" — sub-token
//! order does not matter (`diffCompute` is a perfect prediction of
//! `computeDiff`); `compute` alone has full precision but low recall;
//! `computeFileDiff` has full recall but low precision. Scores are
//! micro-averaged over the dataset, as in code2seq's evaluation.

use std::collections::HashMap;

/// Micro-averaged sub-token precision / recall / F1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrecisionRecallF1 {
    /// True-positive sub-tokens.
    pub tp: usize,
    /// False-positive sub-tokens (predicted but absent).
    pub fp: usize,
    /// False-negative sub-tokens (present but not predicted).
    pub fn_: usize,
}

impl PrecisionRecallF1 {
    /// Adds one (prediction, truth) pair of sub-token lists. Matching is
    /// case-insensitive and order-free (multiset intersection).
    pub fn add(&mut self, predicted: &[String], truth: &[String]) {
        let mut truth_counts: HashMap<String, usize> = HashMap::new();
        for t in truth {
            *truth_counts.entry(t.to_lowercase()).or_insert(0) += 1;
        }
        let mut tp = 0;
        for p in predicted {
            let key = p.to_lowercase();
            match truth_counts.get_mut(&key) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    tp += 1;
                }
                _ => self.fp += 1,
            }
        }
        self.tp += tp;
        self.fn_ += truth_counts.values().sum::<usize>();
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PrecisionRecallF1) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Precision in percent (100 when nothing was predicted at all).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            100.0 * self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall in percent.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            100.0 * self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 in percent.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Plain accuracy for classification tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accuracy {
    /// Correct predictions.
    pub correct: usize,
    /// Total predictions.
    pub total: usize,
}

impl Accuracy {
    /// Records one prediction.
    pub fn add(&mut self, predicted: usize, truth: usize) {
        self.total += 1;
        if predicted == truth {
            self.correct += 1;
        }
    }

    /// Accuracy in percent.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.correct as f64 / self.total as f64
        }
    }
}

/// Macro-averaged F1 over classes for classification (COSET's Table 3
/// reports both accuracy and an F1 score).
#[derive(Debug, Clone, Default)]
pub struct ClassF1 {
    per_class: HashMap<usize, PrecisionRecallF1>,
}

impl ClassF1 {
    /// Records one prediction.
    pub fn add(&mut self, predicted: usize, truth: usize) {
        let p = self.per_class.entry(predicted).or_default();
        if predicted == truth {
            p.tp += 1;
        } else {
            p.fp += 1;
            self.per_class.entry(truth).or_default().fn_ += 1;
        }
    }

    /// Macro-averaged F1 in [0, 1].
    pub fn macro_f1(&self) -> f64 {
        if self.per_class.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.per_class.values().map(|c| c.f1() / 100.0).sum();
        sum / self.per_class.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn perfect_prediction_regardless_of_order() {
        let mut m = PrecisionRecallF1::default();
        m.add(&toks(&["diff", "compute"]), &toks(&["compute", "diff"]));
        assert_eq!(m.precision(), 100.0);
        assert_eq!(m.recall(), 100.0);
        assert_eq!(m.f1(), 100.0);
    }

    #[test]
    fn partial_prediction_full_precision_low_recall() {
        // The paper's own example: predicting `compute` for `computeDiff`.
        let mut m = PrecisionRecallF1::default();
        m.add(&toks(&["compute"]), &toks(&["compute", "diff"]));
        assert_eq!(m.precision(), 100.0);
        assert_eq!(m.recall(), 50.0);
    }

    #[test]
    fn over_prediction_full_recall_low_precision() {
        // Predicting `computeFileDiff` for `computeDiff`.
        let mut m = PrecisionRecallF1::default();
        m.add(&toks(&["compute", "file", "diff"]), &toks(&["compute", "diff"]));
        assert_eq!(m.recall(), 100.0);
        assert!((m.precision() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn case_insensitive_matching() {
        let mut m = PrecisionRecallF1::default();
        m.add(&toks(&["Compute", "DIFF"]), &toks(&["compute", "diff"]));
        assert_eq!(m.f1(), 100.0);
    }

    #[test]
    fn multiset_semantics() {
        // Truth has one `a`; predicting it twice costs precision.
        let mut m = PrecisionRecallF1::default();
        m.add(&toks(&["a", "a"]), &toks(&["a"]));
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 0);
    }

    #[test]
    fn micro_average_accumulates() {
        let mut m = PrecisionRecallF1::default();
        m.add(&toks(&["a"]), &toks(&["a"]));
        m.add(&toks(&["b"]), &toks(&["c"]));
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.precision(), 50.0);
        assert_eq!(m.recall(), 50.0);
    }

    #[test]
    fn empty_prediction_scores_zero_precision_denominator() {
        let mut m = PrecisionRecallF1::default();
        m.add(&[], &toks(&["a"]));
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
    }

    #[test]
    fn accuracy_counts() {
        let mut a = Accuracy::default();
        a.add(1, 1);
        a.add(2, 0);
        assert_eq!(a.percent(), 50.0);
    }

    #[test]
    fn class_f1_perfect_is_one() {
        let mut c = ClassF1::default();
        c.add(0, 0);
        c.add(1, 1);
        assert!((c.macro_f1() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_f1_all_wrong_is_zero() {
        let mut c = ClassF1::default();
        c.add(0, 1);
        c.add(1, 0);
        assert_eq!(c.macro_f1(), 0.0);
    }
}
