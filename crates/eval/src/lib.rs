//! # eval — metrics, dataset pipeline, and experiment drivers
//!
//! Everything §6 of the paper needs to be regenerated:
//!
//! - [`metrics`] — the case-insensitive, order-free sub-token
//!   precision/recall/F1 of §6.1.1, classification accuracy, macro F1,
//! - [`pipeline`] — prepares both corpora for all four models with
//!   train-split vocabularies and min-line-cover path ordering,
//! - [`baseline_train`] — training loops for code2vec/code2seq/DYPRO,
//! - [`experiments`] — one driver per table/figure (Table 1/2/3,
//!   Figures 6–11) at configurable [`Scale`]s,
//! - [`report`] — markdown renderers for the regenerated rows.
//!
//! # Examples
//!
//! Run the smallest version of Table 1:
//!
//! ```
//! use eval::{table1, Scale};
//!
//! let stats = table1(&Scale::tiny());
//! assert!(stats.kept > 0);
//! assert_eq!(
//!     stats.original,
//!     stats.kept + stats.no_compile + stats.no_exec + stats.timeout + stats.too_small,
//! );
//! ```

pub mod baseline_train;
pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod report;

pub use baseline_train::{
    train_code2seq, train_code2vec, train_dypro_classifier, train_dypro_namer,
    BaselineTrainConfig,
};
pub use experiments::{
    build_coset_dataset, build_coset_dataset_stored, build_method_dataset,
    build_method_dataset_stored, dypro_coset_scores, dypro_method_scores,
    eval_coset_classifier, eval_method_namer, fig11, fig6_concrete, fig6_symbolic, fig7,
    liger_coset_scores, liger_method_scores, load_coset_classifier, load_method_namer,
    symbolic_levels, table1, table2, table3, train_coset_classifier, train_method_namer,
    AblationRow, ClassScores, ConcreteRow, CosetReductionRow, NameScores, PathLevel, Scale,
    SymbolicRow,
};
pub use metrics::{Accuracy, ClassF1, PrecisionRecallF1};
pub use pipeline::{
    coset_at, method_at_concrete, method_at_paths, prepare_coset_dataset,
    prepare_method_dataset, CosetDataset, MethodDataset, MethodVocabs, PreparedCoset,
    PreparedMethod, PrepareOptions,
};
pub use report::{
    concrete_markdown, fig11_markdown, fig7_markdown, symbolic_markdown, table1_markdown,
    table2_markdown, table3_markdown,
};
