//! Training loops for the baseline models (mirrors `liger::train`).

use baselines::{Code2Seq, Code2SeqInput, Code2Vec, Code2VecInput, DyproNamer, DyproProgram};
use liger::TokenId;
use nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;
use tensor::{Graph, ParamStore};

/// Shared baseline training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BaselineTrainConfig {
    /// Passes over the training data.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Examples per optimizer step.
    pub batch_size: usize,
}

impl Default for BaselineTrainConfig {
    fn default() -> Self {
        BaselineTrainConfig { epochs: 8, lr: 0.01, batch_size: 8 }
    }
}

/// Generic accumulate-then-step loop over any per-sample loss builder.
fn train_generic<R: Rng + ?Sized, S>(
    store: &mut ParamStore,
    samples: &[S],
    cfg: &BaselineTrainConfig,
    rng: &mut R,
    mut loss_of: impl FnMut(&mut Graph, &ParamStore, &S) -> Option<tensor::VarId>,
) -> Vec<f32> {
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            for &i in chunk {
                let mut g = Graph::new();
                let Some(loss) = loss_of(&mut g, store, &samples[i]) else { continue };
                total += g.value(loss).item();
                count += 1;
                g.backward(loss, store);
            }
            adam.step(store);
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f32 });
    }
    epoch_losses
}

/// Trains code2vec on (input, whole-name label) pairs.
pub fn train_code2vec<R: Rng + ?Sized>(
    model: &Code2Vec,
    store: &mut ParamStore,
    samples: &[(Code2VecInput, usize)],
    cfg: &BaselineTrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    train_generic(store, samples, cfg, rng, |g, s, (input, label)| {
        if input.contexts.is_empty() {
            return None;
        }
        Some(model.loss(g, s, input, *label))
    })
}

/// Trains code2seq on (input, target sub-token ids) pairs.
pub fn train_code2seq<R: Rng + ?Sized>(
    model: &Code2Seq,
    store: &mut ParamStore,
    samples: &[(Code2SeqInput, Vec<TokenId>)],
    cfg: &BaselineTrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    train_generic(store, samples, cfg, rng, |g, s, (input, target)| {
        if input.contexts.is_empty() || target.is_empty() {
            return None;
        }
        Some(model.loss(g, s, input, target))
    })
}

/// Trains the DYPRO namer on (input, target sub-token ids) pairs.
pub fn train_dypro_namer<R: Rng + ?Sized>(
    model: &DyproNamer,
    store: &mut ParamStore,
    samples: &[(DyproProgram, Vec<TokenId>)],
    cfg: &BaselineTrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    train_generic(store, samples, cfg, rng, |g, s, (input, target)| {
        if input.traces.is_empty() || target.is_empty() {
            return None;
        }
        Some(model.loss(g, s, input, target))
    })
}

/// Trains the DYPRO classifier on (input, class label) pairs.
pub fn train_dypro_classifier<R: Rng + ?Sized>(
    model: &baselines::DyproClassifier,
    store: &mut ParamStore,
    samples: &[(DyproProgram, usize)],
    cfg: &BaselineTrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    train_generic(store, samples, cfg, rng, |g, s, (input, label)| {
        if input.traces.is_empty() {
            return None;
        }
        Some(model.loss(g, s, input, *label))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn code2vec_training_reduces_loss() {
        let p = minilang::parse("fn addOne(x: int) -> int { let y: int = x + 1; return y; }")
            .unwrap();
        let mut tv = liger::Vocab::new();
        let mut pv = liger::Vocab::new();
        let ctxs = baselines::contexts_into_vocabs(
            &p,
            &baselines::PathConfig::default(),
            &mut tv,
            &mut pv,
        );
        let input = baselines::code2vec_input(&ctxs, &tv, &pv);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(700);
        let model = Code2Vec::new(&mut store, tv.len(), pv.len(), 2, 8, &mut rng);
        let samples = vec![(input, 1usize)];
        let losses = train_code2vec(
            &model,
            &mut store,
            &samples,
            &BaselineTrainConfig { epochs: 20, lr: 0.05, batch_size: 1 },
            &mut rng,
        );
        assert!(losses.last().unwrap() < &losses[0]);
        assert_eq!(model.predict(&store, &samples[0].0), 1);
    }

    #[test]
    fn empty_inputs_are_skipped() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(701);
        let model = Code2Vec::new(&mut store, 3, 3, 2, 4, &mut rng);
        let samples = vec![(baselines::Code2VecInput::default(), 0usize)];
        let losses = train_code2vec(
            &model,
            &mut store,
            &samples,
            &BaselineTrainConfig { epochs: 2, lr: 0.01, batch_size: 1 },
            &mut rng,
        );
        assert_eq!(losses, vec![0.0, 0.0]);
    }
}
