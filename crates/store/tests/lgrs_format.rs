//! Property tests for the `LGRS1` artifact entry format: encode →
//! decode is lossless for arbitrary entries, and every corruption —
//! truncation at any byte, a flipped magic or version, trailing
//! garbage, a damaged payload, a crashed writer's leftover `.tmp` —
//! surfaces as a *typed* [`StoreError`], never a panic and never a
//! wrong hit.

use proptest::prelude::*;
use store::{
    entry_from_bytes, entry_to_bytes, sniff, ArtifactKind, Store, StoreError, StoreStats,
};

fn kind_strategy() -> impl Strategy<Value = ArtifactKind> {
    proptest::sample::select(ArtifactKind::ALL.to_vec())
}

/// Renders generated alphabet indices into a fingerprint string (the
/// vendored proptest shim has no string strategies).
fn fp_from(indices: &[u8]) -> String {
    const ALPHABET: &[u8] = b"abcdefghij0123456789/@.-";
    indices.iter().map(|&i| char::from(ALPHABET[i as usize % ALPHABET.len()])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_is_lossless(
        kind in kind_strategy(),
        key in 0u64..=u64::MAX,
        fp_indices in proptest::collection::vec(0u8..=255, 0..=24),
        payload in proptest::collection::vec(0u8..=255, 0..=64),
    ) {
        let fp = fp_from(&fp_indices);
        let bytes = entry_to_bytes(kind, key, &fp, &payload);
        prop_assert!(sniff(&bytes));
        let entry = entry_from_bytes(&bytes).unwrap();
        prop_assert_eq!(entry.kind, kind);
        prop_assert_eq!(entry.key, key);
        prop_assert_eq!(entry.fingerprint, fp);
        prop_assert_eq!(entry.payload, payload);
    }

    /// Every strict prefix of every entry fails with `Truncated` —
    /// the bounds-checked cursor never reads past the buffer and never
    /// panics.
    #[test]
    fn every_truncation_is_typed(
        kind in kind_strategy(),
        key in 0u64..=u64::MAX,
        fp_indices in proptest::collection::vec(0u8..=255, 0..=12),
        payload in proptest::collection::vec(0u8..=255, 0..=32),
    ) {
        let bytes = entry_to_bytes(kind, key, &fp_from(&fp_indices), &payload);
        for cut in 0..bytes.len() {
            match entry_from_bytes(&bytes[..cut]) {
                Err(StoreError::Truncated) => {}
                other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
            }
        }
    }

    /// Flipping any single byte anywhere in the entry is a typed decode
    /// error or a harmless decode — the checksum covers the payload,
    /// the magic/version/kind checks cover the header, and the length
    /// fields reshape into truncation or trailing bytes. Never a
    /// panic; a surviving decode can only differ in key/kind (rejected
    /// by the store's path cross-check at read time) or fingerprint
    /// (reads as a miss, never a wrong hit).
    #[test]
    fn every_single_byte_flip_is_typed(
        kind in kind_strategy(),
        key in 0u64..=u64::MAX,
        fp_indices in proptest::collection::vec(0u8..=255, 1..=8),
        payload in proptest::collection::vec(0u8..=255, 1..=24),
        flip_pos in 0usize..4096,
        flip_bits in 1u8..=255,
    ) {
        let fp = fp_from(&fp_indices);
        let mut bytes = entry_to_bytes(kind, key, &fp, &payload);
        let flip_at = flip_pos % bytes.len();
        bytes[flip_at] ^= flip_bits;
        if let Ok(entry) = entry_from_bytes(&bytes) {
            prop_assert!(
                entry.key != key || entry.kind != kind || entry.fingerprint != fp,
                "flip at {} decoded unchanged", flip_at
            );
            prop_assert_eq!(entry.payload, payload, "a surviving decode must keep the payload");
        }
    }

    #[test]
    fn trailing_bytes_are_typed(
        kind in kind_strategy(),
        payload in proptest::collection::vec(0u8..=255, 0..=16),
        garbage in proptest::collection::vec(0u8..=255, 1..=8),
    ) {
        let mut bytes = entry_to_bytes(kind, 7, "fp", &payload);
        bytes.extend_from_slice(&garbage);
        prop_assert_eq!(entry_from_bytes(&bytes).unwrap_err(), StoreError::TrailingBytes);
    }
}

#[test]
fn flipped_magic_and_version_are_typed() {
    let good = entry_to_bytes(ArtifactKind::TraceGroups, 1, "fp", b"x");
    for i in 0..4 {
        let mut bytes = good.clone();
        bytes[i] ^= 0x20;
        assert_eq!(entry_from_bytes(&bytes).unwrap_err(), StoreError::BadMagic, "magic byte {i}");
    }
    let mut bytes = good.clone();
    bytes[4] = b'2';
    assert_eq!(
        entry_from_bytes(&bytes).unwrap_err(),
        StoreError::VersionMismatch { found: b'2' }
    );
    let mut bytes = good;
    bytes[5] = 0xee;
    assert_eq!(entry_from_bytes(&bytes).unwrap_err(), StoreError::BadKind { found: 0xee });
}

// The obs counters are process-global; the two tests below both drive
// Store traffic and one asserts on counter deltas, so they must not
// interleave.
static COUNTERS: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn mid_write_crash_leaves_store_consistent() {
    let _guard = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("lgrs-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(&dir).unwrap();
    store.put(ArtifactKind::CorpusOutcome, 0xfeed, "fp@1", b"committed").unwrap();

    // A writer that died after creating the temp file but before the
    // rename: the .tmp holds a torn prefix of a real entry.
    let full = entry_to_bytes(ArtifactKind::CorpusOutcome, 0xbeef, "fp@1", b"never-committed");
    let tmp = store.entry_path(ArtifactKind::CorpusOutcome, 0xbeef).with_extension("tmp");
    std::fs::create_dir_all(tmp.parent().unwrap()).unwrap();
    std::fs::write(&tmp, &full[..full.len() / 2]).unwrap();
    drop(store);

    // Reopening sweeps the orphan; the committed entry is intact; the
    // in-flight key reads as a clean miss (it was never committed).
    let store = Store::open(&dir).unwrap();
    assert!(!tmp.exists(), "leftover .tmp must be swept on open");
    assert_eq!(
        store.get(ArtifactKind::CorpusOutcome, 0xfeed, "fp@1").unwrap().as_deref(),
        Some(&b"committed"[..])
    );
    assert_eq!(store.get(ArtifactKind::CorpusOutcome, 0xbeef, "fp@1").unwrap(), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fingerprint_mismatch_is_a_miss_and_counted() {
    let _guard = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("lgrs-fpmiss-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(&dir).unwrap();
    store.put(ArtifactKind::Embedding, 3, "model@old", b"stale").unwrap();
    let before = StoreStats::snapshot();
    // A changed checkpoint fingerprint must read as a miss, never as
    // the stale payload.
    assert_eq!(store.get(ArtifactKind::Embedding, 3, "model@new").unwrap(), None);
    let delta = StoreStats::snapshot().since(&before);
    assert_eq!(delta.misses, 1);
    assert_eq!(delta.hits, 0);
    std::fs::remove_dir_all(&dir).ok();
}
