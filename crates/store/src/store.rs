//! The content-addressed artifact store and its `LGRS1` entry format.
//!
//! Layout on disk: one file per live artifact,
//!
//! ```text
//! root/<kind>/<xx>/<key:016x>.lgrs
//! ```
//!
//! where `<kind>` is the artifact family directory, `<xx>` the top byte
//! of the key (256-way fan-out so million-program corpora never put a
//! million files in one directory), and the file name the full 64-bit
//! FNV-1a content key. Entry grammar (integers little-endian):
//!
//! ```text
//! entry    := magic version kind:u8 key:u64 fp_len:u32 fp[fp_len]
//!             payload_len:u64 payload[payload_len] checksum:u64
//! magic    := "LGRS"
//! version  := '1'
//! checksum := FNV-1a of payload
//! ```
//!
//! Red-green invalidation falls out of the addressing: keys are content
//! hashes, so editing a program *moves* its artifacts to new keys
//! rather than mutating old entries. The fingerprint guards the other
//! axis — everything that can change an artifact's value without
//! changing the program (model weights, encode knobs, codec versions)
//! is folded into `fp`, and a mismatch reads as a **miss**, never a
//! wrong hit.
//!
//! Writes are atomic (`.tmp` sibling + `sync_all` + rename, the LGRI1
//! discipline), so a crash mid-write leaves either the old entry or a
//! `.tmp` orphan that [`Store::open`] sweeps — never a torn file.

use crate::error::StoreError;
use crate::hash::fnv1a_bytes;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The four magic bytes opening every artifact entry.
pub const MAGIC: &[u8; 4] = b"LGRS";
/// The current (only) format version byte.
pub const VERSION: u8 = b'1';

/// The artifact families the pipeline caches, in dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Blended path groups from `randgen::generate_grouped` (symbolic
    /// trace + concrete executions per path), keyed by source hash.
    TraceGroups = 1,
    /// A full corpus filter outcome (accepted groups or the typed
    /// rejection reason), keyed by the rendered source hash.
    CorpusOutcome = 2,
    /// `analysis::ProgramFacts` (decided guards, reachability), keyed
    /// by source or canon hash.
    Facts = 3,
    /// `analysis::LintReport`, keyed by source hash.
    Lint = 4,
    /// A final embedding vector, keyed by the serve routing
    /// `content_hash` or source hash and fingerprinted by the model.
    Embedding = 5,
}

impl ArtifactKind {
    /// All kinds, for sweeps and tests.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::TraceGroups,
        ArtifactKind::CorpusOutcome,
        ArtifactKind::Facts,
        ArtifactKind::Lint,
        ArtifactKind::Embedding,
    ];

    /// The directory this family lives under.
    #[must_use]
    pub fn dir_name(self) -> &'static str {
        match self {
            ArtifactKind::TraceGroups => "traces",
            ArtifactKind::CorpusOutcome => "corpus",
            ArtifactKind::Facts => "facts",
            ArtifactKind::Lint => "lint",
            ArtifactKind::Embedding => "embed",
        }
    }

    /// Decodes a kind byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadKind`] for an unknown byte.
    pub fn from_u8(b: u8) -> Result<ArtifactKind, StoreError> {
        match b {
            1 => Ok(ArtifactKind::TraceGroups),
            2 => Ok(ArtifactKind::CorpusOutcome),
            3 => Ok(ArtifactKind::Facts),
            4 => Ok(ArtifactKind::Lint),
            5 => Ok(ArtifactKind::Embedding),
            found => Err(StoreError::BadKind { found }),
        }
    }
}

/// Serializes one artifact entry into `LGRS1` bytes.
#[must_use]
pub fn entry_to_bytes(kind: ArtifactKind, key: u64, fingerprint: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 1 + 8 + 4 + fingerprint.len() + 8 + payload.len() + 8);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(fingerprint.len() as u32).to_le_bytes());
    out.extend_from_slice(fingerprint.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a_bytes(payload).to_le_bytes());
    out
}

/// A fully parsed artifact entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The artifact family.
    pub kind: ArtifactKind,
    /// The 64-bit content key.
    pub key: u64,
    /// The producer fingerprint stamped at write time.
    pub fingerprint: String,
    /// The opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Parses an `LGRS1` entry, verifying magic, version, kind, checksum,
/// and exact length.
///
/// # Errors
///
/// Every corruption mode is typed: [`StoreError::BadMagic`],
/// [`StoreError::VersionMismatch`], [`StoreError::BadKind`],
/// [`StoreError::Truncated`], [`StoreError::ChecksumMismatch`],
/// [`StoreError::TrailingBytes`], and [`StoreError::BadRecord`] for a
/// non-UTF-8 fingerprint.
pub fn entry_from_bytes(buf: &[u8]) -> Result<Entry, StoreError> {
    let mut r = crate::codec::ByteReader::new(buf);
    if r.take(4)? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(StoreError::VersionMismatch { found: version });
    }
    let kind = ArtifactKind::from_u8(r.u8()?)?;
    let key = r.u64()?;
    let fp_len = r.u32()? as usize;
    let fingerprint =
        String::from_utf8(r.take(fp_len)?.to_vec()).map_err(|_| StoreError::BadRecord)?;
    let payload_len = usize::try_from(r.u64()?).map_err(|_| StoreError::Truncated)?;
    let payload = r.take(payload_len)?.to_vec();
    let checksum = r.u64()?;
    r.finish()?;
    if checksum != fnv1a_bytes(&payload) {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(Entry { kind, key, fingerprint, payload })
}

/// Whether `buf` starts with the `LGRS` magic — cheap format sniffing
/// for tooling that dispatches on file contents.
#[must_use]
pub fn sniff(buf: &[u8]) -> bool {
    buf.len() >= 4 && &buf[..4] == MAGIC
}

/// A content-addressed artifact store rooted at one directory.
///
/// Lookups are fingerprint-checked: [`Store::get`] returns the payload
/// only when both the key and the producer fingerprint match, and
/// counts every outcome on the `store.hits` / `store.misses` obs
/// counters. [`Store::put`] is atomic and counts replaced
/// different-fingerprint entries as `store.evictions`.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (or creates) the store rooted at `dir`, creating the kind
    /// directories and sweeping any `.tmp` orphan a crashed writer left
    /// behind — a half-written temp file must never shadow or outlive
    /// the entry it was meant to replace.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directories cannot be created or
    /// swept.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        let io = |e: std::io::Error| StoreError::Io(e.to_string());
        for kind in ArtifactKind::ALL {
            let d = dir.join(kind.dir_name());
            std::fs::create_dir_all(&d).map_err(io)?;
            for shard in std::fs::read_dir(&d).map_err(io)? {
                let shard = shard.map_err(io)?.path();
                if !shard.is_dir() {
                    continue;
                }
                for f in std::fs::read_dir(&shard).map_err(io)? {
                    let f = f.map_err(io)?.path();
                    if f.extension().is_some_and(|e| e == "tmp") {
                        std::fs::remove_file(&f).map_err(io)?;
                    }
                }
            }
        }
        Ok(Store { root: dir.to_path_buf() })
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an artifact lives at.
    #[must_use]
    pub fn entry_path(&self, kind: ArtifactKind, key: u64) -> PathBuf {
        self.root
            .join(kind.dir_name())
            .join(format!("{:02x}", key >> 56))
            .join(format!("{key:016x}.lgrs"))
    }

    /// Looks up an artifact. `Ok(None)` means a miss — absent entry
    /// *or* present entry stamped with a different fingerprint (a
    /// changed model or flag must read as stale, never as a wrong
    /// hit). Corruption is a typed error, not a miss, so a damaged
    /// store surfaces instead of silently recomputing forever.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, plus every parse error
    /// [`entry_from_bytes`] reports.
    pub fn get(
        &self,
        kind: ArtifactKind,
        key: u64,
        fingerprint: &str,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let _span = obs::span!("store.lookup");
        let path = self.entry_path(kind, key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                obs::counter!("store.misses").inc();
                return Ok(None);
            }
            Err(e) => return Err(StoreError::Io(e.to_string())),
        };
        let entry = entry_from_bytes(&bytes)?;
        if entry.kind != kind || entry.key != key {
            return Err(StoreError::BadRecord);
        }
        if entry.fingerprint != fingerprint {
            obs::counter!("store.misses").inc();
            return Ok(None);
        }
        obs::counter!("store.hits").inc();
        Ok(Some(entry.payload))
    }

    /// Writes an artifact atomically (`.tmp` + `sync_all` + rename).
    /// Replacing an entry that carried a different fingerprint counts
    /// one `store.evictions`; `store.bytes` accumulates payload bytes
    /// written.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn put(
        &self,
        kind: ArtifactKind,
        key: u64,
        fingerprint: &str,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let io = |e: std::io::Error| StoreError::Io(e.to_string());
        let path = self.entry_path(kind, key);
        if let Ok(old) = std::fs::read(&path) {
            if entry_from_bytes(&old).map(|e| e.fingerprint != fingerprint).unwrap_or(true) {
                obs::counter!("store.evictions").inc();
            }
        }
        let dir = path.parent().expect("entry path has a shard directory");
        std::fs::create_dir_all(dir).map_err(io)?;
        let bytes = entry_to_bytes(kind, key, fingerprint, payload);
        let tmp = path.with_extension("tmp");
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(&bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(io)?;
        obs::counter!("store.bytes").add(payload.len() as u64);
        Ok(())
    }

    /// Removes one artifact if present; `Ok(false)` when absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn remove(&self, kind: ArtifactKind, key: u64) -> Result<bool, StoreError> {
        let path = self.entry_path(kind, key);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    /// Counts live entries of one kind (walks the fan-out directories;
    /// a diagnostics helper, not a hot path).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn len(&self, kind: ArtifactKind) -> Result<usize, StoreError> {
        let io = |e: std::io::Error| StoreError::Io(e.to_string());
        let mut n = 0;
        let d = self.root.join(kind.dir_name());
        for shard in std::fs::read_dir(&d).map_err(io)? {
            let shard = shard.map_err(io)?.path();
            if !shard.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(&shard).map_err(io)? {
                let f = f.map_err(io)?.path();
                if f.extension().is_some_and(|e| e == "lgrs") {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Whether no entries of `kind` exist.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn is_empty(&self, kind: ArtifactKind) -> Result<bool, StoreError> {
        Ok(self.len(kind)? == 0)
    }
}

/// A snapshot of the store's obs counters, for reporting hit rates at
/// the end of a run (quickstart prints this, the CI warm-rerun gate
/// greps it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Fingerprint-checked lookups that returned a payload.
    pub hits: u64,
    /// Absent or stale-fingerprint lookups.
    pub misses: u64,
    /// Payload bytes written.
    pub bytes: u64,
    /// Entries replaced because their fingerprint changed.
    pub evictions: u64,
}

impl StoreStats {
    /// Reads the current counter values from the obs registry.
    #[must_use]
    pub fn snapshot() -> StoreStats {
        let snap = obs::metrics::registry().snapshot();
        let get = |name: &str| snap.counter(name).unwrap_or(0);
        StoreStats {
            hits: get("store.hits"),
            misses: get("store.misses"),
            bytes: get("store.bytes"),
            evictions: get("store.evictions"),
        }
    }

    /// The delta between two snapshots (`self` taken after `before`).
    #[must_use]
    pub fn since(&self, before: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            bytes: self.bytes - before.bytes,
            evictions: self.evictions - before.evictions,
        }
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} bytes={} evictions={}",
            self.hits, self.misses, self.bytes, self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // The obs counters are process-global; tests that assert on their
    // deltas must not interleave with other tests' get/put traffic.
    static COUNTERS: Mutex<()> = Mutex::new(());

    fn counter_lock() -> MutexGuard<'static, ()> {
        COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("lgrs-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn entry_roundtrip() {
        let bytes = entry_to_bytes(ArtifactKind::Facts, 0xabcd, "fp@1", b"payload");
        let entry = entry_from_bytes(&bytes).unwrap();
        assert_eq!(entry.kind, ArtifactKind::Facts);
        assert_eq!(entry.key, 0xabcd);
        assert_eq!(entry.fingerprint, "fp@1");
        assert_eq!(entry.payload, b"payload");
        assert!(sniff(&bytes));
        assert!(!sniff(b"LGRI"));
    }

    #[test]
    fn get_put_roundtrip_and_miss_semantics() {
        let _guard = counter_lock();
        let (dir, store) = tmp_store("roundtrip");
        let key = 0x1122_3344_5566_7788;
        assert_eq!(store.get(ArtifactKind::TraceGroups, key, "fp").unwrap(), None);
        store.put(ArtifactKind::TraceGroups, key, "fp", b"data").unwrap();
        assert_eq!(
            store.get(ArtifactKind::TraceGroups, key, "fp").unwrap().as_deref(),
            Some(&b"data"[..])
        );
        // Same key, other kind: independent namespace.
        assert_eq!(store.get(ArtifactKind::Embedding, key, "fp").unwrap(), None);
        assert_eq!(store.len(ArtifactKind::TraceGroups).unwrap(), 1);
        assert!(store.is_empty(ArtifactKind::Embedding).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_reads_as_miss_never_wrong_hit() {
        let _guard = counter_lock();
        let (dir, store) = tmp_store("fp");
        let key = 42;
        store.put(ArtifactKind::Embedding, key, "model-a", b"vec-a").unwrap();
        // A changed checkpoint/flag must be a miss...
        assert_eq!(store.get(ArtifactKind::Embedding, key, "model-b").unwrap(), None);
        // ...and the matching fingerprint still hits.
        assert_eq!(
            store.get(ArtifactKind::Embedding, key, "model-a").unwrap().as_deref(),
            Some(&b"vec-a"[..])
        );
        // Overwriting with a new fingerprint evicts and the old
        // fingerprint can never resurface.
        let before = StoreStats::snapshot();
        store.put(ArtifactKind::Embedding, key, "model-b", b"vec-b").unwrap();
        assert_eq!(StoreStats::snapshot().since(&before).evictions, 1);
        assert_eq!(store.get(ArtifactKind::Embedding, key, "model-a").unwrap(), None);
        assert_eq!(
            store.get(ArtifactKind::Embedding, key, "model-b").unwrap().as_deref(),
            Some(&b"vec-b"[..])
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_leftover_tmp_from_crashed_writer() {
        let _guard = counter_lock();
        let (dir, store) = tmp_store("sweep");
        let key = 7;
        store.put(ArtifactKind::Lint, key, "fp", b"good").unwrap();
        // Simulate a crash mid-write: a .tmp sibling with garbage.
        let tmp = store.entry_path(ArtifactKind::Lint, key).with_extension("tmp");
        std::fs::write(&tmp, b"torn half-write").unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert!(!tmp.exists(), "open must sweep the orphan");
        // The committed entry survived untouched.
        assert_eq!(store.get(ArtifactKind::Lint, key, "fp").unwrap().as_deref(), Some(&b"good"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entry_is_typed_error_not_miss() {
        let _guard = counter_lock();
        let (dir, store) = tmp_store("corrupt");
        let key = 9;
        store.put(ArtifactKind::Facts, key, "fp", b"facts").unwrap();
        let path = store.entry_path(ArtifactKind::Facts, key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            store.get(ArtifactKind::Facts, key, "fp").unwrap_err(),
            StoreError::ChecksumMismatch
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_mismatch_inside_entry_is_bad_record() {
        let _guard = counter_lock();
        let (dir, store) = tmp_store("keymove");
        store.put(ArtifactKind::Facts, 1, "fp", b"x").unwrap();
        // Move the entry to a different key's path: content-addressing
        // violated, must be typed.
        let from = store.entry_path(ArtifactKind::Facts, 1);
        let to = store.entry_path(ArtifactKind::Facts, 2);
        std::fs::create_dir_all(to.parent().unwrap()).unwrap();
        std::fs::rename(&from, &to).unwrap();
        assert_eq!(store.get(ArtifactKind::Facts, 2, "fp").unwrap_err(), StoreError::BadRecord);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_is_red_green_precise() {
        let _guard = counter_lock();
        let (dir, store) = tmp_store("remove");
        store.put(ArtifactKind::TraceGroups, 1, "fp", b"a").unwrap();
        store.put(ArtifactKind::TraceGroups, 2, "fp", b"b").unwrap();
        assert!(store.remove(ArtifactKind::TraceGroups, 1).unwrap());
        assert!(!store.remove(ArtifactKind::TraceGroups, 1).unwrap());
        assert_eq!(
            store.get(ArtifactKind::TraceGroups, 2, "fp").unwrap().as_deref(),
            Some(&b"b"[..])
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let _guard = counter_lock();
        let (dir, store) = tmp_store("counters");
        let before = StoreStats::snapshot();
        assert!(store.get(ArtifactKind::Embedding, 5, "fp").unwrap().is_none());
        store.put(ArtifactKind::Embedding, 5, "fp", &[1, 2, 3]).unwrap();
        assert!(store.get(ArtifactKind::Embedding, 5, "fp").unwrap().is_some());
        assert!(store.get(ArtifactKind::Embedding, 5, "other").unwrap().is_none());
        let delta = StoreStats::snapshot().since(&before);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 2);
        assert_eq!(delta.bytes, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
