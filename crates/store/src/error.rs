//! Typed failure modes for the `LGRS1` artifact store.
//!
//! The contract mirrors `index::IndexError` for the `LGRI1` format: any
//! malformed input — truncation at any byte, flipped magic, unknown
//! version, trailing garbage, a checksum that disagrees with the
//! payload — maps to a variant here. Corruption is never a panic.

use std::fmt;

/// Everything that can go wrong opening, reading, or writing a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (message carries the `std::io::Error` text).
    Io(String),
    /// The entry does not start with the `LGRS` magic bytes.
    BadMagic,
    /// The entry has the right magic but an unknown version byte.
    VersionMismatch {
        /// The version byte actually present in the file.
        found: u8,
    },
    /// The entry ends mid-record.
    Truncated,
    /// Well-formed entry followed by extra bytes.
    TrailingBytes,
    /// The payload checksum does not match the stored one — the file
    /// was corrupted after the header survived.
    ChecksumMismatch,
    /// The kind byte is not a known [`crate::ArtifactKind`], or the
    /// entry's kind disagrees with the directory it was found in.
    BadKind {
        /// The kind byte actually present in the file.
        found: u8,
    },
    /// The entry's embedded key disagrees with its file name, or a
    /// payload codec found structurally invalid data.
    BadRecord,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store I/O error: {msg}"),
            StoreError::BadMagic => write!(f, "not an LGRS artifact (bad magic)"),
            StoreError::VersionMismatch { found } => {
                write!(f, "unsupported LGRS version {:?}", char::from(*found))
            }
            StoreError::Truncated => write!(f, "artifact entry is truncated"),
            StoreError::TrailingBytes => write!(f, "trailing bytes after artifact entry"),
            StoreError::ChecksumMismatch => write!(f, "artifact payload checksum mismatch"),
            StoreError::BadKind { found } => write!(f, "unknown artifact kind {found}"),
            StoreError::BadRecord => write!(f, "artifact record is structurally invalid"),
        }
    }
}

impl std::error::Error for StoreError {}
