//! The one FNV-1a implementation every key space in the workspace
//! shares.
//!
//! Before this crate existed, three call sites re-implemented the same
//! hash independently: the serve router (`content_hash`/`source_hash`),
//! the index key (produced by serve), and the canonicalizer's semantic
//! memo (`analysis::canon_hash`). They agreed only by convention. They
//! now all build on [`Fnv64`], and the pinned-value tests at the bottom
//! of this module freeze the key space: if any consumer's hash of the
//! reference program drifts, a test fails here rather than a cache
//! silently splitting.

/// 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
///
/// The `num`/`str` feeders match the byte schedules the serve router
/// and the canonicalizer historically used (`num` feeds the eight
/// little-endian bytes, `str` is length-prefixed), so adopting this
/// struct changed no existing key.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher seeded with the FNV offset basis.
    #[must_use]
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Feeds one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a byte slice.
    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Feeds a `u64` as its eight little-endian bytes.
    pub fn num(&mut self, n: u64) {
        self.bytes(&n.to_le_bytes());
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn str(&mut self, s: &str) {
        self.num(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// FNV-1a of a raw byte slice.
#[must_use]
pub fn fnv1a_bytes(bs: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.bytes(bs);
    h.finish()
}

/// FNV-1a of a string's UTF-8 bytes — the store key for artifacts
/// derived from a source text (traces, corpus outcomes, lint reports).
/// Identical to the serve router's `source_hash`, which now delegates
/// here.
#[must_use]
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a_bytes(s.as_bytes())
}

/// FNV-1a digest of a trained parameter store's serialized bytes — the
/// weights component of every model fingerprint. Two checkpoints that
/// could produce different embeddings digest differently, so a stale
/// cached embedding (or index) reads as a miss rather than a wrong hit.
#[must_use]
pub fn param_store_digest(params: &tensor::ParamStore) -> u64 {
    fnv1a_bytes(&tensor::save_store_binary(params))
}

/// SplitMix64 finalizer: spreads a store key into an independent RNG
/// seed. The corpus pipeline derives each program's trace seed as
/// `splitmix64(source_key ^ gen_seed)` so that a cache hit — which
/// skips tracing entirely — cannot perturb any other program's
/// randomness: no shared RNG stream threads through the per-program
/// work.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The reference program for the key-space pin tests: consumers in
/// other crates (serve routing, canon memo) hash this same source and
/// assert their own pinned digests against it.
pub const PIN_PROGRAM: &str =
    "fn addOne(x: int) -> int { return x + 1; }";

/// The pinned [`fnv1a_str`] digest of [`PIN_PROGRAM`]. Baked into a
/// test below; changing the hash schedule invalidates every on-disk
/// store, so this constant failing to match is a release blocker, not
/// a test to update casually.
pub const PIN_SOURCE_HASH: u64 = 0xf734_7679_3022_3959;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn pinned_program_hash_never_drifts() {
        // The key spaces of the store, the serve router, and the index
        // all derive from this byte schedule; a drift here silently
        // orphans every artifact on disk.
        assert_eq!(fnv1a_str(PIN_PROGRAM), PIN_SOURCE_HASH);
        // And the program must actually be valid minilang, so the
        // cross-crate pin tests can parse it.
        minilang::parse(PIN_PROGRAM).expect("pin program parses");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.bytes(b"foo");
        h.bytes(b"bar");
        assert_eq!(h.finish(), fnv1a_bytes(b"foobar"));
    }

    #[test]
    fn str_is_length_prefixed() {
        let digest = |parts: &[&str]| {
            let mut h = Fnv64::new();
            for p in parts {
                h.str(p);
            }
            h.finish()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
    }

    #[test]
    fn splitmix_spreads_near_keys() {
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Known SplitMix64 vector (seed 0 -> first output).
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }
}
