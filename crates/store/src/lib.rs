//! Content-addressed on-disk artifact store for the LIGER pipeline.
//!
//! The paper's blended embeddings are expensive by construction: every
//! program is traced, symbolically executed, and encoded before its
//! vector exists. This crate makes that work incremental across process
//! restarts — a corpus pass consults the store before tracing or
//! encoding, and an unchanged program loads bitwise-identical artifacts
//! instead of recomputing them.
//!
//! Three pieces:
//!
//! * [`hash`] — the one FNV-1a implementation every key space shares
//!   (serve routing, index identity, canon memo, store keys), plus the
//!   SplitMix64 seed-derivation used by the incremental corpus
//!   pipeline.
//! * [`Store`] — the content-addressed store itself: `LGRS1` entries,
//!   atomic writes, fingerprint-checked lookups, typed [`StoreError`]
//!   on any corruption, `store.hits`/`store.misses`/`store.bytes`/
//!   `store.evictions` obs counters and a `store.lookup` span.
//! * [`codec`] — the little-endian payload cursors the artifact-owning
//!   crates (trace, analysis, core) build their codecs on.
//!
//! The store holds payloads as opaque bytes; it depends only on
//! `tensor`, `obs`, and `minilang`, so every layer of the stack — from
//! `randgen` up to `liger-serve` — can reach it without cycles.

mod codec;
mod error;
pub mod hash;
mod store;

pub use codec::{embedding_from_bytes, embedding_to_bytes, ByteReader, ByteWriter};
pub use error::StoreError;
pub use store::{
    entry_from_bytes, entry_to_bytes, sniff, ArtifactKind, Entry, Store, StoreStats, MAGIC,
    VERSION,
};
