//! Little-endian payload codec helpers shared by every artifact kind.
//!
//! The store itself only moves opaque payload bytes; the crates that
//! own the artifact types (trace, analysis, core) define their payload
//! grammar on top of these two cursors so that every codec inherits the
//! same discipline: bounds-checked reads, typed [`StoreError`] on any
//! malformed input, and never a panic.

use crate::error::StoreError;
use minilang::StmtId;

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Finishes and returns the accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its IEEE-754 bits (bitwise lossless).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes verbatim (no length prefix) — for splicing an
    /// already-framed sub-payload.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a statement id.
    pub fn stmt(&mut self, s: StmtId) {
        self.u32(s.0);
    }
}

/// Bounds-checked little-endian cursor over payload bytes.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated)?;
        if end > self.buf.len() {
            return Err(StoreError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the buffer ends mid-number.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the buffer ends mid-number.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the buffer ends mid-number.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` from its IEEE-754 bits.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the buffer ends mid-number.
    pub fn f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] mid-string, [`StoreError::BadRecord`]
    /// on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| StoreError::BadRecord)
    }

    /// Reads a statement id.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the buffer ends mid-number.
    pub fn stmt(&mut self) -> Result<StmtId, StoreError> {
        Ok(StmtId(self.u32()?))
    }

    /// Whether the cursor has consumed every byte.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Asserts the payload ends here.
    ///
    /// # Errors
    ///
    /// [`StoreError::TrailingBytes`] when data remains.
    pub fn finish(&self) -> Result<(), StoreError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(StoreError::TrailingBytes)
        }
    }
}

/// Serializes an embedding vector as a length-prefixed run of IEEE-754
/// bits — the payload grammar of [`crate::ArtifactKind::Embedding`]
/// entries, shared by serve, quickstart, and the eval pipeline so a
/// vector cached by one consumer loads bitwise-identical in another.
#[must_use]
pub fn embedding_to_bytes(vec: &[f32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(vec.len() as u32);
    for &x in vec {
        w.f32(x);
    }
    w.into_bytes()
}

/// Parses an embedding payload written by [`embedding_to_bytes`].
///
/// # Errors
///
/// [`StoreError::Truncated`] / [`StoreError::TrailingBytes`] when the
/// byte count disagrees with the length prefix.
pub fn embedding_from_bytes(buf: &[u8]) -> Result<Vec<f32>, StoreError> {
    let mut r = ByteReader::new(buf);
    let n = r.u32()? as usize;
    let mut vec = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        vec.push(r.f32()?);
    }
    r.finish()?;
    Ok(vec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f32(1.5);
        w.str("héllo");
        w.stmt(StmtId(99));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.stmt().unwrap(), StmtId(99));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let mut w = ByteWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..7]);
        assert_eq!(r.u64().unwrap_err(), StoreError::Truncated);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 1);
        assert_eq!(r.finish().unwrap_err(), StoreError::TrailingBytes);
    }

    #[test]
    fn embedding_payload_roundtrip_is_bitwise() {
        let vec = [1.0f32, -0.0, f32::MIN_POSITIVE, 3.25e-7];
        let bytes = embedding_to_bytes(&vec);
        let back = embedding_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), vec.len());
        for (a, b) in vec.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(embedding_from_bytes(&bytes[..bytes.len() - 1]), Err(StoreError::Truncated));
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(embedding_from_bytes(&long), Err(StoreError::TrailingBytes));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.u8(0xff);
        w.u8(0xfe);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).str().unwrap_err(), StoreError::BadRecord);
    }
}
