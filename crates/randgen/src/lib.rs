//! # randgen — feedback-directed random input generation
//!
//! Stands in for Randoop [22] in the paper's pipeline (§6.1) and for the
//! custom "random input generation engine" used for COSET (§6.2):
//!
//! - [`random_inputs`] draws typed random inputs biased toward
//!   branch-relevant small values,
//! - [`generate_grouped`] runs the feedback-directed loop — keep an
//!   execution when it discovers a new path or its path still needs
//!   concrete traces — and returns executions grouped by path, and
//! - [`min_line_cover`] / [`reduction_order`] implement the
//!   line-coverage-preserving symbolic-trace reduction of §6.1.2.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = minilang::parse(
//!     "fn isPositive(x: int) -> bool {
//!          if (x > 0) { return true; }
//!          return false;
//!      }",
//! )?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (groups, stats) =
//!     randgen::generate_grouped(&program, &randgen::GenConfig::default(), &mut rng);
//! assert_eq!(groups.len(), 2);
//! assert!(stats.kept > 0);
//! # Ok(())
//! # }
//! ```

pub mod feedback;
pub mod inputs;
pub mod mincover;

pub use feedback::{generate_grouped, GenConfig, GenStats};
pub use inputs::{check_inputs, random_inputs, random_value, InputConfig, InputError};
pub use mincover::{min_line_cover, reduction_order};
