//! Random input generation for MiniLang programs.
//!
//! Plays the part of Randoop [22] in the paper's pipeline (and of the
//! hand-written "random input generation engine" used for COSET, §6.2):
//! draws typed random inputs biased toward small, structurally interesting
//! values so that branches are actually exercised.

use interp::Value;
use minilang::{Program, Type};
use rand::{Rng, RngExt as _};

/// Bounds for random input generation.
#[derive(Debug, Clone, PartialEq)]
pub struct InputConfig {
    /// Inclusive magnitude bound for integer inputs.
    pub int_bound: i64,
    /// Maximum length of generated arrays.
    pub max_array_len: usize,
    /// Maximum length of generated strings.
    pub max_str_len: usize,
    /// Alphabet used for string inputs.
    pub alphabet: Vec<char>,
}

impl Default for InputConfig {
    fn default() -> Self {
        InputConfig {
            int_bound: 8,
            max_array_len: 6,
            max_str_len: 6,
            alphabet: vec!['a', 'b', 'c', 'd'],
        }
    }
}

/// Draws one random value of type `ty`.
pub fn random_value<R: Rng + ?Sized>(ty: Type, config: &InputConfig, rng: &mut R) -> Value {
    match ty {
        Type::Int => {
            // Bias toward small magnitudes: half the draws come from
            // [-4, 4], where most branch boundaries live.
            if rng.random::<bool>() {
                Value::Int(rng.random_range(-4..=4))
            } else {
                Value::Int(rng.random_range(-config.int_bound..=config.int_bound))
            }
        }
        Type::Bool => Value::Bool(rng.random::<bool>()),
        Type::Str => {
            let len = rng.random_range(0..=config.max_str_len);
            let s: String = (0..len)
                .map(|_| config.alphabet[rng.random_range(0..config.alphabet.len())])
                .collect();
            Value::Str(s)
        }
        Type::IntArray => {
            let len = rng.random_range(0..=config.max_array_len);
            let a: Vec<i64> =
                (0..len).map(|_| rng.random_range(-config.int_bound..=config.int_bound)).collect();
            Value::Array(a)
        }
    }
}

/// Draws a full random input vector for `program`.
pub fn random_inputs<R: Rng + ?Sized>(
    program: &Program,
    config: &InputConfig,
    rng: &mut R,
) -> Vec<Value> {
    program.function.params.iter().map(|p| random_value(p.ty, config, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_respect_types_and_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = InputConfig::default();
        for _ in 0..200 {
            match random_value(Type::Int, &config, &mut rng) {
                Value::Int(v) => assert!(v.abs() <= config.int_bound),
                other => panic!("expected int, got {other:?}"),
            }
            match random_value(Type::IntArray, &config, &mut rng) {
                Value::Array(a) => {
                    assert!(a.len() <= config.max_array_len);
                    assert!(a.iter().all(|v| v.abs() <= config.int_bound));
                }
                other => panic!("expected array, got {other:?}"),
            }
            match random_value(Type::Str, &config, &mut rng) {
                Value::Str(s) => {
                    assert!(s.len() <= config.max_str_len);
                    assert!(s.chars().all(|c| config.alphabet.contains(&c)));
                }
                other => panic!("expected str, got {other:?}"),
            }
        }
    }

    #[test]
    fn inputs_match_parameter_list() {
        let p = minilang::parse("fn f(a: array<int>, n: int, s: str) -> int { return n; }")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let inputs = random_inputs(&p, &InputConfig::default(), &mut rng);
        assert_eq!(inputs.len(), 3);
        assert_eq!(inputs[0].ty(), Type::IntArray);
        assert_eq!(inputs[1].ty(), Type::Int);
        assert_eq!(inputs[2].ty(), Type::Str);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let p = minilang::parse("fn f(x: int, a: array<int>) -> int { return x; }").unwrap();
        let c = InputConfig::default();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| random_inputs(&p, &c, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| random_inputs(&p, &c, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
