//! Random input generation for MiniLang programs.
//!
//! Plays the part of Randoop [22] in the paper's pipeline (and of the
//! hand-written "random input generation engine" used for COSET, §6.2):
//! draws typed random inputs biased toward small, structurally interesting
//! values so that branches are actually exercised.

use interp::Value;
use minilang::{Program, Type};
use rand::{Rng, RngExt as _};
use std::fmt;

/// Why a candidate input vector cannot drive a program.
///
/// Surfaced as a value so the feedback loop (and any embedding client that
/// supplies its own inputs) can skip the offending vector instead of
/// aborting the whole generation session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputError {
    /// The vector's length does not match the parameter list.
    Arity {
        /// Number of declared parameters.
        expected: usize,
        /// Number of supplied values.
        got: usize,
    },
    /// A value's runtime type differs from the parameter's declared type.
    TypeMismatch {
        /// Zero-based parameter position.
        index: usize,
        /// Parameter name.
        param: String,
        /// Declared type.
        expected: Type,
        /// Supplied type.
        got: Type,
    },
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::Arity { expected, got } => {
                write!(f, "expected {expected} input(s), got {got}")
            }
            InputError::TypeMismatch { index, param, expected, got } => {
                write!(f, "input {index} (parameter `{param}`) must be {expected:?}, got {got:?}")
            }
        }
    }
}

impl std::error::Error for InputError {}

/// Checks that `inputs` matches `program`'s parameter list in arity and
/// type, reporting the first mismatch as a typed [`InputError`].
pub fn check_inputs(program: &Program, inputs: &[Value]) -> Result<(), InputError> {
    let params = &program.function.params;
    if params.len() != inputs.len() {
        return Err(InputError::Arity { expected: params.len(), got: inputs.len() });
    }
    for (index, (p, v)) in params.iter().zip(inputs).enumerate() {
        if v.ty() != p.ty {
            return Err(InputError::TypeMismatch {
                index,
                param: p.name.clone(),
                expected: p.ty,
                got: v.ty(),
            });
        }
    }
    Ok(())
}

/// Bounds for random input generation.
#[derive(Debug, Clone, PartialEq)]
pub struct InputConfig {
    /// Inclusive magnitude bound for integer inputs.
    pub int_bound: i64,
    /// Maximum length of generated arrays.
    pub max_array_len: usize,
    /// Maximum length of generated strings.
    pub max_str_len: usize,
    /// Alphabet used for string inputs.
    pub alphabet: Vec<char>,
}

impl Default for InputConfig {
    fn default() -> Self {
        InputConfig {
            int_bound: 8,
            max_array_len: 6,
            max_str_len: 6,
            alphabet: vec!['a', 'b', 'c', 'd'],
        }
    }
}

/// Draws one random value of type `ty`.
pub fn random_value<R: Rng + ?Sized>(ty: Type, config: &InputConfig, rng: &mut R) -> Value {
    match ty {
        Type::Int => {
            // Bias toward small magnitudes: half the draws come from
            // [-4, 4], where most branch boundaries live.
            if rng.random::<bool>() {
                Value::Int(rng.random_range(-4..=4))
            } else {
                Value::Int(rng.random_range(-config.int_bound..=config.int_bound))
            }
        }
        Type::Bool => Value::Bool(rng.random::<bool>()),
        Type::Str => {
            let len = rng.random_range(0..=config.max_str_len);
            let s: String = (0..len)
                .map(|_| config.alphabet[rng.random_range(0..config.alphabet.len())])
                .collect();
            Value::Str(s)
        }
        Type::IntArray => {
            let len = rng.random_range(0..=config.max_array_len);
            let a: Vec<i64> =
                (0..len).map(|_| rng.random_range(-config.int_bound..=config.int_bound)).collect();
            Value::Array(a)
        }
    }
}

/// Draws a full random input vector for `program`.
pub fn random_inputs<R: Rng + ?Sized>(
    program: &Program,
    config: &InputConfig,
    rng: &mut R,
) -> Vec<Value> {
    program.function.params.iter().map(|p| random_value(p.ty, config, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_respect_types_and_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = InputConfig::default();
        for _ in 0..200 {
            // Drawn values must carry their requested type …
            let int = random_value(Type::Int, &config, &mut rng);
            let arr = random_value(Type::IntArray, &config, &mut rng);
            let s = random_value(Type::Str, &config, &mut rng);
            assert_eq!(int.ty(), Type::Int);
            assert_eq!(arr.ty(), Type::IntArray);
            assert_eq!(s.ty(), Type::Str);
            // … and stay within the configured bounds.
            if let Value::Int(v) = int {
                assert!(v.abs() <= config.int_bound);
            }
            if let Value::Array(a) = arr {
                assert!(a.len() <= config.max_array_len);
                assert!(a.iter().all(|v| v.abs() <= config.int_bound));
            }
            if let Value::Str(s) = s {
                assert!(s.len() <= config.max_str_len);
                assert!(s.chars().all(|c| config.alphabet.contains(&c)));
            }
        }
    }

    #[test]
    fn type_confused_inputs_are_typed_errors() {
        let p = minilang::parse("fn f(a: array<int>, n: int) -> int { return n; }").unwrap();
        assert_eq!(check_inputs(&p, &[Value::Array(vec![1]), Value::Int(2)]), Ok(()));
        assert_eq!(
            check_inputs(&p, &[Value::Int(2)]),
            Err(InputError::Arity { expected: 2, got: 1 })
        );
        let err = check_inputs(&p, &[Value::Array(vec![]), Value::Bool(true)]).unwrap_err();
        assert_eq!(
            err,
            InputError::TypeMismatch {
                index: 1,
                param: "n".to_string(),
                expected: Type::Int,
                got: Type::Bool,
            }
        );
        // The error renders enough context to act on.
        assert!(err.to_string().contains("`n`"));
        // And every vector the generator draws passes its own check.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let inputs = random_inputs(&p, &InputConfig::default(), &mut rng);
            assert_eq!(check_inputs(&p, &inputs), Ok(()));
        }
    }

    #[test]
    fn inputs_match_parameter_list() {
        let p = minilang::parse("fn f(a: array<int>, n: int, s: str) -> int { return n; }")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let inputs = random_inputs(&p, &InputConfig::default(), &mut rng);
        assert_eq!(inputs.len(), 3);
        assert_eq!(inputs[0].ty(), Type::IntArray);
        assert_eq!(inputs[1].ty(), Type::Int);
        assert_eq!(inputs[2].ty(), Type::Str);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let p = minilang::parse("fn f(x: int, a: array<int>) -> int { return x; }").unwrap();
        let c = InputConfig::default();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| random_inputs(&p, &c, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| random_inputs(&p, &c, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
