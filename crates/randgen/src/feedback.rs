//! Feedback-directed trace generation.
//!
//! Randoop's core idea — use the outcome of previous executions to decide
//! what to keep — is reproduced here at the granularity the paper needs:
//! keep an execution when it discovers a new program path, or when its path
//! still has fewer than the per-path quota of concrete traces. Generation
//! stops once the path and concrete-trace targets are met (≈20 symbolic
//! traces × 5 concrete executions in §6.1) or the attempt budget runs out.

use crate::inputs::{check_inputs, random_inputs, InputConfig};
use interp::run_with_fuel;
use minilang::Program;
use rand::Rng;
use std::collections::HashMap;
use trace::{group_by_path, ExecutionTrace, PathGroup, SymbolicTrace};

/// Configuration of the feedback-directed generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Target number of distinct program paths (the paper's U ≈ 20).
    pub target_paths: usize,
    /// Concrete executions kept per path (the paper's Nε = 5).
    pub concrete_per_path: usize,
    /// Maximum number of random executions attempted.
    pub max_attempts: usize,
    /// Fuel per execution.
    pub fuel: u64,
    /// Input value bounds.
    pub inputs: InputConfig,
    /// Reject programs with fatal static diagnostics (provable crash or
    /// divergence) before attempting any execution. The screen only fires
    /// on programs that could never contribute a trace, so it changes
    /// which programs are *attempted*, never which traces are produced.
    pub static_screen: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            target_paths: 20,
            concrete_per_path: 5,
            max_attempts: 2000,
            fuel: 20_000,
            inputs: InputConfig::default(),
            static_screen: true,
        }
    }
}

/// Statistics of one generation session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenStats {
    /// Executions attempted.
    pub attempts: usize,
    /// Executions that ended in a runtime error (discarded).
    pub failures: usize,
    /// Executions kept.
    pub kept: usize,
    /// Distinct paths discovered.
    pub paths: usize,
    /// True when the static screen rejected the program without running
    /// anything.
    pub screened: bool,
}

/// Generates traces for `program` with coverage feedback; returns them
/// grouped by path (first-discovered path first) plus session statistics.
///
/// Programs for which *no* input produces a successful execution yield an
/// empty group list — the dataset filter treats that like the paper's
/// "Randoop does not have access / takes too long" categories.
pub fn generate_grouped<R: Rng + ?Sized>(
    program: &Program,
    config: &GenConfig,
    rng: &mut R,
) -> (Vec<PathGroup>, GenStats) {
    let _span = obs::span!("randgen.generate");
    obs::counter!("randgen.programs").inc();
    let mut stats = GenStats::default();
    if config.static_screen && analysis::lint::run(program).has_fatal() {
        // Provably crashes or diverges on every input: no execution could
        // ever be kept, so skip the attempt loop entirely.
        stats.screened = true;
        obs::counter!("randgen.screened").inc();
        return (Vec::new(), stats);
    }
    let mut kept: Vec<ExecutionTrace> = Vec::new();
    let mut per_path: HashMap<SymbolicTrace, usize> = HashMap::new();

    while stats.attempts < config.max_attempts {
        stats.attempts += 1;
        let inputs = random_inputs(program, &config.inputs, rng);
        if check_inputs(program, &inputs).is_err() {
            // A type-confused vector can never produce a trace; skip it
            // instead of letting the interpreter abort the session.
            stats.failures += 1;
            continue;
        }
        let run = match run_with_fuel(program, &inputs, config.fuel) {
            Ok(r) => r,
            Err(_) => {
                stats.failures += 1;
                continue;
            }
        };
        let trace = ExecutionTrace::from_run(inputs, run);
        let key = trace.symbolic();
        let count = per_path.get(&key).copied().unwrap_or(0);
        if count == 0 && per_path.len() >= config.target_paths {
            continue; // Path quota full; drop this discovery.
        }
        if count >= config.concrete_per_path {
            continue; // Path already has its concrete quota.
        }
        per_path.insert(key, count + 1);
        kept.push(trace);
        stats.kept += 1;

        let full_paths =
            per_path.values().filter(|&&c| c >= config.concrete_per_path).count();
        if per_path.len() >= config.target_paths && full_paths >= config.target_paths {
            break;
        }
    }

    let groups = group_by_path(kept);
    stats.paths = groups.len();
    obs::counter!("randgen.attempts").add(stats.attempts as u64);
    obs::counter!("randgen.kept").add(stats.kept as u64);
    (groups, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SIGN: &str = "fn signOf(x: int) -> int {
        if (x > 0) { return 1; }
        if (x < 0) { return 0 - 1; }
        return 0;
    }";

    #[test]
    fn discovers_all_three_paths() {
        let p = minilang::parse(SIGN).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (groups, stats) = generate_grouped(&p, &GenConfig::default(), &mut rng);
        assert_eq!(groups.len(), 3);
        assert!(stats.kept >= 3);
        assert!(stats.attempts >= stats.kept);
    }

    #[test]
    fn respects_concrete_quota() {
        let p = minilang::parse(SIGN).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let config = GenConfig { concrete_per_path: 2, ..GenConfig::default() };
        let (groups, _) = generate_grouped(&p, &config, &mut rng);
        assert!(groups.iter().all(|g| g.traces.len() <= 2));
    }

    #[test]
    fn crashing_program_yields_no_groups() {
        // Every execution divides by zero, but `x - x` is opaque to the
        // static screen, so the generator finds out the hard way.
        let p = minilang::parse("fn f(x: int) -> int { return 1 / (x - x); }").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let config = GenConfig { max_attempts: 50, ..GenConfig::default() };
        let (groups, stats) = generate_grouped(&p, &config, &mut rng);
        assert!(groups.is_empty());
        assert!(!stats.screened);
        assert_eq!(stats.failures, 50);
    }

    #[test]
    fn statically_fatal_program_is_screened_without_running() {
        let p = minilang::parse("fn f(x: int) -> int { return x / 0; }").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (groups, stats) = generate_grouped(&p, &GenConfig::default(), &mut rng);
        assert!(groups.is_empty());
        assert!(stats.screened);
        assert_eq!(stats.attempts, 0, "screen must fire before any execution");
        // Opting out restores the old behaviour.
        let config = GenConfig { static_screen: false, max_attempts: 10, ..GenConfig::default() };
        let (_, stats2) = generate_grouped(&p, &config, &mut rng);
        assert!(!stats2.screened);
        assert_eq!(stats2.failures, 10);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = minilang::parse(SIGN).unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let (groups, _) = generate_grouped(&p, &GenConfig::default(), &mut rng);
            groups.iter().map(|g| g.traces.len()).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }
}
