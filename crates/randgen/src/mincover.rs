//! Line-coverage-preserving path reduction (§6.1.2).
//!
//! The paper's symbolic-trace down-sampling protocol: "we first identify a
//! minimum set of symbolic traces for each method … that achieve the same
//! line coverage as before, and then gradually remove symbolic traces that
//! are not in the minimum set." Minimum set cover is NP-hard; like all
//! practical coverage tooling we use the greedy approximation.

use minilang::Program;
use std::collections::BTreeSet;
use trace::PathGroup;

/// Indices (into `groups`) of a greedy minimum subset of paths whose union
/// preserves the line coverage of the full set. Deterministic: ties are
/// broken by lower index. A trace that does not resolve against `program`
/// covers no lines (and is therefore never chosen).
pub fn min_line_cover(program: &Program, groups: &[PathGroup]) -> Vec<usize> {
    let line_sets: Vec<BTreeSet<u32>> =
        groups.iter().map(|g| g.symbolic.line_set(program).unwrap_or_default()).collect();
    let mut uncovered: BTreeSet<u32> = line_sets.iter().flatten().copied().collect();
    let mut chosen = Vec::new();
    let mut used = vec![false; groups.len()];
    while !uncovered.is_empty() {
        let (best, gain) = line_sets
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, s)| (i, s.intersection(&uncovered).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("uncovered lines must come from some group");
        debug_assert!(gain > 0, "no group can cover remaining lines");
        used[best] = true;
        chosen.push(best);
        for line in &line_sets[best] {
            uncovered.remove(line);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Orders path-group indices for §6.1.2-style reduction: the minimum
/// line-cover set first (so any prefix of length ≥ `min_cover.len()`
/// preserves line coverage), then the remaining paths in index order.
/// Removing paths from the *end* of this ordering is exactly "gradually
/// remove symbolic traces that are not in the minimum set".
pub fn reduction_order(program: &Program, groups: &[PathGroup]) -> Vec<usize> {
    let cover = min_line_cover(program, groups);
    let in_cover: BTreeSet<usize> = cover.iter().copied().collect();
    let mut order = cover;
    order.extend((0..groups.len()).filter(|i| !in_cover.contains(i)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{generate_grouped, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn grouped(src: &str, seed: u64) -> (minilang::Program, Vec<PathGroup>) {
        let p = minilang::parse(src).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (groups, _) = generate_grouped(&p, &GenConfig::default(), &mut rng);
        (p, groups)
    }

    const SIGN: &str = "fn signOf(x: int) -> int {
        if (x > 0) { return 1; }
        if (x < 0) { return 0 - 1; }
        return 0;
    }";

    #[test]
    fn cover_preserves_line_coverage() {
        let (p, groups) = grouped(SIGN, 5);
        let cover = min_line_cover(&p, &groups);
        let full: BTreeSet<u32> =
            groups.iter().flat_map(|g| g.symbolic.line_set(&p).unwrap()).collect();
        let reduced: BTreeSet<u32> =
            cover.iter().flat_map(|&i| groups[i].symbolic.line_set(&p).unwrap()).collect();
        assert_eq!(full, reduced);
        assert!(cover.len() <= groups.len());
    }

    #[test]
    fn reduction_order_prefix_preserves_coverage() {
        let (p, groups) = grouped(SIGN, 5);
        let order = reduction_order(&p, &groups);
        assert_eq!(order.len(), groups.len());
        let cover_len = min_line_cover(&p, &groups).len();
        let full: BTreeSet<u32> =
            groups.iter().flat_map(|g| g.symbolic.line_set(&p).unwrap()).collect();
        for prefix in cover_len..=groups.len() {
            let covered: BTreeSet<u32> = order[..prefix]
                .iter()
                .flat_map(|&i| groups[i].symbolic.line_set(&p).unwrap())
                .collect();
            assert_eq!(covered, full, "prefix of {prefix} paths loses line coverage");
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let (p, groups) = grouped(SIGN, 9);
        let mut order = reduction_order(&p, &groups);
        order.sort_unstable();
        assert_eq!(order, (0..groups.len()).collect::<Vec<_>>());
    }

    #[test]
    fn single_path_program_covers_with_one() {
        let (p, groups) = grouped("fn f(x: int) -> int { return x + 1; }", 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(min_line_cover(&p, &groups), vec![0]);
    }
}
