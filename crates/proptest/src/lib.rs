//! # proptest — offline stand-in for the `proptest` crate
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal property-testing runner with the subset of the
//! proptest API its tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), [`Strategy`] implemented for numeric
//! ranges and tuples of strategies, [`collection::vec`],
//! [`sample::select`], and the `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs
//! [`ProptestConfig::cases`] deterministic seeded cases (the seed is
//! derived from the test name, so failures reproduce exactly) and fails
//! with the ordinary panic of the underlying `assert!`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of seeded cases to run per property.
    pub cases: u32,
    /// Maximum consecutive `prop_assume!` rejections tolerated (kept for
    /// API parity; the runner treats assumes as plain case skips).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 1024 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{RngExt, Strategy};

    /// The length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{RngExt, Strategy};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice from `items`.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }
}

/// Re-exports under proptest's canonical module path.
pub mod strategy {
    pub use crate::Strategy;
}

/// Runs `cfg.cases` seeded cases of a property body. The per-case RNG is
/// derived from the property name so failures replay deterministically.
pub fn run_cases(cfg: &ProptestConfig, name: &str, mut body: impl FnMut(&mut StdRng)) {
    let base = fnv1a(name);
    for case in 0..cfg.cases {
        let mut rng = StdRng::seed_from_u64(base ^ u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D));
        body(&mut rng);
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running seeded cases of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ { $cfg } $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ { $crate::ProptestConfig::default() } $($rest)* }
    };
}

/// Internal tt-muncher behind [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $cfg:expr }) => {};
    ({ $cfg:expr }
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |__pt_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __pt_rng);)*
                $body
            });
        }
        $crate::__proptest_fns!{ { $cfg } $($rest)* }
    };
}

/// `assert!` under proptest's name (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The glob import used by every proptest test file.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_lengths(v in crate::collection::vec(0u64..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn select_draws_members(s in crate::sample::select(vec!["a", "b"])) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
