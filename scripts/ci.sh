#!/bin/bash
# Tier-1 gate: release build, lint wall, full test suite, the
# thread-count determinism + memoization equivalence property tests
# re-run with a 2-worker pool forced via the environment (exercising the
# LIGER_THREADS resolution path end to end), a liger-lint sweep over the
# rendered datagen corpus (shipped templates must be diagnostic-free,
# even of warnings), and a liger-serve smoke test (demo server start,
# ping + inference + lint + stats over TCP, graceful shutdown via the
# admin verb), and a profiled-quickstart gate (LIGER_PROFILE=1 run must
# emit a chrome-trace JSON that trace-validate accepts with >=90% of wall
# time under the root span, plus the <2% disabled-overhead bench).
# PR 6 adds: the batch-major kernel-equivalence proptests under a forced
# 2-worker pool, the quantized-accuracy gate on the quickstart checkpoint
# (--quantize: int8 prediction must match f32, cosine >= 0.99), and the
# kernel bench whose in-bench GFLOP/s floor fails on a SIMD/
# autovectorization regression.
# PR 8 adds: the semantic code-search smoke gate (index the rendered
# datagen corpus through a persistent demo server, assert every template
# finds itself at rank 1, restart the server on the saved LGRI1 file and
# assert a second query round still does) and the index bench smoke whose
# in-bench asserts gate ANN recall@10 >= 0.95 and search p99 < 100ms.
# PR 9 adds: a liger-lint --canon sweep over the rendered corpus (the
# canonicalizer must be idempotent and its canonical forms lint-clean on
# every template) and a clone-detection smoke against the running demo
# server (two syntactic variants of one routine indexed with canon must
# dedup onto one key, and a canon search must surface the stored clone
# through the canonical-exact tier while a plain search must not).
# PR 10 adds: the artifact-store red-green gate (quickstart twice over one
# --store-path: the second run must report zero store misses — nothing
# re-traced, nothing re-embedded) and the store bench smoke whose in-bench
# asserts gate zero warm misses, bitwise-identical warm samples, and the
# >=3x warm-speedup floor.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace matters: a bare root build skips member binaries, and the
# lint gate and smoke test below invoke liger-lint / render-templates /
# liger-serve straight from target/release.
cargo build --release --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
LIGER_THREADS=2 cargo test -q --test autodiff_properties parallel_training_is_bitwise_deterministic
LIGER_THREADS=2 cargo test -q --test autodiff_properties cached_training_is_bitwise_identical
# Batch-major fused-GEMM equivalence + int8 roundtrip proptests, with the
# worker pool forced to 2 so the batched path runs under the same thread
# configuration the determinism contract is stated for.
LIGER_THREADS=2 cargo test -q --test kernel_properties

# ---- liger-lint over the shipped datagen corpus -------------------------
# Every shipped template must be free of diagnostics — warnings included.
lint_dir=$(mktemp -d)
trap 'rm -rf "$lint_dir"' EXIT
target/release/render-templates "$lint_dir"
target/release/liger-lint --deny-warnings "$lint_dir"/*.ml
echo "liger-lint: shipped datagen corpus is diagnostic-free"
# The same sweep through the canonicalizer: the rewrite fixpoint must be
# idempotent on every template (the binary exits nonzero otherwise) and
# every canonical form must itself be diagnostic-free.
target/release/liger-lint --canon --deny-warnings --quiet "$lint_dir"/*.ml | grep -c '^canon ' \
    | xargs -I{} echo "liger-lint --canon: {} canonical forms, idempotent and diagnostic-free"
rm -rf "$lint_dir"
trap - EXIT

# ---- liger-serve smoke test ---------------------------------------------
serve_bin=target/release/liger-serve
serve_log=$(mktemp)
"$serve_bin" --demo --addr 127.0.0.1:0 --threads 2 > "$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT

# The demo trains a small model first; wait for the listening line.
addr=""
for _ in $(seq 1 600); do
    addr=$(sed -n 's/^liger-serve listening on //p' "$serve_log")
    [ -n "$addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "error: liger-serve exited before listening" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "error: liger-serve never started listening" >&2
    cat "$serve_log" >&2
    exit 1
fi
echo "liger-serve smoke test on $addr"

"$serve_bin" query "$addr" '{"op":"ping"}'
"$serve_bin" query "$addr" \
    '{"op":"name","source":"fn addOne(x: int) -> int { return x + 1; }"}'
lint=$("$serve_bin" query "$addr" \
    '{"op":"lint","source":"fn half(x: int) -> int { return x / 0; }"}')
echo "$lint"
case "$lint" in
    *'"fatal":true'*'division-by-zero'*) ;;
    *) echo "error: lint op missed the division by zero: $lint" >&2; exit 1 ;;
esac
stats=$("$serve_bin" query "$addr" '{"op":"stats"}')
echo "$stats"
# Admin verbs (ping/stats) bypass the queue; only the inference counts.
case "$stats" in
    *'"requests":1'*) ;;
    *) echo "error: STATS did not count the inference request: $stats" >&2; exit 1 ;;
esac

"$serve_bin" query "$addr" '{"op":"shutdown"}'
wait "$serve_pid"
trap 'rm -f "$serve_log"' EXIT
grep -q 'stopped after' "$serve_log"
echo "liger-serve smoke test passed"

# ---- semantic code-search smoke gate ------------------------------------
# Index the rendered datagen corpus through a demo server with a
# persistent index, assert every template finds itself at rank 1, then
# restart the server on the saved LGRI1 file and assert a second query
# round still does (save -> restart -> load must not change results).
idx_dir=$(mktemp -d)
trap 'kill "${idx_pid:-0}" 2>/dev/null || true; rm -rf "$idx_dir"; rm -f "$serve_log"' EXIT
target/release/render-templates "$idx_dir" >/dev/null
start_index_server() {
    "$serve_bin" --demo --addr 127.0.0.1:0 --threads 2 \
        --index-path "$idx_dir/corpus.lgri" > "$idx_dir/serve.log" 2>&1 &
    idx_pid=$!
    idx_addr=""
    for _ in $(seq 1 600); do
        idx_addr=$(sed -n 's/^liger-serve listening on //p' "$idx_dir/serve.log")
        [ -n "$idx_addr" ] && break
        if ! kill -0 "$idx_pid" 2>/dev/null; then
            echo "error: index smoke server exited before listening" >&2
            cat "$idx_dir/serve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$idx_addr" ]; then
        echo "error: index smoke server never started listening" >&2
        exit 1
    fi
}
self_query_round() {
    local round=$1
    while read -r key _outcome file; do
        # awk reads to EOF (head -1 would close the pipe after the exact
        # tier's first line and SIGPIPE-panic the client under pipefail)
        rank1=$("$serve_bin" search "$idx_addr" "$file" --k 1 | awk 'NR==1{print $2}')
        if [ "$rank1" != "$key" ]; then
            echo "error: $round: $file expected rank-1 key $key, got ${rank1:-nothing}" >&2
            exit 1
        fi
    done < "$idx_dir/keys.txt"
}
start_index_server
"$serve_bin" index "$idx_addr" "$idx_dir"/*.ml > "$idx_dir/keys.txt"
distinct=$(awk '{print $1}' "$idx_dir/keys.txt" | sort -u | wc -l)
self_query_round "first round"
"$serve_bin" query "$idx_addr" '{"op":"shutdown"}' >/dev/null
wait "$idx_pid"
[ -f "$idx_dir/corpus.lgri" ] || { echo "error: index was not persisted on shutdown" >&2; exit 1; }

start_index_server
entries=$("$serve_bin" query "$idx_addr" '{"op":"stats"}' \
    | sed -n 's/.*"index":{"entries":\([0-9]*\).*/\1/p')
if [ "$entries" != "$distinct" ]; then
    echo "error: reloaded index has $entries entries, expected $distinct" >&2
    exit 1
fi
self_query_round "after reload"

# ---- canonicalizer clone-detection smoke --------------------------------
# Two syntactic variants of one summation routine (for vs while, fresh
# names, compound vs plain increments) must dedup onto one index key
# under canon, and a canon search must surface the stored clone through
# the canonical-exact tier; a plain search must not.
cat > "$idx_dir/canon_for.ml" <<'EOF'
fn sumTo(n: int) -> int {
    let s: int = 0;
    for (let i: int = 0; i < n; i += 1) { s += i; }
    return s;
}
EOF
cat > "$idx_dir/canon_while.ml" <<'EOF'
fn total(limit: int) -> int {
    let acc: int = 0;
    let j: int = 0;
    while (j < limit) { acc = acc + j; j = j + 1; }
    return acc;
}
EOF
"$serve_bin" index "$idx_addr" --canon \
    "$idx_dir/canon_for.ml" "$idx_dir/canon_while.ml" > "$idx_dir/canon.txt"
cat "$idx_dir/canon.txt"
canon_key=$(awk 'NR==1 {print $1}' "$idx_dir/canon.txt")
canon_second=$(awk 'NR==2 {print $1, $2}' "$idx_dir/canon.txt")
if [ "$canon_second" != "$canon_key unchanged" ]; then
    echo "error: canon variants did not dedup onto one key" >&2
    exit 1
fi
exact=$("$serve_bin" search "$idx_addr" "$idx_dir/canon_while.ml" --canon --k 1 \
    | sed -n 's/^exact //p')
if [ "$exact" != "$canon_key" ]; then
    echo "error: canonical-exact tier missed the stored clone (got ${exact:-nothing}, want $canon_key)" >&2
    exit 1
fi
if "$serve_bin" search "$idx_addr" "$idx_dir/canon_while.ml" --k 1 | grep -q '^exact '; then
    echo "error: a plain search must not report a canonical-exact hit" >&2
    exit 1
fi
echo "canonicalizer clone-detection smoke passed (variants dedup to $canon_key)"

"$serve_bin" query "$idx_addr" '{"op":"shutdown"}' >/dev/null
wait "$idx_pid"
rm -rf "$idx_dir"
trap 'rm -f "$serve_log"' EXIT
echo "semantic code-search smoke gate passed ($distinct distinct programs, rank-1 self-hits across restart)"

# ---- profiled quickstart + trace validation -----------------------------
# A profiled run must produce a chrome-trace file the in-tree JSON codec
# accepts, with the root span covering >=90% of the recorded wall time.
rm -f quickstart.trace.json
LIGER_PROFILE=1 cargo run --release --example quickstart -- --retrain
target/release/trace-validate --min-coverage 0.9 quickstart.trace.json
echo "profiled quickstart trace validated"

# ---- quantized-accuracy gate on the quickstart checkpoint ---------------
# --quantize rewrites the checkpoint as int8 qparams and asserts in-process
# that the dequantize-free engine reproduces the f32 prediction and keeps
# the embedding cosine >= 0.99.
cargo run --release --example quickstart -- --quantize
echo "quantized quickstart checkpoint gate passed"

# ---- serve load-generator smoke gate ------------------------------------
# A short high-concurrency run of the epoll front end: 2 load-generator
# processes x 128 connections against a sharded server, asserting
# in-bench that every connection is accepted, no in-flight request is
# dropped, every BUSY/SHED reply reconciles against the server's own
# rejected/shed counters, and steady-state framing allocates nothing.
LIGER_THREADS=2 cargo bench -p bench --bench throughput_serve -- --smoke

# ---- observability overhead budget --------------------------------------
# Asserts in-bench that disabled span tracing costs <2% of encoder time.
cargo bench -p bench --bench throughput_obs

# ---- fused kernel throughput + SIMD floor -------------------------------
# Asserts in-bench that gemm_batch clears the autovectorization GFLOP/s
# floor and the f32 batch-major encoder clears 5x the PR 2 baseline.
cargo bench -p bench --bench throughput_kernels

# ---- embedding-index smoke gate -----------------------------------------
# A scaled-down corpus still past a lowered ANN activation threshold;
# asserts in-bench that graph search hits recall@10 >= 0.95 against the
# exact ranking and stays under the 100ms p99 budget.
cargo bench -p bench --bench throughput_index -- --smoke

# ---- artifact-store red-green gate --------------------------------------
# Quickstart twice over one store: the cold run traces and embeds, the
# warm run must replay everything from the store — its `store:` line must
# report zero misses (no program re-traced, no embedding recomputed).
store_dir=$(mktemp -d)
trap 'rm -f "$serve_log"; rm -rf "$store_dir"' EXIT
cargo run --release --example quickstart -- --store-path "$store_dir" > /dev/null
warm_out=$(cargo run --release --example quickstart -- --store-path "$store_dir")
echo "$warm_out" | grep '^store: ' || { echo "error: quickstart printed no store line" >&2; exit 1; }
echo "$warm_out" | grep -q '^store: hits=[1-9][0-9]* misses=0 ' || {
    echo "error: warm quickstart re-traced or re-embedded (expected zero misses)" >&2
    echo "$warm_out" | grep '^store: ' >&2
    exit 1
}
echo "artifact-store red-green gate passed (warm quickstart: zero misses)"

# ---- artifact-store incremental-pipeline smoke gate ---------------------
# Cold-vs-warm corpus pass through the store; asserts in-bench that the
# warm pass misses zero programs, replays bitwise-identical samples, and
# clears the 3x warm-speedup floor.
cargo bench -p bench --bench throughput_store -- --smoke
