#!/bin/bash
# Tier-1 gate: release build, lint wall, full test suite, and the
# thread-count determinism + memoization equivalence property tests
# re-run with a 2-worker pool forced via the environment (exercising the
# LIGER_THREADS resolution path end to end).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
LIGER_THREADS=2 cargo test -q --test autodiff_properties parallel_training_is_bitwise_deterministic
LIGER_THREADS=2 cargo test -q --test autodiff_properties cached_training_is_bitwise_identical
