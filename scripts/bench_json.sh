#!/bin/bash
# Runs the parallel-throughput bench sweep (1/2/4/8 worker threads) and
# writes the results to BENCH_parallel.json at the repo root.
#
# Usage: scripts/bench_json.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_parallel.json}"
bench_out=$(cargo bench -p bench --bench throughput_parallel 2>&1)
echo "$bench_out"

rows=$(echo "$bench_out" | grep '^THROUGHPUT' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (NR > 1) printf ",\n"
    printf "    {\"threads\": %s, \"examples\": %s, \"seconds\": %s, \"examples_per_sec\": %s}",
        kv["threads"], kv["examples"], kv["secs"], kv["examples_per_sec"]
    host = kv["host_threads"]
}
END { printf "\n"; print "HOST=" host > "/dev/stderr" }' 2>/tmp/bench_json_host)
host=$(sed -n 's/^HOST=//p' /tmp/bench_json_host)

if [ -z "$rows" ]; then
    echo "error: no THROUGHPUT lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_parallel",'
    echo '  "workload": "train_namer, tiny method-name dataset, 2 epochs, batch_size 8",'
    echo "  \"host_threads\": ${host:-1},"
    echo '  "results": ['
    printf '%s\n' "$rows"
    echo '  ]'
    echo '}'
} > "$out_file"

echo "wrote $out_file"
