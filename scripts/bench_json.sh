#!/bin/bash
# Runs the throughput bench suite and writes machine-readable results to
# the repo root:
#   * throughput_parallel (1/2/4/8 worker threads) -> BENCH_parallel.json
#   * throughput_encode (cold vs steady-state allocations) -> BENCH_encode.json
#   * throughput_kernels (GEMM GFLOP/s, f32 vs int8 encode) -> BENCH_kernels.json
#   * throughput_serve (1/2/4/8 pipelining clients) -> BENCH_serve.json
#   * throughput_analysis (lint/facts throughput + symexec pruning) -> BENCH_analysis.json
#   * throughput_obs (disabled/enabled span-tracing overhead) -> BENCH_obs.json
#   * throughput_index (insert rate, exact-vs-ANN search p99, recall@10) -> BENCH_index.json
#   * throughput_store (cold-vs-warm corpus pass through the artifact store) -> BENCH_store.json
#
# Usage: scripts/bench_json.sh [parallel_out.json] [encode_out.json] [serve_out.json] [analysis_out.json] [obs_out.json] [kernels_out.json] [index_out.json] [store_out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

par_out="${1:-BENCH_parallel.json}"
enc_out="${2:-BENCH_encode.json}"
srv_out="${3:-BENCH_serve.json}"
ana_out="${4:-BENCH_analysis.json}"
obs_out="${5:-BENCH_obs.json}"
ker_out="${6:-BENCH_kernels.json}"
idx_out="${7:-BENCH_index.json}"
sto_out="${8:-BENCH_store.json}"

# ---- parallel minibatch throughput --------------------------------------
bench_out=$(cargo bench -p bench --bench throughput_parallel 2>&1)
echo "$bench_out"

rows=$(echo "$bench_out" | grep '^THROUGHPUT' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (NR > 1) printf ",\n"
    printf "    {\"threads\": %s, \"examples\": %s, \"seconds\": %s, \"examples_per_sec\": %s}",
        kv["threads"], kv["examples"], kv["secs"], kv["examples_per_sec"]
    host = kv["host_threads"]
}
END { printf "\n"; print "HOST=" host > "/dev/stderr" }' 2>/tmp/bench_json_host)
host=$(sed -n 's/^HOST=//p' /tmp/bench_json_host)

if [ -z "$rows" ]; then
    echo "error: no THROUGHPUT lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_parallel",'
    echo '  "workload": "train_namer, tiny method-name dataset, 2 epochs, batch_size 8",'
    echo "  \"host_threads\": ${host:-1},"
    echo '  "results": ['
    printf '%s\n' "$rows"
    echo '  ]'
    echo '}'
} > "$par_out"

echo "wrote $par_out"

# ---- encoder allocation pressure (cold vs steady-state) -----------------
enc_bench_out=$(cargo bench -p bench --bench throughput_encode 2>&1)
echo "$enc_bench_out"

enc_json=$(echo "$enc_bench_out" | grep '^ENCODE' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (kv["mode"] == "summary") {
        summary = sprintf("  \"alloc_reduction\": %s,\n  \"speedup\": %s,\n  \"memo_replays\": %s",
            kv["alloc_reduction"], kv["speedup"], kv["replays"])
        next
    }
    if (nmodes++ > 0) modes = modes ",\n"
    modes = modes sprintf("    {\"mode\": \"%s\", \"programs\": %s, \"rounds\": %s, \"seconds\": %s, \"programs_per_sec\": %s, \"allocs_per_program\": %s, \"bytes_per_program\": %s}",
        kv["mode"], kv["programs"], kv["rounds"], kv["secs"],
        kv["programs_per_sec"], kv["allocs_per_program"], kv["bytes_per_program"])
}
END {
    if (nmodes == 0) exit 1
    print "  \"results\": ["
    print modes
    print "  ],"
    print summary
}')

if [ -z "$enc_json" ]; then
    echo "error: no ENCODE lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_encode",'
    echo '  "workload": "LIGER encoder forward, tiny method-name dataset, cold (fresh graph, uncached) vs steady-state (reused workspace, memoized)",'
    printf '%s\n' "$enc_json"
    echo '}'
} > "$enc_out"

echo "wrote $enc_out"

# ---- fused kernel throughput (GEMM GFLOP/s, f32 vs int8 encode) ---------
ker_bench_out=$(cargo bench -p bench --bench throughput_kernels 2>&1)
echo "$ker_bench_out"

ker_json=$(echo "$ker_bench_out" | grep '^KERNEL' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (kv["mode"] == "summary") {
        summary = sprintf("  \"gemm_gflops\": %s,\n  \"f32_programs_per_sec\": %s,\n  \"int8_programs_per_sec\": %s,\n  \"baseline_programs_per_sec\": %s,\n  \"f32_speedup_vs_baseline\": %s,\n  \"int8_speedup_vs_baseline\": %s",
            kv["gemm_gflops"], kv["f32_programs_per_sec"], kv["int8_programs_per_sec"],
            kv["baseline_programs_per_sec"], kv["f32_speedup_vs_baseline"], kv["int8_speedup_vs_baseline"])
        next
    }
    if (kv["mode"] == "gemm") {
        if (ngemm++ > 0) gemm = gemm ",\n"
        gemm = gemm sprintf("    {\"rows\": %s, \"cols\": %s, \"batch\": %s, \"reps\": %s, \"seconds\": %s, \"gflops\": %s}",
            kv["rows"], kv["cols"], kv["batch"], kv["reps"], kv["secs"], kv["gflops"])
        next
    }
    if (nenc++ > 0) enc = enc ",\n"
    enc = enc sprintf("    {\"mode\": \"%s\", \"programs\": %s, \"seconds\": %s, \"programs_per_sec\": %s}",
        kv["mode"], kv["programs"], kv["secs"], kv["programs_per_sec"])
}
END {
    if (ngemm == 0 || nenc == 0 || summary == "") exit 1
    print "  \"gemm\": ["
    print gemm
    print "  ],"
    print "  \"encode\": ["
    print enc
    print "  ],"
    print summary
}')

if [ -z "$ker_json" ]; then
    echo "error: no KERNEL lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_kernels",'
    echo '  "workload": "gemm_batch on representative encoder shapes (GFLOP/s, autovectorization floor asserted in-bench); tape-free f32 batch-major vs int8 quantized encode over the tiny method-name dataset",'
    printf '%s\n' "$ker_json"
    echo '}'
} > "$ker_out"

echo "wrote $ker_out"

# ---- serving throughput (micro-batched TCP loopback) --------------------
srv_bench_out=$(cargo bench -p bench --bench throughput_serve 2>&1)
echo "$srv_bench_out"

srv_rows=$(echo "$srv_bench_out" | grep '^SERVE ' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (NR > 1) printf ",\n"
    printf "    {\"clients\": %s, \"requests\": %s, \"batches\": %s, \"batch_factor\": %s, \"rejected\": %s, \"seconds\": %s, \"requests_per_sec\": %s, \"p50_us\": %s, \"p99_us\": %s}",
        kv["clients"], kv["requests"], kv["batches"], kv["batch_factor"],
        kv["rejected"], kv["secs"], kv["req_per_sec"], kv["p50_us"], kv["p99_us"]
}')

if [ -z "$srv_rows" ]; then
    echo "error: no SERVE lines in bench output" >&2
    exit 1
fi

srv_alloc=$(echo "$srv_bench_out" | grep '^SERVEALLOC' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    printf "  \"framing\": {\"frames\": %s, \"allocs\": %s, \"allocs_per_frame\": %s},",
        kv["frames"], kv["allocs"], kv["allocs_per_frame"]
}')

srv_load=$(echo "$srv_bench_out" | grep '^SERVELOAD' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    printf "  \"load\": {\"connections\": %s, \"processes\": %s, \"requests\": %s, \"ok\": %s, \"busy\": %s, \"shed\": %s, \"dropped\": %s, \"seconds\": %s, \"requests_per_sec\": %s, \"p99_us\": %s}",
        kv["conns"], kv["procs"], kv["sent"], kv["ok"], kv["busy"], kv["shed"],
        kv["dropped"], kv["secs"], kv["req_per_sec"], kv["p99_us"]
}')

if [ -z "$srv_alloc" ] || [ -z "$srv_load" ]; then
    echo "error: no SERVEALLOC/SERVELOAD lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_serve",'
    echo '  "workload": "liger-serve epoll front end: 64 pipelined embed requests per client over sharded micro-batching workers (8-client floor 3000.94 req/s asserted in-bench); zero-allocation steady-state framing asserted; 1024-connection 4-process load phase with zero dropped in-flight requests asserted",'
    echo '  "results": ['
    printf '%s\n' "$srv_rows"
    echo '  ],'
    printf '%s\n' "$srv_alloc"
    printf '%s\n' "$srv_load"
    echo '}'
} > "$srv_out"

echo "wrote $srv_out"

# ---- static-analysis throughput & symexec pruning -----------------------
ana_bench_out=$(cargo bench -p bench --bench throughput_analysis 2>&1)
echo "$ana_bench_out"

ana_json=$(echo "$ana_bench_out" | grep '^ANALYSIS' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (kv["mode"] == "symexec") {
        if (nsym++ > 0) sym = sym ",\n"
        sym = sym sprintf("    {\"use_analysis\": %s, \"programs\": %s, \"paths\": %s, \"solver_calls\": %s, \"pruned_guards\": %s, \"solver_call_reduction\": %s, \"seconds\": %s}",
            kv["use_analysis"], kv["programs"], kv["paths"], kv["solver_calls"],
            kv["pruned_guards"], kv["call_reduction"], kv["secs"])
        next
    }
    if (kv["mode"] == "canon") {
        canon = sprintf("    \"programs\": %s,\n    \"behaviors\": %s,\n    \"draws\": %s,\n    \"distinct\": %s,\n    \"dedup_ratio\": %s,\n    \"pair_collapse\": %s,\n    \"mutant_pairs\": %s,\n    \"mutant_collisions\": %s,\n    \"canon_us_per_program\": %s,\n    \"seconds\": %s",
            kv["programs"], kv["behaviors"], kv["draws"], kv["distinct"],
            kv["dedup_ratio"], kv["pair_collapse"], kv["mutant_pairs"],
            kv["mutant_collisions"], kv["canon_us_per_program"], kv["secs"])
        next
    }
    if (kv["mode"] == "canon_memo") {
        memo = sprintf("    \"memo\": {\"encodes_direct\": %s, \"encodes_memo\": %s, \"hits\": %s, \"extraction_reduction\": %s, \"direct_secs\": %s, \"memo_secs\": %s, \"encode_speedup\": %s}",
            kv["encodes_direct"], kv["encodes_memo"], kv["memo_hits"],
            kv["extraction_reduction"], kv["direct_secs"], kv["memo_secs"],
            kv["encode_speedup"])
        next
    }
    if (nthr++ > 0) thr = thr ",\n"
    thr = thr sprintf("    {\"mode\": \"%s\", \"programs\": %s, \"rounds\": %s, \"seconds\": %s, \"programs_per_sec\": %s}",
        kv["mode"], kv["programs"], kv["rounds"], kv["secs"], kv["programs_per_sec"])
}
END {
    if (nthr == 0 || nsym == 0 || canon == "" || memo == "") exit 1
    print "  \"throughput\": ["
    print thr
    print "  ],"
    print "  \"symexec_pruning\": ["
    print sym
    print "  ],"
    print "  \"canon\": {"
    print canon ","
    print memo
    print "  }"
}')

if [ -z "$ana_json" ]; then
    echo "error: no ANALYSIS lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_analysis",'
    echo '  "workload": "53 datagen templates: lint + program_facts throughput; symexec path enumeration with/without analysis pruning on the distractor-augmented corpus (identical path sets asserted in-bench); canonicalizer dedup over a variant-heavy corpus (>=30% pair collapse, zero mutant collisions, and memo encode-work reduction asserted in-bench)",'
    printf '%s\n' "$ana_json"
    echo '}'
} > "$ana_out"

echo "wrote $ana_out"

# ---- observability overhead (disabled/enabled span tracing) -------------
obs_bench_out=$(cargo bench -p bench --bench throughput_obs 2>&1)
echo "$obs_bench_out"

obs_json=$(echo "$obs_bench_out" | grep '^OBS' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (kv["mode"] == "spancost") {
        spancost = sprintf("  \"ns_per_disabled_span\": %s,\n  \"spans_per_program\": %s,\n  \"disabled_overhead_frac\": %s",
            kv["ns_per_span"], kv["spans_per_program"], kv["overhead_frac"])
        next
    }
    if (kv["mode"] == "summary") {
        summary = sprintf("  \"overhead_budget\": %s,\n  \"pass\": %s", kv["overhead_budget"], kv["pass"])
        next
    }
    if (nmodes++ > 0) modes = modes ",\n"
    modes = modes sprintf("    {\"mode\": \"%s\", \"programs\": %s, \"rounds\": %s, \"seconds\": %s, \"programs_per_sec\": %s}",
        kv["mode"], kv["programs"], kv["rounds"], kv["secs"], kv["programs_per_sec"])
}
END {
    if (nmodes == 0 || spancost == "" || summary == "") exit 1
    print "  \"results\": ["
    print modes
    print "  ],"
    print spancost ","
    print summary
}')

if [ -z "$obs_json" ]; then
    echo "error: no OBS lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_obs",'
    echo '  "workload": "memoized LIGER encoder over the tiny method-name dataset, span tracing off vs on; disabled-mode overhead modeled as ns_per_disabled_span x spans_per_program and asserted < 2% in-bench",'
    printf '%s\n' "$obs_json"
    echo '}'
} > "$obs_out"

echo "wrote $obs_out"

# ---- embedding-index throughput (insert rate, exact vs ANN, recall) -----
idx_bench_out=$(cargo bench -p bench --bench throughput_index 2>&1)
echo "$idx_bench_out"

idx_json=$(echo "$idx_bench_out" | grep '^INDEX' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (kv["mode"] == "insert") {
        insert = sprintf("  \"insert\": {\"entries\": %s, \"dim\": %s, \"seconds\": %s, \"inserts_per_sec\": %s, \"bytes\": %s},",
            kv["entries"], kv["dim"], kv["secs"], kv["inserts_per_sec"], kv["bytes"])
        next
    }
    if (kv["mode"] == "summary") {
        summary = sprintf("  \"p99_budget_us\": %s,\n  \"recall_at_10\": %s,\n  \"recall_gate\": %s,\n  \"ann_speedup_p50\": %s,\n  \"pass\": %s",
            kv["p99_budget_us"], kv["recall_at_10"], kv["recall_gate"], kv["ann_speedup_p50"], kv["pass"])
        next
    }
    if (nsearch++ > 0) search = search ",\n"
    recall = (kv["recall_at_10"] != "") ? sprintf(", \"recall_at_10\": %s", kv["recall_at_10"]) : ""
    search = search sprintf("    {\"searcher\": \"%s\", \"entries\": %s, \"queries\": %s, \"k\": %s, \"seconds\": %s, \"p50_us\": %s, \"p99_us\": %s%s}",
        kv["searcher"], kv["entries"], kv["queries"], kv["k"], kv["secs"],
        kv["p50_us"], kv["p99_us"], recall)
}
END {
    if (insert == "" || nsearch == 0 || summary == "") exit 1
    print insert
    print "  \"search\": ["
    print search
    print "  ],"
    print summary
}')

if [ -z "$idx_json" ]; then
    echo "error: no INDEX lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_index",'
    echo '  "workload": "persistent embedding index (LGRI1): 10k random 24-dim vectors; insert rate, exact brute-force vs HNSW-graph top-10 search latency (p99 < 100ms asserted in-bench), ANN recall@10 vs exact (>= 0.95 asserted in-bench)",'
    printf '%s\n' "$idx_json"
    echo '}'
} > "$idx_out.tmp"
mv "$idx_out.tmp" "$idx_out"

echo "wrote $idx_out"

# ---- artifact-store incremental pipeline (cold vs warm corpus pass) ------
sto_bench_out=$(cargo bench -p bench --bench throughput_store 2>&1)
echo "$sto_bench_out"

sto_json=$(echo "$sto_bench_out" | grep '^STORE' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (kv["mode"] == "cold") {
        cold = sprintf("  \"cold\": {\"programs\": %s, \"kept\": %s, \"seconds\": %s, \"programs_per_sec\": %s, \"misses\": %s, \"bytes\": %s},",
            kv["programs"], kv["kept"], kv["secs"], kv["programs_per_sec"], kv["misses"], kv["bytes"])
        next
    }
    if (kv["mode"] == "warm") {
        warm = sprintf("  \"warm\": {\"programs\": %s, \"kept\": %s, \"seconds\": %s, \"programs_per_sec\": %s, \"hits\": %s, \"misses\": %s},",
            kv["programs"], kv["kept"], kv["secs"], kv["programs_per_sec"], kv["hits"], kv["misses"])
        next
    }
    if (kv["mode"] == "summary") {
        summary = sprintf("  \"warm_speedup\": %s,\n  \"speedup_floor\": %s,\n  \"warm_misses\": %s,\n  \"pass\": %s",
            kv["warm_speedup"], kv["speedup_floor"], kv["warm_misses"], kv["pass"])
    }
}
END {
    if (cold == "" || warm == "" || summary == "") exit 1
    print cold
    print warm
    print summary
}')

if [ -z "$sto_json" ]; then
    echo "error: no STORE lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_store",'
    echo '  "workload": "content-addressed artifact store (LGRS1): full method-corpus pass cold (trace + filter every program, populate the store) vs warm (replay every cached outcome; zero misses and >= 3x speedup asserted in-bench, warm samples bitwise identical)",'
    printf '%s\n' "$sto_json"
    echo '}'
} > "$sto_out.tmp"
mv "$sto_out.tmp" "$sto_out"

echo "wrote $sto_out"
