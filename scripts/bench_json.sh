#!/bin/bash
# Runs the throughput bench suite and writes machine-readable results to
# the repo root:
#   * throughput_parallel (1/2/4/8 worker threads) -> BENCH_parallel.json
#   * throughput_encode (cold vs steady-state allocations) -> BENCH_encode.json
#   * throughput_serve (1/2/4/8 pipelining clients) -> BENCH_serve.json
#
# Usage: scripts/bench_json.sh [parallel_out.json] [encode_out.json] [serve_out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

par_out="${1:-BENCH_parallel.json}"
enc_out="${2:-BENCH_encode.json}"
srv_out="${3:-BENCH_serve.json}"

# ---- parallel minibatch throughput --------------------------------------
bench_out=$(cargo bench -p bench --bench throughput_parallel 2>&1)
echo "$bench_out"

rows=$(echo "$bench_out" | grep '^THROUGHPUT' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (NR > 1) printf ",\n"
    printf "    {\"threads\": %s, \"examples\": %s, \"seconds\": %s, \"examples_per_sec\": %s}",
        kv["threads"], kv["examples"], kv["secs"], kv["examples_per_sec"]
    host = kv["host_threads"]
}
END { printf "\n"; print "HOST=" host > "/dev/stderr" }' 2>/tmp/bench_json_host)
host=$(sed -n 's/^HOST=//p' /tmp/bench_json_host)

if [ -z "$rows" ]; then
    echo "error: no THROUGHPUT lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_parallel",'
    echo '  "workload": "train_namer, tiny method-name dataset, 2 epochs, batch_size 8",'
    echo "  \"host_threads\": ${host:-1},"
    echo '  "results": ['
    printf '%s\n' "$rows"
    echo '  ]'
    echo '}'
} > "$par_out"

echo "wrote $par_out"

# ---- encoder allocation pressure (cold vs steady-state) -----------------
enc_bench_out=$(cargo bench -p bench --bench throughput_encode 2>&1)
echo "$enc_bench_out"

enc_json=$(echo "$enc_bench_out" | grep '^ENCODE' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (kv["mode"] == "summary") {
        summary = sprintf("  \"alloc_reduction\": %s,\n  \"speedup\": %s,\n  \"memo_replays\": %s",
            kv["alloc_reduction"], kv["speedup"], kv["replays"])
        next
    }
    if (nmodes++ > 0) modes = modes ",\n"
    modes = modes sprintf("    {\"mode\": \"%s\", \"programs\": %s, \"rounds\": %s, \"seconds\": %s, \"programs_per_sec\": %s, \"allocs_per_program\": %s, \"bytes_per_program\": %s}",
        kv["mode"], kv["programs"], kv["rounds"], kv["secs"],
        kv["programs_per_sec"], kv["allocs_per_program"], kv["bytes_per_program"])
}
END {
    if (nmodes == 0) exit 1
    print "  \"results\": ["
    print modes
    print "  ],"
    print summary
}')

if [ -z "$enc_json" ]; then
    echo "error: no ENCODE lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_encode",'
    echo '  "workload": "LIGER encoder forward, tiny method-name dataset, cold (fresh graph, uncached) vs steady-state (reused workspace, memoized)",'
    printf '%s\n' "$enc_json"
    echo '}'
} > "$enc_out"

echo "wrote $enc_out"

# ---- serving throughput (micro-batched TCP loopback) --------------------
srv_bench_out=$(cargo bench -p bench --bench throughput_serve 2>&1)
echo "$srv_bench_out"

srv_rows=$(echo "$srv_bench_out" | grep '^SERVE' | awk '
{
    delete kv
    for (i = 2; i <= NF; i++) { split($i, p, "="); kv[p[1]] = p[2] }
    if (NR > 1) printf ",\n"
    printf "    {\"clients\": %s, \"requests\": %s, \"batches\": %s, \"batch_factor\": %s, \"rejected\": %s, \"seconds\": %s, \"requests_per_sec\": %s, \"p50_us\": %s, \"p99_us\": %s}",
        kv["clients"], kv["requests"], kv["batches"], kv["batch_factor"],
        kv["rejected"], kv["secs"], kv["req_per_sec"], kv["p50_us"], kv["p99_us"]
}')

if [ -z "$srv_rows" ]; then
    echo "error: no SERVE lines in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput_serve",'
    echo '  "workload": "liger-serve TCP loopback, 64 pipelined embed requests per client, batch_max 16, batch_timeout 2ms",'
    echo '  "results": ['
    printf '%s\n' "$srv_rows"
    echo '  ]'
    echo '}'
} > "$srv_out"

echo "wrote $srv_out"
