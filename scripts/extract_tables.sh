#!/bin/bash
# Extracts every regenerated table/figure row from bench_output.txt —
# convenient when updating EXPERIMENTS.md after a bench run.
grep -E "^\||^====|Figure|Table|mean static|avg paths|dataset:|corpus:" "${1:-bench_output.txt}"
