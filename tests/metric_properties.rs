//! Property-based tests of the evaluation metric (§6.1.1's sub-token
//! precision/recall/F1) and of the down-sampling machinery.

use eval::PrecisionRecallF1;
use proptest::prelude::*;

fn subtoken() -> impl Strategy<Value = String> {
    proptest::sample::select(vec![
        "sum".to_string(),
        "max".to_string(),
        "array".to_string(),
        "count".to_string(),
        "find".to_string(),
        "value".to_string(),
    ])
}

fn name() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(subtoken(), 1..4)
}

proptest! {
    /// Scores are bounded percentages.
    #[test]
    fn scores_are_bounded(pred in name(), truth in name()) {
        let mut m = PrecisionRecallF1::default();
        m.add(&pred, &truth);
        prop_assert!((0.0..=100.0).contains(&m.precision()));
        prop_assert!((0.0..=100.0).contains(&m.recall()));
        prop_assert!((0.0..=100.0).contains(&m.f1()));
    }

    /// Predicting the truth exactly (any order) is a perfect score.
    #[test]
    fn permuted_truth_is_perfect(truth in name()) {
        let mut reversed = truth.clone();
        reversed.reverse();
        let mut m = PrecisionRecallF1::default();
        m.add(&reversed, &truth);
        prop_assert_eq!(m.f1(), 100.0);
    }

    /// Swapping prediction and truth swaps precision and recall.
    #[test]
    fn precision_recall_duality(a in name(), b in name()) {
        let mut m1 = PrecisionRecallF1::default();
        m1.add(&a, &b);
        let mut m2 = PrecisionRecallF1::default();
        m2.add(&b, &a);
        prop_assert!((m1.precision() - m2.recall()).abs() < 1e-9);
        prop_assert!((m1.recall() - m2.precision()).abs() < 1e-9);
        // F1 is symmetric.
        prop_assert!((m1.f1() - m2.f1()).abs() < 1e-9);
    }

    /// A strictly-larger prediction set never increases precision and
    /// never decreases recall.
    #[test]
    fn monotonicity_of_extension(pred in name(), truth in name(), extra in subtoken()) {
        let mut base = PrecisionRecallF1::default();
        base.add(&pred, &truth);
        let mut extended_pred = pred.clone();
        extended_pred.push(extra);
        let mut ext = PrecisionRecallF1::default();
        ext.add(&extended_pred, &truth);
        prop_assert!(ext.recall() >= base.recall() - 1e-9);
    }

    /// Merging accumulators equals accumulating jointly.
    #[test]
    fn merge_is_accumulation(a in name(), b in name(), c in name(), d in name()) {
        let mut joint = PrecisionRecallF1::default();
        joint.add(&a, &b);
        joint.add(&c, &d);

        let mut m1 = PrecisionRecallF1::default();
        m1.add(&a, &b);
        let mut m2 = PrecisionRecallF1::default();
        m2.add(&c, &d);
        m1.merge(&m2);
        prop_assert_eq!(joint.tp, m1.tp);
        prop_assert_eq!(joint.fp, m1.fp);
        prop_assert_eq!(joint.fn_, m1.fn_);
    }
}

/// Path-level resolution respects the min-cover floor for every fraction.
#[test]
fn path_levels_respect_min_cover() {
    for total in 1..10usize {
        for cover in 1..=total {
            for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
                let k = eval::PathLevel::Fraction(frac).resolve(total, cover);
                assert!(k >= cover.min(total), "fraction {frac} broke the cover floor");
                assert!(k <= total);
            }
            assert_eq!(eval::PathLevel::MinCover.resolve(total, cover), cover);
        }
    }
}
