//! End-to-end properties of the artifact store's red-green contract,
//! driven through the real corpus pipeline and a real model bundle.
//!
//! Gated contracts (ISSUE 10 acceptance criteria):
//! - a warm re-run of an unchanged corpus re-traces and re-executes
//!   **zero** programs and replays a bitwise-identical corpus, across a
//!   store "restart" (a fresh [`store::Store`] handle over the same
//!   directory) and across random generation seeds/knobs;
//! - editing one program invalidates exactly that program's artifacts;
//! - embeddings round-trip bitwise through the store, and a different
//!   checkpoint's fingerprint reads as a miss, never a wrong hit.

use datagen::{
    corpus_fingerprint, filter_one_stored, generate_method_corpus_with_store, CorpusConfig,
    MethodCorpus,
};
use liger::{
    encode_program, program_into_vocab, EncodeOptions, LigerConfig, LigerNamer, ModelBundle,
    OutVocab, Vocab,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Store hit/miss counters are process-global; tests that assert deltas
/// serialize on this lock (parallel test threads would otherwise bleed
/// into each other's snapshots).
static COUNTERS: Mutex<()> = Mutex::new(());

fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTERS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lgrs-props-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_config(paths: usize, per_path: usize) -> CorpusConfig {
    CorpusConfig {
        variants_per_family: 1,
        defect_prob: 0.2,
        gen: randgen::GenConfig {
            target_paths: paths,
            concrete_per_path: per_path,
            max_attempts: 150,
            ..randgen::GenConfig::default()
        },
        ..CorpusConfig::default()
    }
}

fn assert_bitwise_same(a: &MethodCorpus, b: &MethodCorpus) {
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.behavior, y.behavior);
        assert_eq!(x.program, y.program);
        assert_eq!(x.groups, y.groups, "traces must replay bitwise for {}", x.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The tentpole acceptance gate: for random seeds and generation
    /// knobs, a warm re-run over a *reopened* store replays the
    /// bitwise-identical corpus with zero misses — no program is
    /// re-traced or re-executed.
    #[test]
    fn warm_rerun_is_bitwise_identical_with_zero_misses(
        seed in 0u64..=1000,
        paths in 3usize..=5,
        per_path in 2usize..=3,
    ) {
        let _guard = counter_lock();
        let config = small_config(paths, per_path);
        let dir = temp_dir("warm");
        let cold = {
            let st = store::Store::open(&dir).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            generate_method_corpus_with_store(&config, &mut rng, Some(&st)).unwrap()
        };
        prop_assert!(cold.stats.kept > 0);

        // "Restart": a fresh handle over the same directory, as a new
        // process would open it.
        let st = store::Store::open(&dir).unwrap();
        let before = store::StoreStats::snapshot();
        let mut rng = StdRng::seed_from_u64(seed);
        let warm = generate_method_corpus_with_store(&config, &mut rng, Some(&st)).unwrap();
        let delta = store::StoreStats::snapshot().since(&before);
        assert_bitwise_same(&cold, &warm);
        prop_assert_eq!(delta.misses, 0, "warm rerun re-traced {} program(s)", delta.misses);
        prop_assert!(delta.hits as usize >= cold.stats.original);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Editing one program moves exactly its artifact to a new key: the
/// second pass misses once (the edited program) and hits everything
/// else.
#[test]
fn editing_one_program_costs_exactly_one_miss() {
    let _guard = counter_lock();
    let config = small_config(4, 2);
    let dir = temp_dir("one-edit");
    let st = store::Store::open(&dir).unwrap();

    let sources: Vec<String> = datagen::Behavior::ALL
        .iter()
        .take(6)
        .map(|b| b.render(&datagen::Knobs::plain()))
        .collect();
    for src in &sources {
        filter_one_stored(src, &config, Some(&st)).unwrap().unwrap();
    }

    // Second pass with one source edited (an extra harmless statement).
    let mut edited = sources.clone();
    edited[2] = edited[2].replacen('{', "{\nlet extraTmp: int = 0;\nextraTmp += 1;\n", 1);
    let before = store::StoreStats::snapshot();
    for src in &edited {
        filter_one_stored(src, &config, Some(&st)).unwrap().unwrap();
    }
    let delta = store::StoreStats::snapshot().since(&before);
    assert_eq!(delta.misses, 1, "exactly the edited program must miss: {delta}");
    assert_eq!(delta.hits, 5, "every unchanged program must hit: {delta}");

    // Both the old and the new artifact exist — red-green, not purge.
    let fp = corpus_fingerprint(&config);
    for src in sources.iter().chain([&edited[2]]) {
        let key = store::hash::fnv1a_str(src);
        assert!(st.get(store::ArtifactKind::CorpusOutcome, key, &fp).unwrap().is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Embeddings survive the store bitwise, stamped with the bundle
/// fingerprint; a retrained bundle's fingerprint differs, so its reads
/// miss instead of replaying the stale vector.
#[test]
fn embedding_roundtrips_bitwise_and_fingerprint_guards_staleness() {
    let _guard = counter_lock();
    let src = store::hash::PIN_PROGRAM;
    let program = minilang::parse(src).unwrap();
    minilang::typecheck(&program).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let gen = randgen::GenConfig {
        target_paths: 4,
        concrete_per_path: 2,
        max_attempts: 200,
        ..randgen::GenConfig::default()
    };
    let (groups, _) = randgen::generate_grouped(&program, &gen, &mut rng);
    let blended: Vec<trace::BlendedTrace> = groups.iter().filter_map(|g| g.blend(2).ok()).collect();

    let opts = EncodeOptions::default();
    let mut vocab = Vocab::new();
    program_into_vocab(&program, &blended, &mut vocab, &opts);
    let mut out = OutVocab::new();
    out.add("add");
    let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };

    let bundle_with_seed = |seed: u64| {
        let mut pstore = tensor::ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = LigerNamer::new(&mut pstore, vocab.len(), out.len(), cfg, &mut rng);
        ModelBundle::for_namer(cfg, vocab.clone(), out.clone(), pstore)
    };
    let bundle = bundle_with_seed(17);
    let mut inf = liger::Inferencer::from_bundle(&bundle).unwrap();
    let encoded = encode_program(&program, &blended, &inf.vocab, &opts);
    let emb = inf.embed(&encoded);

    let dir = temp_dir("emb");
    let st = store::Store::open(&dir).unwrap();
    let key = store::hash::fnv1a_str(src);
    let fp = bundle.fingerprint();
    st.put(store::ArtifactKind::Embedding, key, &fp, &store::embedding_to_bytes(&emb)).unwrap();

    // Bitwise across a reopen.
    let st = store::Store::open(&dir).unwrap();
    let payload = st.get(store::ArtifactKind::Embedding, key, &fp).unwrap().unwrap();
    let back = store::embedding_from_bytes(&payload).unwrap();
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&emb), bits(&back));

    // A different checkpoint fingerprints differently and misses.
    let other = bundle_with_seed(99);
    assert_ne!(bundle.fingerprint(), other.fingerprint());
    assert_eq!(st.get(store::ArtifactKind::Embedding, key, &other.fingerprint()).unwrap(), None);
    std::fs::remove_dir_all(&dir).ok();
}
