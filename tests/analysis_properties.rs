//! Differential soundness of the static analyses, checked against the
//! concrete interpreter, plus the symexec pruning-equivalence property.
//!
//! The contract under test (crates/analysis/src/lib.rs): every fact the
//! analyzer claims is an over-approximation of all concrete executions,
//! conditioned on the execution reaching the program point and the
//! variable holding a value there. Any concrete trace that contradicts a
//! fact is an analyzer bug — these tests drive the corpus templates with
//! random inputs and look for exactly that contradiction.

use analysis::constprop::AbsConst;
use analysis::interval::AbsVal;
use analysis::Analyzed;
use datagen::{Behavior, CmpStyle, Knobs};
use interp::{EventKind, Value};
use minilang::{Stmt, StmtId};
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::HashMap;

fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    proptest::sample::select(Behavior::ALL.to_vec())
}

/// Maps each universe slot to its `VarLayout` slot (by name), skipping
/// shadowed names — the interpreter shares one layout slot among all
/// declarations of a name, so per-declaration claims cannot be compared.
fn comparable_slots(a: &Analyzed<'_>, layout: &interp::VarLayout) -> Vec<(usize, usize)> {
    (0..a.universe.len())
        .filter(|&s| !a.universe.is_shadowed(s))
        .filter_map(|s| {
            layout.names.iter().position(|n| n == a.universe.name(s)).map(|ls| (s, ls))
        })
        .collect()
}

/// Checks one concrete pre-state of `stmt` against the analyzer's
/// before-facts. Returns a description of the first contradiction.
fn contradiction_at(
    a: &Analyzed<'_>,
    slots: &[(usize, usize)],
    stmt: StmtId,
    pre: &interp::State,
) -> Option<String> {
    let cp = a.const_facts.get(&stmt)?;
    let ia = a.interval_facts.get(&stmt)?;
    for &(slot, layout_slot) in slots {
        let Some(concrete) = &pre.values[layout_slot] else { continue };
        let name = a.universe.name(slot);
        match &cp.0.vals[slot] {
            AbsConst::Const(claimed) if claimed != concrete => {
                return Some(format!(
                    "constprop claims {name} = {claimed:?} before {stmt}, saw {concrete:?}"
                ));
            }
            _ => {}
        }
        let abs = ia.0.vals[slot];
        let ok = match (abs, concrete) {
            (AbsVal::Top, _) => true,
            (AbsVal::Int(iv), Value::Int(n)) => iv.contains(*n),
            (AbsVal::Bool(ab), Value::Bool(b)) => {
                if *b {
                    ab.maybe_t
                } else {
                    ab.maybe_f
                }
            }
            (AbsVal::Str { len }, Value::Str(s)) => len.contains(s.len() as i64),
            (AbsVal::Arr { len, elems }, Value::Array(xs)) => {
                len.contains(xs.len() as i64) && xs.iter().all(|&x| elems.contains(x))
            }
            // Bot (or a type-confused shape) contradicted by any concrete
            // value that reached this point.
            _ => false,
        };
        if !ok {
            return Some(format!(
                "interval claims {name} : {abs:?} before {stmt}, saw {concrete:?}"
            ));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every analyzer fact holds on every concrete trace: constants match
    /// observed values, intervals contain them, executed statements are
    /// reachable, and decided guards go the decided way.
    #[test]
    fn analysis_facts_hold_on_concrete_traces(
        behavior in behavior_strategy(),
        seed in 0u64..1000,
    ) {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        minilang::typecheck(&program).unwrap();
        let a = Analyzed::of(&program);
        let layout = interp::VarLayout::of(&program);
        let slots = comparable_slots(&a, &layout);
        let facts = analysis::program_facts(&program);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let inputs = randgen::random_inputs(&program, &randgen::InputConfig::default(), &mut rng);
            let Ok(run) = interp::run_with_fuel(&program, &inputs, 20_000) else { continue };
            let mut pre = &run.initial_state;
            for event in &run.events {
                // Reachability: the executed statement's block survives
                // refined reachability.
                prop_assert!(
                    facts.reachable.contains(&event.stmt),
                    "{behavior:?}: executed {} but analysis calls it unreachable",
                    event.stmt
                );
                // Decided guards: the concrete branch agrees.
                if let EventKind::Guard { taken } = event.kind {
                    if let Some(decided) = facts.decided_guard(event.stmt) {
                        prop_assert_eq!(
                            taken, decided,
                            "{:?}: guard {} decided {} but ran {}",
                            behavior, event.stmt, decided, taken
                        );
                    }
                }
                // Value facts: checked against the state *before* the event.
                if let Some(why) = contradiction_at(&a, &slots, event.stmt, pre) {
                    prop_assert!(false, "{behavior:?}: {why} (inputs {inputs:?})");
                }
                pre = &event.state;
            }
        }
    }

    /// Pruning with analysis facts preserves the feasible-path set exactly
    /// while never issuing more solver queries.
    #[test]
    fn pruning_preserves_the_feasible_path_set(behavior in behavior_strategy()) {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let base = symexec::SymExecConfig {
            max_paths: 16,
            max_steps: 200,
            use_analysis: false,
            ..symexec::SymExecConfig::default()
        };
        let pruned_cfg = symexec::SymExecConfig { use_analysis: true, ..base.clone() };
        let (paths_off, stats_off) = symexec::symbolic_execute(&program, &base);
        let (paths_on, stats_on) = symexec::symbolic_execute(&program, &pruned_cfg);

        let key = |paths: &[symexec::SymPath]| {
            let mut k: Vec<_> = paths.iter().map(|p| p.steps.clone()).collect();
            k.sort();
            k
        };
        prop_assert_eq!(key(&paths_off), key(&paths_on), "{:?}: path sets differ", behavior);
        prop_assert!(
            stats_on.solver_calls <= stats_off.solver_calls,
            "{behavior:?}: pruning issued more solver calls ({} > {})",
            stats_on.solver_calls,
            stats_off.solver_calls
        );
        if stats_on.pruned_guards > 0 {
            prop_assert!(
                stats_on.solver_calls < stats_off.solver_calls,
                "{behavior:?}: pruned {} guards without saving a solver call",
                stats_on.pruned_guards
            );
        }
    }

    /// Differential equivalence of the canonicalizer: for every template
    /// under random variation knobs and random inputs, the canonical
    /// program observes exactly the original's behavior — same success /
    /// failure outcome, same return value — and the rewrite fixpoint is
    /// idempotent.
    #[test]
    fn canonicalization_preserves_observable_behavior(
        behavior in behavior_strategy(),
        knob_seed in 0u64..1000,
        input_seed in 0u64..1000,
    ) {
        let mut krng = rand::rngs::StdRng::seed_from_u64(knob_seed);
        let knobs = Knobs::random(&mut krng, 0.5);
        let program = minilang::parse(&behavior.render(&knobs)).unwrap();
        minilang::typecheck(&program).unwrap();

        let canon = analysis::canonicalize(&program);
        let typecheck = minilang::typecheck(&canon.program);
        prop_assert!(
            typecheck.is_ok(),
            "{behavior:?}: canonical form fails to typecheck: {typecheck:?}"
        );
        let again = analysis::canonicalize(&canon.program);
        prop_assert_eq!(canon.hash, again.hash, "{:?}: canon_hash not stable", behavior);
        prop_assert_eq!(
            again.rewrites, 0,
            "{:?}: second canonicalization still rewrote", behavior
        );

        let mut rng = rand::rngs::StdRng::seed_from_u64(input_seed);
        for _ in 0..8 {
            let inputs = randgen::random_inputs(&program, &randgen::InputConfig::default(), &mut rng);
            let original = interp::run_with_fuel(&program, &inputs, 20_000);
            let canonical = interp::run_with_fuel(&canon.program, &inputs, 20_000);
            prop_assert_eq!(
                original.is_ok(), canonical.is_ok(),
                "{:?}: outcome diverged on {:?}", behavior, &inputs
            );
            prop_assert_eq!(
                original.ok().map(|r| r.return_value),
                canonical.ok().map(|r| r.return_value),
                "{:?}: return value diverged on {:?}", behavior, &inputs
            );
        }
    }

    /// `canon_hash` is invariant under the semantics-preserving variation
    /// knobs: loop style, increment spelling, doubling spelling, and
    /// identifier assignment. (The `<=`-pred comparison knob is held
    /// fixed: collapsing it needs interval evidence the raw-parameter
    /// loop bounds don't provide.)
    #[test]
    fn canon_hash_is_invariant_under_variant_knobs(
        behavior in behavior_strategy(),
        seed_a in 0u64..1000,
        seed_b in 1000u64..2000,
    ) {
        let render = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut knobs = Knobs::random(&mut rng, 0.5);
            knobs.cmp = CmpStyle::Lt;
            behavior.render(&knobs)
        };
        let a = minilang::parse(&render(seed_a)).unwrap();
        let b = minilang::parse(&render(seed_b)).unwrap();
        prop_assert_eq!(
            analysis::canonicalize(&a).hash,
            analysis::canonicalize(&b).hash,
            "{:?}: variants did not collapse (seeds {} / {})",
            behavior, seed_a, seed_b
        );
    }
}

/// Confusable lookalike pairs — same shape, different semantics — must
/// keep distinct canonical hashes under every knob draw that their
/// variant collapse is asserted for.
#[test]
fn canon_hash_separates_confusable_behaviors() {
    let pairs = [
        (Behavior::SumArray, Behavior::ProductArray),
        (Behavior::MaxArray, Behavior::MinArray),
        (Behavior::CountPositive, Behavior::CountNegative),
        (Behavior::CountEven, Behavior::CountPositive),
        (Behavior::SumEven, Behavior::SumPositive),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for (left, right) in pairs {
        for _ in 0..4 {
            let knobs = Knobs::random(&mut rng, 0.5);
            let l = minilang::parse(&left.render(&knobs)).unwrap();
            let r = minilang::parse(&right.render(&knobs)).unwrap();
            assert_ne!(
                analysis::canonicalize(&l).hash,
                analysis::canonicalize(&r).hash,
                "{left:?} and {right:?} must not collapse"
            );
        }
    }
}

/// Structural liveness soundness: a statement's uses are live before it.
#[test]
fn uses_are_live_before_every_statement() {
    for behavior in Behavior::ALL {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let a = Analyzed::of(&program);
        let by_id: HashMap<StmtId, &Stmt> =
            program.statements().into_iter().map(|s| (s.id, s)).collect();
        for (&stmt, (before, _)) in &a.live_facts {
            let mut uses = Vec::new();
            analysis::vars::stmt_uses(by_id[&stmt], &mut uses);
            for name in uses {
                let slot = a.universe.slot(name).expect("used variable has a slot");
                assert!(
                    before.contains(slot),
                    "{behavior:?}: {name} used by {stmt} but not live before it"
                );
            }
        }
    }
}
