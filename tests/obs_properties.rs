//! Property tests over the `obs` span tracer, plus the profiling
//! determinism contract: turning `LIGER_PROFILE` on must never change
//! what the model computes — training ends at bitwise-identical
//! parameters with tracing enabled and disabled.

use proptest::prelude::*;

/// Serializes tests that flip the process-global tracer state.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Enters a three-level span tree on the calling thread: one root, one
/// mid-level span per entry of `shape`, and `shape[i]` leaves under mid
/// span `i`.
fn build_span_tree(shape: &[usize]) {
    let _root = obs::span!("obsprop.root");
    for &leaves in shape {
        let _mid = obs::span!("obsprop.mid");
        for k in 0..leaves {
            let _leaf = obs::span!("obsprop.leaf");
            std::hint::black_box(k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// For any single-threaded span tree: every chain is counted exactly
    /// once per entry, children's inclusive times sum to at most their
    /// parent's inclusive time (strict nesting), and self time never
    /// exceeds inclusive time.
    #[test]
    fn span_tree_times_nest(shape in proptest::collection::vec(0usize..5, 1..6)) {
        let _guard = OBS_LOCK.lock().unwrap();
        obs::trace::set_enabled(Some(true));
        obs::trace::reset();
        build_span_tree(&shape);
        let profile = obs::Profile::collect();
        obs::trace::set_enabled(Some(false));

        let root = profile.node_by_names(&["obsprop.root"]).expect("root recorded");
        prop_assert_eq!(root.count, 1);
        let mid = profile.node_by_names(&["obsprop.root", "obsprop.mid"]).expect("mid");
        prop_assert_eq!(mid.count, shape.len() as u64);
        let leaves: u64 = shape.iter().map(|&n| n as u64).sum();
        let leaf = profile.node_by_names(&["obsprop.root", "obsprop.mid", "obsprop.leaf"]);
        match leaf {
            Some(leaf) => prop_assert_eq!(leaf.count, leaves),
            None => prop_assert_eq!(leaves, 0),
        }

        // Nesting invariants hold for every aggregated chain.
        for node in &profile.nodes {
            prop_assert!(
                node.child_ns <= node.total_ns,
                "{}: children sum {}ns > inclusive {}ns",
                node.name, node.child_ns, node.total_ns
            );
            prop_assert!(node.self_ns() <= node.total_ns);
        }
        // And the whole tree's self times fold back into the root.
        let self_sum: u64 = profile.nodes.iter().map(|n| n.self_ns()).sum();
        prop_assert!(self_sum <= root.total_ns);
    }
}

/// An encoded program with repetition, so the embedding memo replays
/// spans during training (mirrors the PR-2 identity-harness programs).
fn shared_prog(token: usize) -> liger::EncodedProgram {
    use liger::{EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram};
    let leaf = |t: usize| EncTree { token: t, children: vec![] };
    let step = |t: usize| EncStep {
        tree: EncTree { token: t, children: vec![leaf(t + 1), leaf(2)] },
        states: vec![EncState { vars: vec![EncVar::Primitive(3), EncVar::Object(vec![4, 5])] }],
    };
    EncodedProgram::from_traces(vec![
        EncBlended { steps: vec![step(token), step(token + 1), step(token)] },
        EncBlended { steps: vec![step(token), step(token + 1)] },
    ])
}

/// Trains a small namer for two epochs with tracing pinned on or off;
/// returns every parameter scalar as raw bits.
fn train_traced_bits(traced: bool, seed: u64) -> Vec<u32> {
    use liger::{LigerConfig, LigerNamer, NameSample, TrainConfig, EOS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    obs::trace::set_enabled(Some(traced));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = tensor::ParamStore::new();
    let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
    let namer = LigerNamer::new(&mut store, 16, 8, cfg, &mut rng);
    let samples: Vec<NameSample> = (0..5)
        .map(|k| NameSample { program: shared_prog(2 * k + 1), target: vec![(k % 7) + 1, EOS] })
        .collect();
    let tc = TrainConfig { epochs: 2, lr: 0.02, batch_size: 2 };
    liger::train_namer(&namer, &mut store, &samples, &tc, &mut rng);
    obs::trace::set_enabled(Some(false));
    obs::trace::reset();
    store.iter().flat_map(|p| p.value.data().iter().map(|v| v.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    /// The observability determinism contract (DESIGN.md §2e): span
    /// recording is a pure observer. Training with `LIGER_PROFILE`-style
    /// tracing enabled ends at bitwise-identical parameters to the
    /// untraced run.
    #[test]
    fn profiled_training_is_bitwise_identical(seed in 0u64..1_000_000) {
        let _guard = OBS_LOCK.lock().unwrap();
        let traced = train_traced_bits(true, seed);
        let untraced = train_traced_bits(false, seed);
        prop_assert_eq!(&traced, &untraced, "tracing changed trained parameters");
    }
}
