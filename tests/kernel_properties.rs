//! Property-based tests over the batch-major fused GEMM path and the
//! int8 quantization scheme.
//!
//! The batched kernels' contract is *bitwise* equivalence: fusing the k
//! per-program `affine` nodes of a minibatch into one `affine_batch`
//! panel must change neither the forward values nor the gradients, for
//! any shape — including the degenerate ones (1×N, N×1, k=1) and
//! non-multiple-of-tile row counts where the 4-row blocked kernel takes
//! its scalar-tail path. The int8 scheme's contract is the per-row
//! absmax error model: reconstruction error never exceeds half a
//! quantization step (`scales[r] / 2`).

use proptest::prelude::*;
use tensor::{Graph, ParamStore, QuantMat, Tensor};

/// Bit patterns of one tensor's values.
type Bits = Vec<u32>;
/// (per-output forward bits, loss bits, per-parameter gradient bits).
type RunBits = (Vec<Bits>, u32, Vec<(tensor::ParamId, Bits)>);

/// Deterministic value fill: xorshift over a seed, mapped into (-1, 1).
fn fill(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect()
}

/// Builds the per-program reference graph (`k` separate `affine` nodes)
/// or the batch-major graph (`pack` → `affine_batch` → `batch_item`),
/// reduces both through the same probe-dot loss, and returns the forward
/// bits of every output plus the loss and parameter gradients.
fn run_affine(
    store: &ParamStore,
    w: tensor::ParamId,
    b: tensor::ParamId,
    xs: &[Vec<f32>],
    probes: &[Vec<f32>],
    batched: bool,
) -> RunBits {
    let mut g = Graph::new();
    let wv = g.param(store, w);
    let bv = g.param(store, b);
    let x_ids: Vec<_> = xs.iter().map(|x| g.input(Tensor::vector(x.clone()))).collect();
    let outs: Vec<_> = if batched {
        let xp = g.pack(&x_ids);
        let panel = g.affine_batch(wv, xp, Some(bv));
        (0..xs.len()).map(|j| g.batch_item(panel, j)).collect()
    } else {
        x_ids.iter().map(|&x| g.affine(wv, x, bv)).collect()
    };
    let scores: Vec<_> = outs
        .iter()
        .zip(probes)
        .map(|(&o, p)| {
            let pv = g.input(Tensor::vector(p.clone()));
            g.dot(o, pv)
        })
        .collect();
    let stacked = g.stack_scalars(&scores);
    let loss = g.sum(stacked);
    let grads = g.backward_into(loss, store);
    let out_bits: Vec<Vec<u32>> = outs
        .iter()
        .map(|&o| g.value(o).data().iter().map(|v| v.to_bits()).collect())
        .collect();
    let loss_bits = g.value(loss).item().to_bits();
    let grad_bits: Vec<(tensor::ParamId, Vec<u32>)> = grads
        .iter()
        .map(|(id, t)| (id, t.data().iter().map(|v| v.to_bits()).collect()))
        .collect();
    (out_bits, loss_bits, grad_bits)
}

/// One shape's full equivalence check, shared by the proptest and the
/// pinned degenerate-shape test.
fn assert_batch_matches_per_program(rows: usize, cols: usize, k: usize, seed: u64) {
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::from_vec(rows, cols, fill(seed, rows * cols)));
    let b = store.add("b", Tensor::vector(fill(seed ^ 0xb1a5, rows)));
    let xs: Vec<Vec<f32>> = (0..k).map(|j| fill(seed.wrapping_add(j as u64 * 7 + 1), cols)).collect();
    let probes: Vec<Vec<f32>> =
        (0..k).map(|j| fill(seed.wrapping_add(j as u64 * 13 + 5), rows)).collect();

    let (ref_outs, ref_loss, ref_grads) = run_affine(&store, w, b, &xs, &probes, false);
    let (bat_outs, bat_loss, bat_grads) = run_affine(&store, w, b, &xs, &probes, true);

    assert_eq!(ref_outs, bat_outs, "forward diverged at {rows}x{cols}, k={k}");
    assert_eq!(ref_loss, bat_loss, "loss diverged at {rows}x{cols}, k={k}");
    assert_eq!(ref_grads, bat_grads, "gradients diverged at {rows}x{cols}, k={k}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Batch-major forward AND backward are bitwise identical to the
    /// per-program path for arbitrary shapes — the range includes 1×N,
    /// N×1, k=1, and every non-multiple-of-4 row count (scalar tail of
    /// the blocked kernel).
    #[test]
    fn batched_affine_is_bitwise_identical_to_per_program(
        rows in 1usize..=9,
        cols in 1usize..=9,
        k in 1usize..=5,
        seed in 0u64..1_000_000,
    ) {
        assert_batch_matches_per_program(rows, cols, k, seed);
    }

    /// int8 per-row absmax roundtrip: every reconstructed element is
    /// within half a quantization step of the original (plus float
    /// division/rounding slack), and all-zero rows roundtrip exactly.
    #[test]
    fn int8_roundtrip_error_within_per_row_scale_bound(
        rows in 1usize..=8,
        cols in 1usize..=8,
        seed in 0u64..1_000_000,
        zero_row in 0usize..8,
    ) {
        let mut data = fill(seed, rows * cols);
        // Mix in a larger dynamic range than fill()'s (-0.5, 0.5).
        for (i, v) in data.iter_mut().enumerate() {
            *v *= (1 + i % 16) as f32;
        }
        if zero_row < rows {
            data[zero_row * cols..(zero_row + 1) * cols].fill(0.0);
        }
        let t = Tensor::from_vec(rows, cols, data.clone());
        let qm = QuantMat::quantize(&t);
        let deq = qm.dequantize();
        for r in 0..rows {
            let s = qm.scales()[r];
            // Half-step bound with float slack; s == 0 is the all-zero row.
            let bound = 0.5 * s * (1.0 + 1e-3) + 1e-7;
            for c in 0..cols {
                let err = (data[r * cols + c] - deq.data()[r * cols + c]).abs();
                prop_assert!(
                    err <= bound,
                    "row {r} col {c}: err {err} exceeds half-step bound {bound} (scale {s})"
                );
            }
        }
    }
}

/// The exact degenerate shapes the issue calls out, pinned so a shrink in
/// the proptest ranges can never silently drop them.
#[test]
fn degenerate_shapes_stay_bitwise_identical() {
    for &(rows, cols, k) in &[(1, 7, 3), (7, 1, 2), (1, 1, 1), (4, 4, 4), (5, 3, 1), (9, 6, 5)] {
        assert_batch_matches_per_program(rows, cols, k, 0xC0FFEE);
    }
}
