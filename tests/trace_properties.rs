//! Property-based tests over the trace substrate, driven by the corpus
//! generator: determinism, projection laws, blending laws, and the
//! soundness of the symbolic executor's witnesses on real templates.

use datagen::{Behavior, Knobs};
use interp::PathStep;
use proptest::prelude::*;
use rand::SeedableRng;

fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    proptest::sample::select(Behavior::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The interpreter is deterministic: same program, same input, same
    /// trace.
    #[test]
    fn interpreter_is_deterministic(behavior in behavior_strategy(), seed in 0u64..1000) {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inputs = randgen::random_inputs(&program, &randgen::InputConfig::default(), &mut rng);
        let a = interp::run(&program, &inputs);
        let b = interp::run(&program, &inputs);
        prop_assert_eq!(a, b);
    }

    /// Symbolic and state projections partition the execution trace.
    #[test]
    fn projections_reconstruct_the_execution(behavior in behavior_strategy(), seed in 0u64..1000) {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inputs = randgen::random_inputs(&program, &randgen::InputConfig::default(), &mut rng);
        if let Ok(run) = interp::run(&program, &inputs) {
            let t = trace::ExecutionTrace::from_run(inputs, run);
            let sym = t.symbolic();
            let states = t.states();
            prop_assert_eq!(sym.len(), t.len());
            prop_assert_eq!(states.len(), t.len());
            for (i, e) in t.events.iter().enumerate() {
                prop_assert_eq!(sym.steps[i], e.path_step());
                prop_assert_eq!(&states.states[i], &e.state);
            }
            // Symbolic trees resolve for every step.
            prop_assert_eq!(sym.stmt_trees(&program).unwrap().len(), sym.len());
        }
    }

    /// Blending keeps states aligned stepwise with the shared path.
    #[test]
    fn blending_is_stepwise_consistent(behavior in behavior_strategy(), seed in 0u64..1000) {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = randgen::GenConfig {
            target_paths: 4,
            concrete_per_path: 3,
            max_attempts: 120,
            ..randgen::GenConfig::default()
        };
        let (groups, _) = randgen::generate_grouped(&program, &config, &mut rng);
        for group in &groups {
            let blended = group.blend(3).unwrap();
            prop_assert_eq!(blended.len(), group.symbolic.len());
            prop_assert!(blended.concrete_count <= 3);
            for (step, member) in blended.steps.iter().zip(blended.steps.iter().skip(1)) {
                prop_assert_eq!(step.states.len(), member.states.len());
            }
            // Reduction clamps and preserves the path.
            let reduced = blended.with_concrete_limit(1);
            prop_assert_eq!(reduced.symbolic, blended.symbolic);
            prop_assert_eq!(reduced.concrete_count, 1);
        }
    }

    /// State encoding is total and respects the layout width.
    #[test]
    fn state_encoding_is_total(behavior in behavior_strategy(), seed in 0u64..1000) {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let layout = interp::VarLayout::of(&program);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inputs = randgen::random_inputs(&program, &randgen::InputConfig::default(), &mut rng);
        if let Ok(run) = interp::run(&program, &inputs) {
            for event in &run.events {
                let enc = trace::encode_state(&event.state);
                prop_assert_eq!(enc.len(), layout.len());
                for v in &enc {
                    prop_assert!(!v.tokens().is_empty());
                    prop_assert!(v.tokens().len() <= trace::MAX_FLATTEN + 1);
                }
            }
        }
    }
}

/// The symbolic executor's witnesses reproduce their paths concretely on
/// every integer/array behaviour template.
#[test]
fn symexec_witnesses_are_sound_on_templates() {
    let config = symexec::SymExecConfig {
        max_paths: 12,
        max_steps: 150,
        ..symexec::SymExecConfig::default()
    };
    let mut checked_paths = 0;
    for behavior in Behavior::ALL {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let (paths, _) = symexec::symbolic_execute(&program, &config);
        for path in &paths {
            let run = interp::run(&program, &path.witness)
                .unwrap_or_else(|e| panic!("{behavior:?}: witness crashed: {e}"));
            let concrete: Vec<PathStep> = run.events.iter().map(|e| e.path_step()).collect();
            assert_eq!(
                concrete, path.steps,
                "{behavior:?}: witness {:?} took a different path",
                path.witness
            );
            checked_paths += 1;
        }
    }
    assert!(checked_paths > 50, "too few symbolic paths exercised: {checked_paths}");
}
