//! End-to-end integration: source → traces → blended traces → training →
//! prediction, across every crate of the workspace.

use liger::{
    encode_program, program_into_vocab, Ablation, EncodeOptions, LigerConfig, LigerNamer,
    NameSample, OutVocab, TrainConfig, Vocab,
};
use rand::SeedableRng;

type Rng = rand::rngs::StdRng;

fn blend(src: &str, seed: u64) -> (minilang::Program, Vec<trace::BlendedTrace>) {
    let program = minilang::parse(src).unwrap();
    minilang::typecheck(&program).unwrap();
    let mut rng = Rng::seed_from_u64(seed);
    let config = randgen::GenConfig {
        target_paths: 5,
        concrete_per_path: 3,
        max_attempts: 300,
        ..randgen::GenConfig::default()
    };
    let (groups, _) = randgen::generate_grouped(&program, &config, &mut rng);
    let blended = groups.iter().filter_map(|g| g.blend(3).ok()).collect();
    (program, blended)
}

#[test]
fn liger_learns_to_name_two_distinct_methods() {
    let (p1, b1) = blend(
        "fn sumArray(a: array<int>) -> int {
            let s: int = 0;
            for (let i: int = 0; i < len(a); i += 1) { s += a[i]; }
            return s;
        }",
        1,
    );
    let (p2, b2) = blend(
        "fn maxArray(a: array<int>) -> int {
            if (len(a) == 0) { return 0; }
            let m: int = a[0];
            for (let i: int = 1; i < len(a); i += 1) {
                if (a[i] > m) { m = a[i]; }
            }
            return m;
        }",
        2,
    );
    assert!(!b1.is_empty() && !b2.is_empty());

    let opts = EncodeOptions { max_steps: 20, max_traces: 5 };
    let mut vocab = Vocab::new();
    program_into_vocab(&p1, &b1, &mut vocab, &opts);
    program_into_vocab(&p2, &b2, &mut vocab, &opts);
    let mut out_vocab = OutVocab::new();
    for t in ["sum", "max", "array"] {
        out_vocab.add(t);
    }

    let e1 = encode_program(&p1, &b1, &vocab, &opts);
    let e2 = encode_program(&p2, &b2, &vocab, &opts);

    let mut rng = Rng::seed_from_u64(3);
    let mut store = tensor::ParamStore::new();
    let cfg = LigerConfig { hidden: 12, attn: 12, ..LigerConfig::default() };
    let namer = LigerNamer::new(&mut store, vocab.len(), out_vocab.len(), cfg, &mut rng);
    let samples = vec![
        NameSample { program: e1.clone(), target: out_vocab.encode_name("sumArray") },
        NameSample { program: e2.clone(), target: out_vocab.encode_name("maxArray") },
    ];
    let tc = TrainConfig { epochs: 40, lr: 0.03, batch_size: 2 };
    let losses = liger::train_namer(&namer, &mut store, &samples, &tc, &mut rng);
    assert!(
        losses.last().unwrap() < &losses[0],
        "training did not reduce loss: {losses:?}"
    );

    let n1 = out_vocab.decode_name(&namer.predict(&store, &e1));
    let n2 = out_vocab.decode_name(&namer.predict(&store, &e2));
    assert_eq!(n1, vec!["sum", "array"]);
    assert_eq!(n2, vec!["max", "array"]);
}

#[test]
fn symbolic_executor_seeds_the_same_pipeline() {
    // Instead of random generation, obtain traces by solving path
    // conditions (§5.1's front half) and feed them through blending.
    let program = minilang::parse(
        "fn clampPositive(x: int) -> int {
            if (x < 0) { return 0; }
            if (x > 10) { return 10; }
            return x;
        }",
    )
    .unwrap();
    let (paths, stats) = symexec::symbolic_execute(&program, &symexec::SymExecConfig::default());
    assert_eq!(stats.sat_paths, 3);

    let traces: Vec<trace::ExecutionTrace> = paths
        .iter()
        .map(|p| {
            let run = interp::run(&program, &p.witness).unwrap();
            trace::ExecutionTrace::from_run(p.witness.clone(), run)
        })
        .collect();
    let groups = trace::group_by_path(traces);
    assert_eq!(groups.len(), 3, "each symbolic path is a distinct group");
    for g in &groups {
        let blended = g.blend(1).unwrap();
        assert_eq!(blended.concrete_count, 1);
        assert_eq!(blended.len(), g.symbolic.len());
    }
}

#[test]
fn ablations_run_through_the_full_encoder() {
    let (p, b) = blend(
        "fn doubleIt(x: int) -> int { x *= 2; return x; }",
        4,
    );
    let opts = EncodeOptions::default();
    let mut vocab = Vocab::new();
    program_into_vocab(&p, &b, &mut vocab, &opts);
    let encoded = encode_program(&p, &b, &vocab, &opts);

    for ablation in
        [Ablation::Full, Ablation::NoStatic, Ablation::NoDynamic, Ablation::NoAttention]
    {
        let mut rng = Rng::seed_from_u64(5);
        let mut store = tensor::ParamStore::new();
        let cfg = LigerConfig { hidden: 8, attn: 8, ablation, ..LigerConfig::default() };
        let model = liger::LigerModel::new(&mut store, vocab.len(), cfg, &mut rng);
        let mut g = tensor::Graph::new();
        let out = model.encode(&mut g, &store, &encoded);
        let loss = g.cross_entropy(out.program, 0);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0, "{ablation:?}: no gradients");
    }
}

#[test]
fn dypro_and_liger_consume_the_same_traces() {
    let (p, b) = blend(
        "fn absValue(x: int) -> int {
            if (x < 0) { return 0 - x; }
            return x;
        }",
        6,
    );
    let opts = EncodeOptions::default();
    let mut vocab = Vocab::new();
    program_into_vocab(&p, &b, &mut vocab, &opts);
    baselines::names_into_vocab(&p, &mut vocab);

    let liger_input = encode_program(&p, &b, &vocab, &opts);
    let dypro_input = baselines::dypro_input(
        &p,
        &b,
        &vocab,
        &baselines::DyproOptions::default(),
    );
    // DYPRO sees each concrete execution individually; LIGER sees them
    // grouped per path.
    let total_concrete: usize = b.iter().map(|t| t.concrete_count).sum();
    assert_eq!(dypro_input.traces.len(), total_concrete);
    assert_eq!(liger_input.traces.len(), b.len());
}
