//! Integration test: trained weights survive a save/load round trip with
//! bit-identical predictions (checkpointing across the tensor and liger
//! crates).

use liger::{
    encode_program, program_into_vocab, EncodeOptions, LigerConfig, LigerNamer, NameSample,
    OutVocab, TrainConfig, Vocab,
};
use rand::SeedableRng;

#[test]
fn saved_weights_reproduce_predictions() {
    let program = minilang::parse(
        "fn sumArray(a: array<int>) -> int {
            let s: int = 0;
            for (let i: int = 0; i < len(a); i += 1) { s += a[i]; }
            return s;
        }",
    )
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let (groups, _) = randgen::generate_grouped(
        &program,
        &randgen::GenConfig { target_paths: 4, concrete_per_path: 2, ..Default::default() },
        &mut rng,
    );
    let blended: Vec<trace::BlendedTrace> =
        groups.iter().filter_map(|g| g.blend(2).ok()).collect();

    let opts = EncodeOptions::default();
    let mut vocab = Vocab::new();
    program_into_vocab(&program, &blended, &mut vocab, &opts);
    let mut out_vocab = OutVocab::new();
    out_vocab.add("sum");
    out_vocab.add("array");
    let encoded = encode_program(&program, &blended, &vocab, &opts);

    // Train briefly.
    let mut store = tensor::ParamStore::new();
    let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
    let namer = LigerNamer::new(&mut store, vocab.len(), out_vocab.len(), cfg, &mut rng);
    let samples = vec![NameSample {
        program: encoded.clone(),
        target: out_vocab.encode_name("sumArray"),
    }];
    liger::train_namer(
        &namer,
        &mut store,
        &samples,
        &TrainConfig { epochs: 15, lr: 0.05, batch_size: 1 },
        &mut rng,
    );
    let before = namer.predict(&store, &encoded);

    // Round-trip the weights through the text format.
    let text = tensor::save_store(&store);
    let loaded = tensor::load_store(&text).unwrap();
    assert_eq!(loaded.len(), store.len());
    assert_eq!(loaded.num_scalars(), store.num_scalars());

    // The same architecture over the loaded store predicts identically.
    let after = namer.predict(&loaded, &encoded);
    assert_eq!(before, after, "loaded weights changed the prediction");

    // Values really are bit-identical.
    for i in 0..store.len() {
        let id = tensor::ParamId(i);
        assert_eq!(store.get(id).value, loaded.get(id).value, "param {i} drifted");
        assert_eq!(store.get(id).name, loaded.get(id).name);
    }
}
