//! Integration test: trained weights survive a save/load round trip with
//! bit-identical predictions (checkpointing across the tensor and liger
//! crates).

use liger::{
    encode_program, program_into_vocab, EncodeOptions, LigerConfig, LigerNamer, NameSample,
    OutVocab, TrainConfig, Vocab,
};
use rand::SeedableRng;

#[test]
fn saved_weights_reproduce_predictions() {
    let program = minilang::parse(
        "fn sumArray(a: array<int>) -> int {
            let s: int = 0;
            for (let i: int = 0; i < len(a); i += 1) { s += a[i]; }
            return s;
        }",
    )
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let (groups, _) = randgen::generate_grouped(
        &program,
        &randgen::GenConfig { target_paths: 4, concrete_per_path: 2, ..Default::default() },
        &mut rng,
    );
    let blended: Vec<trace::BlendedTrace> =
        groups.iter().filter_map(|g| g.blend(2).ok()).collect();

    let opts = EncodeOptions::default();
    let mut vocab = Vocab::new();
    program_into_vocab(&program, &blended, &mut vocab, &opts);
    let mut out_vocab = OutVocab::new();
    out_vocab.add("sum");
    out_vocab.add("array");
    let encoded = encode_program(&program, &blended, &vocab, &opts);

    // Train briefly.
    let mut store = tensor::ParamStore::new();
    let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
    let namer = LigerNamer::new(&mut store, vocab.len(), out_vocab.len(), cfg, &mut rng);
    let samples = vec![NameSample {
        program: encoded.clone(),
        target: out_vocab.encode_name("sumArray"),
    }];
    liger::train_namer(
        &namer,
        &mut store,
        &samples,
        &TrainConfig { epochs: 15, lr: 0.05, batch_size: 1 },
        &mut rng,
    );
    let before = namer.predict(&store, &encoded);

    // Round-trip the weights through the text format.
    let text = tensor::save_store(&store);
    let loaded = tensor::load_store(&text).unwrap();
    assert_eq!(loaded.len(), store.len());
    assert_eq!(loaded.num_scalars(), store.num_scalars());

    // The same architecture over the loaded store predicts identically.
    let after = namer.predict(&loaded, &encoded);
    assert_eq!(before, after, "loaded weights changed the prediction");

    // Values really are bit-identical.
    for i in 0..store.len() {
        let id = tensor::ParamId(i);
        assert_eq!(store.get(id).value, loaded.get(id).value, "param {i} drifted");
        assert_eq!(store.get(id).name, loaded.get(id).name);
    }

    // The binary format agrees with the text format bit-for-bit, both
    // directly and through the format converters.
    let blob = tensor::save_store_binary(&store);
    let from_binary = tensor::load_store_binary(&blob).unwrap();
    let from_converted_text = tensor::load_store(&tensor::binary_to_text(&blob).unwrap()).unwrap();
    let from_converted_blob =
        tensor::load_store_binary(&tensor::text_to_binary(&text).unwrap()).unwrap();
    for candidate in [&from_binary, &from_converted_text, &from_converted_blob] {
        assert_eq!(candidate.len(), store.len());
        assert_eq!(namer.predict(candidate, &encoded), before);
        for i in 0..store.len() {
            let id = tensor::ParamId(i);
            assert_eq!(candidate.get(id).value, store.get(id).value, "param {i} drifted");
        }
    }

    // And the file-level helpers (binary on disk, format sniffed on
    // load) preserve predictions too.
    let path = std::env::temp_dir().join(format!("liger_ckpt_test_{}.lgr", std::process::id()));
    store.save_to_path(&path).unwrap();
    let from_file = tensor::ParamStore::load_from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(namer.predict(&from_file, &encoded), before);

    // A full model bundle (config + vocabularies + parameters in one
    // file) reinstantiates to the same predictions — the checkpoint
    // format `liger-serve` consumes.
    let bundle = liger::ModelBundle::for_namer(cfg, vocab, out_vocab, store);
    let reparsed = liger::ModelBundle::from_bytes(&bundle.to_bytes()).unwrap();
    let (task, task_store) = reparsed.instantiate().unwrap();
    let liger::LigerTask::Namer { namer: rebuilt, out } = &task else {
        panic!("bundle must reinstantiate as a namer");
    };
    assert_eq!(rebuilt.predict(&task_store, &encoded), before);
    assert_eq!(
        out.decode_name(&before),
        vec!["sum".to_string(), "array".to_string()],
        "trained quickstart-style namer should emit the target name"
    );
}
