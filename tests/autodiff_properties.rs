//! Property-based tests over the autodiff engine: analytic gradients of
//! randomly-shaped computation graphs match numerical differentiation,
//! and probability-producing ops satisfy their invariants.

use proptest::prelude::*;
use tensor::{grad_check, Graph, ParamStore, Tensor};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0f32..1.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// softmax outputs a probability vector for any finite input.
    #[test]
    fn softmax_is_a_distribution(data in small_vec(6)) {
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(data));
        let y = g.softmax(x);
        let out = g.value(y).data();
        let sum: f32 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// A random 2-layer network's gradients agree with central differences
    /// for every parameter.
    #[test]
    fn random_mlp_gradients_match_numerics(
        w1 in small_vec(12), // 4×3
        w2 in small_vec(8),  // 2×4
        x in small_vec(3),
        target in 0usize..2,
    ) {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::from_vec(4, 3, w1));
        let w2 = store.add("w2", Tensor::from_vec(2, 4, w2));
        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let w1v = g.param(s, w1);
            let w2v = g.param(s, w2);
            let xv = g.input(Tensor::vector(x.clone()));
            let h = g.matvec(w1v, xv);
            let h = g.tanh(h);
            let o = g.matvec(w2v, h);
            let l = g.cross_entropy(o, target);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        let report = grad_check(&store, &[w1, w2], 1e-3, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
        prop_assert!(report.passes(2e-2), "max error {}", report.max_abs_error);
    }

    /// Attention-style weighted sums: analytic gradients through softmax,
    /// stack, dot and weighted_sum agree with numerics.
    #[test]
    fn attention_pattern_gradients_match_numerics(
        q in small_vec(3),
        k1 in small_vec(3),
        k2 in small_vec(3),
        k3 in small_vec(3),
    ) {
        let mut store = ParamStore::new();
        let qp = store.add("q", Tensor::vector(q));
        let keys = [
            store.add("k1", Tensor::vector(k1)),
            store.add("k2", Tensor::vector(k2)),
            store.add("k3", Tensor::vector(k3)),
        ];
        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let qv = g.param(s, qp);
            let kvs: Vec<_> = keys.iter().map(|&k| g.param(s, k)).collect();
            let scores: Vec<_> = kvs.iter().map(|&k| g.dot(k, qv)).collect();
            let stacked = g.stack_scalars(&scores);
            let weights = g.softmax(stacked);
            let ctx = g.weighted_sum(&kvs, weights);
            let l = g.cross_entropy(ctx, 1);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        let mut params = vec![qp];
        params.extend_from_slice(&keys);
        let report = grad_check(&store, &params, 1e-3, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
        prop_assert!(report.passes(2e-2), "max error {}", report.max_abs_error);
    }

    /// max_pool is idempotent and dominated by its inputs.
    #[test]
    fn max_pool_laws(a in small_vec(5), b in small_vec(5)) {
        let mut g = Graph::new();
        let av = g.input(Tensor::vector(a.clone()));
        let bv = g.input(Tensor::vector(b.clone()));
        let m = g.max_pool(&[av, bv]);
        let out = g.value(m).data().to_vec();
        for i in 0..5 {
            prop_assert_eq!(out[i], a[i].max(b[i]));
        }
        // Idempotence: pooling the result with itself changes nothing.
        let m2 = g.max_pool(&[m, m]);
        prop_assert_eq!(g.value(m2).data(), &out[..]);
    }
}
