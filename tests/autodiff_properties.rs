//! Property-based tests over the autodiff engine: analytic gradients of
//! randomly-shaped computation graphs match numerical differentiation,
//! probability-producing ops satisfy their invariants, and data-parallel
//! training is bitwise independent of the thread count.

use proptest::prelude::*;
use tensor::{grad_check, Graph, ParamStore, Tensor};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0f32..1.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// softmax outputs a probability vector for any finite input.
    #[test]
    fn softmax_is_a_distribution(data in small_vec(6)) {
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(data));
        let y = g.softmax(x);
        let out = g.value(y).data();
        let sum: f32 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// A random 2-layer network's gradients agree with central differences
    /// for every parameter.
    #[test]
    fn random_mlp_gradients_match_numerics(
        w1 in small_vec(12), // 4×3
        w2 in small_vec(8),  // 2×4
        x in small_vec(3),
        target in 0usize..2,
    ) {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::from_vec(4, 3, w1));
        let w2 = store.add("w2", Tensor::from_vec(2, 4, w2));
        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let w1v = g.param(s, w1);
            let w2v = g.param(s, w2);
            let xv = g.input(Tensor::vector(x.clone()));
            let h = g.matvec(w1v, xv);
            let h = g.tanh(h);
            let o = g.matvec(w2v, h);
            let l = g.cross_entropy(o, target);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        let report = grad_check(&store, &[w1, w2], 1e-3, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
        prop_assert!(report.passes(2e-2), "max error {}", report.max_abs_error);
    }

    /// Attention-style weighted sums: analytic gradients through softmax,
    /// stack, dot and weighted_sum agree with numerics.
    #[test]
    fn attention_pattern_gradients_match_numerics(
        q in small_vec(3),
        k1 in small_vec(3),
        k2 in small_vec(3),
        k3 in small_vec(3),
    ) {
        let mut store = ParamStore::new();
        let qp = store.add("q", Tensor::vector(q));
        let keys = [
            store.add("k1", Tensor::vector(k1)),
            store.add("k2", Tensor::vector(k2)),
            store.add("k3", Tensor::vector(k3)),
        ];
        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let qv = g.param(s, qp);
            let kvs: Vec<_> = keys.iter().map(|&k| g.param(s, k)).collect();
            let scores: Vec<_> = kvs.iter().map(|&k| g.dot(k, qv)).collect();
            let stacked = g.stack_scalars(&scores);
            let weights = g.softmax(stacked);
            let ctx = g.weighted_sum(&kvs, weights);
            let l = g.cross_entropy(ctx, 1);
            (g, l)
        };
        let (g, l) = build(&store);
        g.backward(l, &mut store);
        let mut params = vec![qp];
        params.extend_from_slice(&keys);
        let report = grad_check(&store, &params, 1e-3, |s| {
            let (g, l) = build(s);
            g.value(l).item()
        });
        prop_assert!(report.passes(2e-2), "max error {}", report.max_abs_error);
    }

    /// max_pool is idempotent and dominated by its inputs.
    #[test]
    fn max_pool_laws(a in small_vec(5), b in small_vec(5)) {
        let mut g = Graph::new();
        let av = g.input(Tensor::vector(a.clone()));
        let bv = g.input(Tensor::vector(b.clone()));
        let m = g.max_pool(&[av, bv]);
        let out = g.value(m).data().to_vec();
        for i in 0..5 {
            prop_assert_eq!(out[i], a[i].max(b[i]));
        }
        // Idempotence: pooling the result with itself changes nothing.
        let m2 = g.max_pool(&[m, m]);
        prop_assert_eq!(g.value(m2).data(), &out[..]);
    }
}

/// A minimal encoded program with one blended trace step.
fn tiny_prog(token: usize) -> liger::EncodedProgram {
    use liger::{EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram};
    EncodedProgram::from_traces(vec![EncBlended {
        steps: vec![EncStep {
            tree: EncTree { token, children: vec![] },
            states: vec![EncState { vars: vec![EncVar::Primitive(token + 1)] }],
        }],
    }])
}

/// An encoded program with real repetition — the same statement tree in
/// every trace and recurring states — so the embedding memo actually
/// replays spans during training.
fn shared_prog(token: usize) -> liger::EncodedProgram {
    use liger::{EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram};
    let leaf = |t: usize| EncTree { token: t, children: vec![] };
    let step = |t: usize| EncStep {
        tree: EncTree { token: t, children: vec![leaf(t + 1), leaf(2)] },
        states: vec![
            EncState { vars: vec![EncVar::Primitive(3), EncVar::Object(vec![4, 5])] },
            EncState { vars: vec![EncVar::Primitive(3), EncVar::Object(vec![4, 5])] },
        ],
    };
    EncodedProgram::from_traces(vec![
        EncBlended { steps: vec![step(token), step(token + 1), step(token)] },
        EncBlended { steps: vec![step(token), step(token + 1)] },
    ])
}

/// Trains a small namer from a fixed seed at a pinned worker count and
/// returns every parameter scalar as raw bits.
fn train_params_bits(threads: usize, seed: u64) -> Vec<u32> {
    use liger::{LigerConfig, LigerNamer, NameSample, TrainConfig, EOS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    par::set_threads(Some(threads));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
    let namer = LigerNamer::new(&mut store, 16, 8, cfg, &mut rng);
    let samples: Vec<NameSample> = (0..6)
        .map(|k| NameSample { program: tiny_prog(k + 1), target: vec![(k % 7) + 1, EOS] })
        .collect();
    let tc = TrainConfig { epochs: 2, lr: 0.02, batch_size: 4 };
    liger::train_namer(&namer, &mut store, &samples, &tc, &mut rng);
    par::set_threads(None);
    store.iter().flat_map(|p| p.value.data().iter().map(|v| v.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// The determinism contract (DESIGN.md): two epochs of data-parallel
    /// training produce bitwise-identical parameters at 1, 2, and 4
    /// worker threads.
    #[test]
    fn parallel_training_is_bitwise_deterministic(seed in 0u64..1_000_000) {
        let reference = train_params_bits(1, seed);
        for threads in [2usize, 4] {
            let got = train_params_bits(threads, seed);
            prop_assert_eq!(&reference, &got, "thread count {} diverged", threads);
        }
    }
}

/// Trains a small namer under one fusion ablation and encode mode for two
/// epochs; returns every parameter scalar as raw bits.
fn train_ablation_bits(ablation: liger::Ablation, mode: liger::EncodeMode, seed: u64) -> Vec<u32> {
    use liger::{LigerConfig, LigerNamer, NameSample, TrainConfig, EOS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let cfg = LigerConfig { hidden: 6, attn: 6, ablation, ..LigerConfig::default() };
    let namer = LigerNamer::new(&mut store, 16, 8, cfg, &mut rng);
    let samples: Vec<NameSample> = (0..5)
        .map(|k| NameSample {
            program: shared_prog(2 * k + 1),
            target: vec![(k % 7) + 1, EOS],
        })
        .collect();
    let tc = TrainConfig { epochs: 2, lr: 0.02, batch_size: 2 };
    liger::train_namer_with(&namer, &mut store, &samples, &tc, &mut rng, mode);
    store.iter().flat_map(|p| p.value.data().iter().map(|v| v.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    /// Embedding memoization + arena reuse is a pure performance
    /// transform: two epochs of cached training end at bitwise-identical
    /// parameters to the fresh-graph-per-example reference, under every
    /// fusion ablation (Equation 3's gradients are preserved — see
    /// DESIGN.md §2b).
    #[test]
    fn cached_training_is_bitwise_identical(seed in 0u64..1_000_000) {
        use liger::{Ablation, EncodeMode};
        for ablation in
            [Ablation::Full, Ablation::NoStatic, Ablation::NoDynamic, Ablation::NoAttention]
        {
            let cached = train_ablation_bits(ablation, EncodeMode::Memoized, seed);
            let uncached = train_ablation_bits(ablation, EncodeMode::Uncached, seed);
            prop_assert_eq!(&cached, &uncached, "{:?} diverged under memoization", ablation);
        }
    }
}

/// Gradcheck on a *reused* graph arena: one workspace encodes three
/// different programs back to back (reset between examples), and each
/// example's analytic gradients — computed on the recycled tape with
/// pooled buffers — must agree with numerical differentiation.
#[test]
fn reused_graph_gradients_match_numerics_across_examples() {
    use liger::{LigerConfig, LigerModel, Workspace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(99);
    let mut store = ParamStore::new();
    let cfg = LigerConfig { hidden: 4, attn: 4, ..LigerConfig::default() };
    let model = LigerModel::new(&mut store, 12, cfg, &mut rng);
    let params = model.params();

    let mut ws = Workspace::new();
    for (k, prog) in [shared_prog(1), shared_prog(3), tiny_prog(5)].iter().enumerate() {
        ws.reset();
        let enc = model.encode_memo(&mut ws, &store, prog);
        let loss = ws.graph.cross_entropy(enc.program, k % 2);
        let grads = ws.graph.backward_into(loss, &store);
        let mut probe = store.clone();
        probe.accumulate_grads(&grads);
        let report = grad_check(&probe, &params, 1e-3, |s| {
            let mut g = Graph::new();
            let enc = model.encode(&mut g, s, prog);
            let loss = g.cross_entropy(enc.program, k % 2);
            g.value(loss).item()
        });
        assert!(
            report.passes(2e-2),
            "example {k}: reused-graph gradients off by {}",
            report.max_abs_error
        );
    }
}
