//! Property-based tests of the language substrate: pretty-print/parse
//! round-trips and variation-engine equivalence over the whole template
//! catalogue, plus line-coverage properties of the path reducer.

use datagen::{Behavior, Knobs, Strategy};
use proptest::prelude::*;
use rand::SeedableRng;

fn any_behavior() -> impl proptest::strategy::Strategy<Value = Behavior> {
    proptest::sample::select(Behavior::ALL.to_vec())
}

fn any_strategy() -> impl proptest::strategy::Strategy<Value = Strategy> {
    proptest::sample::select(Strategy::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// print ∘ parse is the identity on every rendered template
    /// (structurally, ignoring line numbers which `parse` re-derives).
    #[test]
    fn pretty_parse_roundtrip(behavior in any_behavior(), seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let knobs = Knobs::random(&mut rng, 0.3);
        let src = behavior.render(&knobs);
        let p1 = minilang::parse(&src).unwrap();
        let printed = minilang::print_program(&p1);
        let p2 = minilang::parse(&printed).unwrap();
        // Statement ids are assigned identically for identical structure.
        let ids1: Vec<_> = p1.statements().iter().map(|s| (s.id, discriminant_of(&s.kind))).collect();
        let ids2: Vec<_> = p2.statements().iter().map(|s| (s.id, discriminant_of(&s.kind))).collect();
        prop_assert_eq!(ids1, ids2);
        // And printing again is a fixed point.
        prop_assert_eq!(printed.clone(), minilang::print_program(&p2));
    }

    /// Every COSET strategy renders to a compilable program under any knob
    /// draw, and its `solve` runs on generator inputs without interpreter
    /// bugs (errors allowed, panics not).
    #[test]
    fn strategies_execute_or_fail_cleanly(strategy in any_strategy(), seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let knobs = Knobs::random(&mut rng, 0.3);
        let program = minilang::parse(&strategy.render(&knobs)).unwrap();
        minilang::typecheck(&program).unwrap();
        let inputs = randgen::random_inputs(&program, &randgen::InputConfig::default(), &mut rng);
        let _ = interp::run(&program, &inputs); // must not panic
    }

    /// The greedy minimum cover always preserves the full line coverage
    /// and never exceeds the group count.
    #[test]
    fn min_cover_preserves_lines(behavior in any_behavior(), seed in 0u64..500) {
        let program = minilang::parse(&behavior.render(&Knobs::plain())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = randgen::GenConfig {
            target_paths: 5,
            concrete_per_path: 2,
            max_attempts: 120,
            ..randgen::GenConfig::default()
        };
        let (groups, _) = randgen::generate_grouped(&program, &config, &mut rng);
        prop_assume!(!groups.is_empty());
        let cover = randgen::min_line_cover(&program, &groups);
        prop_assert!(!cover.is_empty());
        prop_assert!(cover.len() <= groups.len());
        let full: std::collections::BTreeSet<u32> =
            groups.iter().flat_map(|g| g.symbolic.line_set(&program).unwrap()).collect();
        let covered: std::collections::BTreeSet<u32> =
            cover.iter().flat_map(|&i| groups[i].symbolic.line_set(&program).unwrap()).collect();
        prop_assert_eq!(full, covered);
    }
}

fn discriminant_of(kind: &minilang::StmtKind) -> &'static str {
    match kind {
        minilang::StmtKind::Let { .. } => "let",
        minilang::StmtKind::Assign { .. } => "assign",
        minilang::StmtKind::If { .. } => "if",
        minilang::StmtKind::While { .. } => "while",
        minilang::StmtKind::For { .. } => "for",
        minilang::StmtKind::Return(_) => "return",
        minilang::StmtKind::Break => "break",
        minilang::StmtKind::Continue => "continue",
    }
}

/// The §3 motivating pair, end to end: `i += i` and `i *= 2` have
/// different symbolic trees but identical state traces — the exact signal
/// the fusion layer exploits.
#[test]
fn blended_view_of_the_motivating_pair() {
    let pa = minilang::parse("fn f(i: int) -> int { i += i; return i; }").unwrap();
    let pb = minilang::parse("fn f(i: int) -> int { i *= 2; return i; }").unwrap();
    for x in [-7i64, 0, 3, 21] {
        let ia = vec![interp::Value::Int(x)];
        let ra = interp::run(&pa, &ia).unwrap();
        let rb = interp::run(&pb, &ia).unwrap();
        let ta = trace::ExecutionTrace::from_run(ia.clone(), ra);
        let tb = trace::ExecutionTrace::from_run(ia, rb);
        // Dynamic views agree…
        assert_eq!(ta.states(), tb.states());
        // …while symbolic views differ.
        assert_ne!(
            ta.symbolic().stmt_trees(&pa).unwrap(),
            tb.symbolic().stmt_trees(&pb).unwrap()
        );
    }
}
